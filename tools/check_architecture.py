#!/usr/bin/env python
"""Import-architecture linter for the unified runtime layer.

The refactor that introduced :mod:`repro.runtime` comes with two structural
guarantees, and this script keeps them true by construction:

**R1 — engine layering.**  The evaluation core (``repro.engine``,
``repro.nfa``) is below the strategy and assembly layers: it may not import
``repro.strategies``, ``repro.core``, or ``repro.runtime``.  Strategies see
engines through :class:`repro.engine.interface.FetchDecision` callbacks,
never the other way round.

**R2 — one composition root.**  Only ``repro.runtime`` (and the defining
modules themselves) may construct the shared substrate classes
``Transport``, ``LRUCache``, and ``CostBasedCache``.  Everything else —
facades, CLI, benchmarks — receives an assembled runtime.

**R3 — no shadow assembly.**  Outside ``repro.runtime``, no module may
construct classes from two or more substrate groups (transport / cache /
tracer) in one place; wiring them together is the composition root's job.
(Constructing a :class:`~repro.obs.trace.Tracer` alone is fine — callers
hand tracers *into* the builder.)

Usage::

    python tools/check_architecture.py [--root src/repro]

Exits 0 when the architecture holds, 1 with one line per violation
otherwise.  Run by CI on every push; ``tests/test_architecture.py`` also
seeds deliberate violations into a scratch tree to prove the checker would
catch a regression.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

# R1: packages of the evaluation core, and the prefixes they must not import.
CORE_PACKAGES = ("engine", "nfa")
FORBIDDEN_FOR_CORE = ("repro.strategies", "repro.core", "repro.runtime")

# R2/R3: substrate constructors, by group.  A module's group set is the set
# of groups it constructs (ast.Call on the class name).
SUBSTRATE_GROUPS = {
    "Transport": "transport",
    "LRUCache": "cache",
    "CostBasedCache": "cache",
    "Tracer": "tracer",
}
# Classes that only the composition root (or the defining module) may build.
ROOT_ONLY = {"Transport", "LRUCache", "CostBasedCache"}
# Modules that define (or re-export next to the definition of) a substrate
# class are allowed to reference their own constructors.
DEFINING_MODULES = {
    "Transport": ("remote/transport.py",),
    "LRUCache": ("cache/lru.py",),
    "CostBasedCache": ("cache/cost_based.py",),
    "Tracer": ("obs/trace.py",),
}
COMPOSITION_ROOT = "runtime/"


def iter_modules(root: Path):
    for path in sorted(root.rglob("*.py")):
        yield path, path.relative_to(root).as_posix()


def imported_names(tree: ast.AST) -> list[tuple[str, int]]:
    """Every imported module path in ``tree``, with its line number."""
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            found.extend((alias.name, node.lineno) for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module:
            found.append((node.module, node.lineno))
    return found


def constructed_classes(tree: ast.AST) -> list[tuple[str, int]]:
    """Substrate-class constructor calls in ``tree`` (``C(...)`` or ``m.C(...)``)."""
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in SUBSTRATE_GROUPS:
            found.append((name, node.lineno))
    return found


def check_tree(root: Path) -> list[str]:
    """All architecture violations under ``root`` (a ``repro`` package dir)."""
    violations: list[str] = []
    for path, rel in iter_modules(root):
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as error:
            violations.append(f"{rel}:{error.lineno}: unparseable: {error.msg}")
            continue

        # R1: the evaluation core imports nothing from the layers above it.
        if rel.split("/")[0] in CORE_PACKAGES:
            for module, lineno in imported_names(tree):
                if any(module == bad or module.startswith(bad + ".")
                       for bad in FORBIDDEN_FOR_CORE):
                    violations.append(
                        f"{rel}:{lineno}: R1 layering: core package imports {module}"
                    )

        if rel.startswith(COMPOSITION_ROOT):
            continue  # the composition root is allowed to build everything

        calls = constructed_classes(tree)
        # R2: substrate classes are built only in repro.runtime.
        for name, lineno in calls:
            if name in ROOT_ONLY and rel not in DEFINING_MODULES[name]:
                violations.append(
                    f"{rel}:{lineno}: R2 composition root: constructs {name} "
                    f"outside repro.runtime"
                )
        # R3: no module wires two substrate groups together on its own.
        groups = {}
        for name, lineno in calls:
            if rel in DEFINING_MODULES.get(name, ()):
                continue
            groups.setdefault(SUBSTRATE_GROUPS[name], (name, lineno))
        if len(groups) >= 2:
            built = ", ".join(sorted(name for name, _ in groups.values()))
            lineno = min(lineno for _, lineno in groups.values())
            violations.append(
                f"{rel}:{lineno}: R3 shadow assembly: constructs {built} together "
                f"outside repro.runtime"
            )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default="src/repro",
        help="the repro package directory to check (default: src/repro)",
    )
    args = parser.parse_args(argv)
    root = Path(args.root)
    if not root.is_dir():
        print(f"architecture check: no such package directory: {root}", file=sys.stderr)
        return 2
    violations = check_tree(root)
    if violations:
        print(f"architecture check FAILED ({len(violations)} violation(s)):")
        for line in violations:
            print(f"  {line}")
        return 1
    count = sum(1 for _ in iter_modules(root))
    print(f"architecture OK: {count} modules, rules R1-R3 hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

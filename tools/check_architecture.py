#!/usr/bin/env python
"""Import-architecture linter — now a thin shim over ``repro.analysis``.

The R1–R3 rules this script introduced (engine layering, composition-root-
only substrate construction, no shadow assembly) live on as rules A1–A3 of
the plugin-based static-analysis framework in :mod:`repro.analysis`; run
``python -m repro.analysis --explain A1`` (A2, A3) for their rationale.
This entry point keeps the historical CLI and the ``check_tree`` API so
existing CI invocations and ``tests/test_architecture.py`` work unchanged.

Usage::

    python tools/check_architecture.py [--root src/repro]

Exits 0 when the architecture holds, 1 with one line per violation
otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.analysis import ModuleIndex, analyze_index  # noqa: E402

#: The framework rules this shim runs (legacy names R1, R2, R3).
ARCHITECTURE_RULES = ("A1", "A2", "A3")


def check_tree(root: Path) -> list[str]:
    """All architecture violations under ``root`` (a ``repro`` package dir).

    Returns legacy-format strings — ``<pkg-path>:<line>: R1 layering: ...``
    — produced by rules A1–A3 of :mod:`repro.analysis` run with ``root`` as
    the package root.
    """
    index = ModuleIndex([root], package_root=root)
    result = analyze_index(index, ARCHITECTURE_RULES)
    return [
        f"{finding.pkg or finding.rel}:{finding.line}: {finding.message}"
        for finding in result.findings
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default="src/repro",
        help="the repro package directory to check (default: src/repro)",
    )
    args = parser.parse_args(argv)
    root = Path(args.root)
    if not root.is_dir():
        print(f"architecture check: no such package directory: {root}", file=sys.stderr)
        return 2
    violations = check_tree(root)
    if violations:
        print(f"architecture check FAILED ({len(violations)} violation(s)):")
        for line in violations:
            print(f"  {line}")
        return 1
    count = len(ModuleIndex([root], package_root=root))
    print(f"architecture OK: {count} modules, rules R1-R3 hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

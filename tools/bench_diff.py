#!/usr/bin/env python3
"""Bench-regression gate: diff fresh ``BENCH_*.json`` runs against baselines.

Every number a benchmark reports is virtual-time and therefore
deterministic: the same code on the same configuration reproduces the
committed baseline exactly.  A fresh run that drifts past the tolerances
is a behavioural change — more/fewer matches, different latency
percentiles, a different fetch count — and fails the gate so it must be
reviewed (and, when intended, committed as the new baseline).

Usage::

    python tools/bench_diff.py results/baselines /tmp/fresh-results
    python tools/bench_diff.py results/baselines/BENCH_batching.json \\
        /tmp/fresh-results/BENCH_batching.json --rel-tol 0.01

Both arguments may be directories (every ``*.json`` present in the
baseline directory is compared against its same-named fresh counterpart)
or a pair of files.  Benchmarks emit rows in a fixed, deterministic order,
so rows are matched positionally and labelled by their string-valued
identity fields (``strategy``, ``workload``, ``policy``, …); an identity
mismatch at any position fails.  Numeric fields are compared with
``|fresh - base| <= abs_tol + rel_tol * |base|``; non-numeric fields
(e.g. a ``None`` bound) must match exactly.  Missing files, missing rows,
and missing fields all fail.  Exit status: 0 when everything is within
tolerance, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Iterable

__all__ = ["compare_rows", "diff_files", "main"]

#: Tolerance defaults: virtual-time determinism means baselines reproduce
#: exactly, so the slack only absorbs float-rounding drift across
#: refactors, not real regressions.
DEFAULT_REL_TOL = 0.001
DEFAULT_ABS_TOL = 1e-6


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _label(index: int, row: dict[str, Any]) -> str:
    identity = "/".join(
        f"{name}={value}" for name, value in sorted(row.items()) if isinstance(value, str)
    )
    return f"row {index} ({identity})" if identity else f"row {index}"


def compare_rows(
    baseline: list[dict[str, Any]],
    fresh: list[dict[str, Any]],
    rel_tol: float,
    abs_tol: float,
) -> list[str]:
    """Problems between two row lists (empty list = within tolerance)."""
    problems: list[str] = []
    if len(fresh) != len(baseline):
        problems.append(f"{len(fresh)} fresh rows vs {len(baseline)} baseline rows")
    for index, base_row in enumerate(baseline):
        if index >= len(fresh):
            problems.append(f"{_label(index, base_row)} missing from fresh results")
            continue
        fresh_row = fresh[index]
        label = _label(index, base_row)
        for field, base_value in base_row.items():
            if field not in fresh_row:
                problems.append(f"{label}: field {field!r} missing from fresh row")
                continue
            fresh_value = fresh_row[field]
            if not _is_number(base_value):
                # Identity and config fields (strategy, policy, a None
                # bound…) must reproduce exactly.
                if fresh_value != base_value:
                    problems.append(
                        f"{label}: {field} = {fresh_value!r} vs baseline {base_value!r}"
                    )
                continue
            if not _is_number(fresh_value):
                problems.append(
                    f"{label}: field {field!r} is {fresh_value!r}, expected a number"
                )
                continue
            allowed = abs_tol + rel_tol * abs(base_value)
            delta = fresh_value - base_value
            if abs(delta) > allowed:
                problems.append(
                    f"{label}: {field} = {fresh_value} vs baseline "
                    f"{base_value} (delta {delta:+g}, tolerance {allowed:g})"
                )
        extra_fields = sorted(set(fresh_row) - set(base_row))
        if extra_fields:
            problems.append(f"{label}: fresh-only fields {extra_fields}")
    return problems


def diff_files(baseline_path: str, fresh_path: str, rel_tol: float, abs_tol: float) -> list[str]:
    """Problems between one baseline file and its fresh counterpart."""
    if not os.path.exists(fresh_path):
        return [f"{fresh_path}: fresh results missing"]
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    with open(fresh_path) as handle:
        fresh = json.load(handle)
    problems = compare_rows(
        baseline.get("rows", []), fresh.get("rows", []), rel_tol, abs_tol
    )
    return [f"{os.path.basename(baseline_path)}: {problem}" for problem in problems]


def _pairs(baseline: str, fresh: str) -> Iterable[tuple[str, str]]:
    if os.path.isdir(baseline):
        names = sorted(
            name for name in os.listdir(baseline) if name.endswith(".json")
        )
        if not names:
            raise SystemExit(f"{baseline}: no baseline *.json files")
        return [(os.path.join(baseline, name), os.path.join(fresh, name)) for name in names]
    return [(baseline, fresh)]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/bench_diff.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("baseline", help="baseline BENCH json file or directory")
    parser.add_argument("fresh", help="fresh BENCH json file or directory")
    parser.add_argument("--rel-tol", type=float, default=DEFAULT_REL_TOL,
                        help=f"relative tolerance (default: {DEFAULT_REL_TOL})")
    parser.add_argument("--abs-tol", type=float, default=DEFAULT_ABS_TOL,
                        help=f"absolute tolerance (default: {DEFAULT_ABS_TOL})")
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    if args.rel_tol < 0 or args.abs_tol < 0:
        parser.error("tolerances must be non-negative")
    problems: list[str] = []
    compared = 0
    for baseline_path, fresh_path in _pairs(args.baseline, args.fresh):
        problems.extend(diff_files(baseline_path, fresh_path, args.rel_tol, args.abs_tol))
        compared += 1
    if problems:
        print(f"bench diff FAILED ({compared} file(s), {len(problems)} problem(s)):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"bench diff OK: {compared} file(s) within tolerance "
          f"(rel {args.rel_tol}, abs {args.abs_tol})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

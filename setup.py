"""Shim for legacy editable installs in offline environments without `wheel`.

`pip install -e . --no-build-isolation` falls back to `setup.py develop`
through this file; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

#!/usr/bin/env python3
"""Quickstart: detect a pattern whose selection depends on remote data.

This is the smallest end-to-end EIRES program:

1. define a CEP query in the SASE-style language, with a ``REMOTE[...]``
   predicate;
2. populate an in-process remote store (standing in for a remote database)
   and pick a transmission-latency model;
3. run the stream through the framework under two strategies and compare
   detection latencies.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    EIRES,
    EiresConfig,
    Event,
    FixedLatency,
    RemoteStore,
    Stream,
    make_rng,
    parse_query,
)

# 1. A query: an order (O) followed by a payment (P) of the same customer,
#    where the payment's amount exceeds the customer's remotely stored limit.
QUERY = parse_query(
    """
    SEQ(O o, P p)
    WHERE SAME[customer] AND p.amount > REMOTE<limits>[o.customer]
    WITHIN 10ms
    """,
    name="overlimit-payment",
)

# 2. Remote data: a per-customer limit table, 200 us away.
store = RemoteStore()
for customer in range(100):
    store.put("limits", customer, 500 + 10 * customer)
latency_model = FixedLatency(200.0)  # microseconds of transmission latency


def make_stream(n_events: int = 2_000, seed: int = 7) -> Stream:
    """Random orders and payments from 100 customers, one event per 50 us."""
    rng = make_rng(seed)
    events = []
    t = 0.0
    for _ in range(n_events):
        t += 50.0
        events.append(
            Event(
                t,
                {
                    "type": rng.choice(["O", "P"]),
                    "customer": rng.randrange(100),
                    "amount": rng.randint(1, 2_000),
                },
            )
        )
    return Stream(events)


def main() -> None:
    stream = make_stream()
    print(f"Query: {QUERY}")
    print(f"Stream: {len(stream)} events\n")

    print(f"{'strategy':>8}  {'matches':>7}  {'p50 (us)':>10}  {'p95 (us)':>10}  {'stalls':>6}")
    for strategy in ("BL1", "Hybrid"):
        eires = EIRES(
            QUERY,
            store,
            latency_model,
            strategy=strategy,
            config=EiresConfig(cache_capacity=32),
        )
        result = eires.run(stream)
        percentiles = result.latency_percentiles()
        print(
            f"{strategy:>8}  {result.match_count:>7}  {percentiles[50]:>10.1f}  "
            f"{percentiles[95]:>10.1f}  {result.strategy_stats['blocking_stalls']:>6}"
        )

    print(
        "\nBoth strategies detect the same matches; EIRES's Hybrid strategy "
        "hides the 200 us transmission latency that the naive integration "
        "pays on every lookup."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Case study 2 (paper §7.4, Fig. 10b): cluster monitoring.

Task lifecycle events (submit / schedule / evict / fail) are matched against
the pattern "submitted, scheduled and evicted; rescheduled and evicted in a
different region; rescheduled in a third region and failed".  Machine-to-
region information lives in a remote database 1–10 ms away, and the region
predicates mix prefetchable references (keyed by earlier bindings) with ones
keyed by the current event (only lazy evaluation applies) — which is why the
Hybrid strategy dominates here.

Run it with::

    python examples/cluster_monitoring.py
"""

from __future__ import annotations

from repro import EIRES, EiresConfig
from repro.metrics.reporting import format_comparison, format_table
from repro.workloads.cluster import ClusterConfig, cluster_workload


def main() -> None:
    config = ClusterConfig(n_tasks=800)
    workload = cluster_workload(config)
    print(f"Workload: {workload}")
    print(
        f"Machines: {config.n_machines} across {config.n_regions} regions, "
        f"{config.problematic_fraction:.0%} of tasks on the failing path, "
        f"region-lookup latency {config.latency_low_us / 1000:.0f}-"
        f"{config.latency_high_us / 1000:.0f} ms\n"
    )

    rows = []
    for strategy in ("BL1", "BL2", "BL3", "PFetch", "LzEval", "Hybrid"):
        eires = EIRES(
            workload.query,
            workload.store,
            workload.latency_model,
            strategy=strategy,
            config=EiresConfig(cache_capacity=workload.notes["cache_capacity"]),
        )
        result = eires.run(workload.stream)
        rows.append(result.summary())

    print(format_table(
        "Cluster monitoring: per-strategy latency percentiles (virtual us)",
        rows,
        ("strategy", "matches", "p5", "p25", "p50", "p75", "p95"),
    ))
    print()
    print(format_comparison(rows, metric="p50"))
    print(format_comparison(rows, metric="p95"))
    print(
        "\nPaper reference (Fig. 10b): Hybrid reduces median latencies vs "
        "BL1/BL2/BL3 by 73x/47x/11,879x — BL3's postponement drowns in the "
        "partial matches it creates, while Hybrid hides the lookup latency."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Compare all six fetching strategies on the paper's synthetic Q1 workload.

Reproduces one panel of Fig. 5 interactively, printing the 5th/25th/50th/
75th/95th latency percentiles, throughput, and the fetch behaviour that
explains them (blocking stalls, prefetches, postponements).

Run it with::

    python examples/strategy_comparison.py            # greedy, cost cache
    python examples/strategy_comparison.py non_greedy lru
"""

from __future__ import annotations

import sys

from repro import EIRES, EiresConfig, GREEDY, NON_GREEDY, CACHE_COST, CACHE_LRU
from repro.metrics.reporting import format_comparison, format_table
from repro.workloads.synthetic import SyntheticConfig, q1_workload


def main() -> None:
    policy = sys.argv[1] if len(sys.argv) > 1 else GREEDY
    cache_policy = sys.argv[2] if len(sys.argv) > 2 else CACHE_COST
    if policy not in (GREEDY, NON_GREEDY) or cache_policy not in (CACHE_COST, CACHE_LRU):
        raise SystemExit(f"usage: {sys.argv[0]} [greedy|non_greedy] [cost|lru]")

    workload = q1_workload(SyntheticConfig(n_events=6_000, id_domain=20, window_events=400))
    print(f"Workload: {workload}")
    print(f"Selection policy: {policy}; cache policy: {cache_policy}\n")

    rows = []
    for strategy in ("BL1", "BL2", "BL3", "PFetch", "LzEval", "Hybrid"):
        eires = EIRES(
            workload.query,
            workload.store,
            workload.latency_model,
            strategy=strategy,
            config=EiresConfig(policy=policy, cache_policy=cache_policy, cache_capacity=100),
        )
        result = eires.run(workload.stream)
        rows.append(result.summary())

    print(format_table(
        f"Q1 / {policy} / {cache_policy} cache: latency percentiles (virtual us)",
        rows,
        ("strategy", "matches", "p5", "p25", "p50", "p75", "p95"),
    ))
    print()
    print(format_table(
        "Why: fetch behaviour per strategy",
        rows,
        (
            "strategy",
            "throughput_eps",
            "fetch.blocking_stalls",
            "fetch.prefetches_issued",
            "fetch.lazy_postponements",
            "engine.peak_active_runs",
        ),
    ))
    print()
    print(format_comparison(rows, metric="p50"))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Multiple queries sharing one cache and cost model (§4.1).

Two monitoring queries watch the same transaction stream and both consult
the same remote per-customer limit table. Run in isolation, each pays its
own fetches; run through :class:`repro.MultiQueryEIRES`, elements fetched
for one query serve the other, and the cache retains what the
priority-weighted utility across *both* queries says is most valuable.

Both deployments are assembled by the same composition root
(:class:`repro.runtime.RuntimeBuilder`) and driven by the same dispatch
loop, so the comparison isolates exactly one variable: cache sharing.

Run it with::

    python examples/multi_query.py
"""

from __future__ import annotations

from repro import (
    EIRES,
    EiresConfig,
    Event,
    MultiQueryEIRES,
    QuerySpec,
    RemoteStore,
    Stream,
    UniformLatency,
    make_rng,
    parse_query,
)

OVERLIMIT = parse_query(
    """
    SEQ(O o, P p)
    WHERE SAME[customer] AND p.amount > REMOTE<limits>[o.customer]
    WITHIN 20ms
    """,
    name="overlimit",
)

ESCALATION = parse_query(
    """
    SEQ(O o, P p1, P p2)
    WHERE SAME[customer] AND p1.amount > REMOTE<limits>[o.customer]
    AND p2.amount > p1.amount
    WITHIN 20ms
    """,
    name="escalation",
)


def build_store() -> RemoteStore:
    store = RemoteStore()
    for customer in range(150):
        store.put("limits", customer, 400 + 7 * customer)
    return store


def make_stream(n_events: int = 4_000, seed: int = 11) -> Stream:
    rng = make_rng(seed)
    events = []
    t = 0.0
    for _ in range(n_events):
        t += 40.0
        events.append(
            Event(
                t,
                {
                    "type": rng.choice(["O", "P"]),
                    "customer": rng.randrange(150),
                    "amount": rng.randint(1, 2_500),
                },
            )
        )
    return Stream(events)


def main() -> None:
    stream = make_stream()
    latency = UniformLatency(50.0, 400.0)
    config = EiresConfig(cache_capacity=60)

    print("Isolated deployments (one runtime per query):")
    isolated_fetches = 0
    for query in (OVERLIMIT, ESCALATION):
        eires = EIRES(query, build_store(), latency, strategy="Hybrid", config=config)
        result = eires.run(stream)
        stats = result.transport_stats
        fetches = stats["blocking_fetches"] + stats["async_fetches"]
        isolated_fetches += fetches
        print(
            f"  {query.name:11s} matches={result.match_count:5d} "
            f"p50={result.latency.median():8.1f}us  remote fetches={fetches}"
        )

    print("\nShared deployment (one cache, priority-weighted utility):")
    runtime = MultiQueryEIRES(
        [QuerySpec(OVERLIMIT, priority=2.0), QuerySpec(ESCALATION, priority=1.0)],
        build_store(),
        latency,
        config=config,
    )
    results = runtime.run(stream)
    # Every per-query result of a shared replay reports the same transport.
    shared_stats = next(iter(results.values())).transport_stats
    shared_fetches = shared_stats["blocking_fetches"] + shared_stats["async_fetches"]
    for name, result in results.items():
        print(
            f"  {name:11s} matches={result.match_count:5d} "
            f"p50={result.latency.median():8.1f}us"
        )
    print(f"  total remote fetches={shared_fetches}  (isolated: {isolated_fetches})")
    print(
        f"\nSharing saved {isolated_fetches - shared_fetches} fetches "
        f"({1 - shared_fetches / isolated_fetches:.0%}) with identical detections."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's motivating scenario: credit-card fraud detection (Listing 1).

A transaction stream is monitored for two suspicious shapes per credit card:
a high-volume transaction followed by a denial and another high-volume
transaction at an unknown location, OR a spending-limit increase beyond the
organization's maximum followed by a very large transfer to a beneficiary
outside the pre-authorized set.  The location/limit/pre-authorization data
all live in remote databases; the pre-authorized clients are organised
hierarchically (card -> user -> organization), so one fetched organization
container serves every card under it.

Run it with::

    python examples/fraud_detection.py
"""

from __future__ import annotations

from repro import EIRES, EiresConfig
from repro.metrics.reporting import format_comparison, format_table
from repro.workloads.fraud import FraudConfig, fraud_workload


def main() -> None:
    workload = fraud_workload(FraudConfig(n_events=8_000))
    print(f"Workload: {workload}")
    print(f"Query:\n{workload.query}\n")

    rows = []
    for strategy in ("BL1", "BL2", "BL3", "PFetch", "LzEval", "Hybrid"):
        eires = EIRES(
            workload.query,
            workload.store,
            workload.latency_model,
            strategy=strategy,
            config=EiresConfig(cache_capacity=workload.notes["cache_capacity"]),
        )
        result = eires.run(workload.stream)
        rows.append(result.summary())

    print(format_table(
        "Fraud detection: per-strategy latency percentiles (virtual us)",
        rows,
        ("strategy", "matches", "p5", "p25", "p50", "p75", "p95"),
    ))
    print()
    print(format_comparison(rows, metric="p50"))
    print(format_comparison(rows, metric="p95"))

    hierarchy_demo = workload.store.lookup(("preauth", ("org", 0)))
    print(
        f"\nHierarchical remote data: fetching {hierarchy_demo.key} "
        f"(size {hierarchy_demo.total_size()}) also serves "
        f"{sum(1 for _ in hierarchy_demo.descendants()) - 1} contained elements."
    )
    print(
        "\nNote: this query's remote predicates sit on transitions into final "
        "states, so lazy evaluation has nothing to postpone past (Alg. 4's "
        "succ sets are empty) and the gains come from caching and "
        "prefetching alone — a structural property of Listing 1, discussed "
        "in DESIGN.md. The case-study examples show the full EIRES effect."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Case study 1 (paper §7.4, Fig. 10a): bushfire detection.

Satellite radiation readings per geographic cell are matched against the
pattern "three consecutive high-radiation readings of the same cell with
overlapping footprints", validated against remote ground-sensor data
(temperature/humidity thresholds per cell) that is 1–10 ms away.  The
spatial-overlap predicates are compute-intensive, and the window is large —
the regime where EIRES's improvements are largest.

Run it with::

    python examples/bushfire_monitoring.py
"""

from __future__ import annotations

from repro import EIRES, EiresConfig
from repro.metrics.reporting import format_comparison, format_table
from repro.workloads.bushfire import BushfireConfig, bushfire_workload


def main() -> None:
    config = BushfireConfig(n_events=6_000)
    workload = bushfire_workload(config)
    print(f"Workload: {workload}")
    print(
        f"Cells: {config.n_cells} ({config.hot_cell_fraction:.0%} developing hot spots), "
        f"radiation threshold {config.radiation_threshold} K, "
        f"sensor latency {config.latency_low_us / 1000:.0f}-{config.latency_high_us / 1000:.0f} ms\n"
    )

    rows = []
    for strategy in ("BL1", "BL2", "BL3", "PFetch", "LzEval", "Hybrid"):
        eires = EIRES(
            workload.query,
            workload.store,
            workload.latency_model,
            strategy=strategy,
            config=EiresConfig(cache_capacity=workload.notes["cache_capacity"]),
        )
        result = eires.run(workload.stream)
        rows.append(result.summary())

    print(format_table(
        "Bushfire detection: per-strategy latency percentiles (virtual us)",
        rows,
        ("strategy", "matches", "p5", "p25", "p50", "p75", "p95"),
    ))
    print()
    print(format_comparison(rows, metric="p50"))
    print(format_comparison(rows, metric="p95"))
    print(
        "\nPaper reference (Fig. 10a): Hybrid reduces median latencies vs "
        "BL1/BL2/BL3 by 206x/21x/200x; PFetch tracks Hybrid except in the "
        "95th-percentile tail."
    )


if __name__ == "__main__":
    main()

"""Direct tests of the oracle reference matcher itself."""

import pytest

from repro.engine.reference import reference_match_signatures
from repro.events.event import Event
from repro.events.stream import Stream
from repro.nfa.compiler import compile_query
from repro.query.parser import parse_query
from repro.remote.store import RemoteStore


def build(query_text):
    return compile_query(parse_query(query_text, name="ref"))


def stream_of(*specs):
    events = []
    for index, (event_type, attrs) in enumerate(specs):
        events.append(Event(float(index + 1) * 10.0, {"type": event_type, **attrs}))
    return Stream(events)


class TestGreedyEnumeration:
    def test_counts_all_combinations(self):
        automaton = build("SEQ(A a, B b) WITHIN 1000")
        stream = stream_of(("A", {}), ("A", {}), ("B", {}), ("B", {}))
        matches = reference_match_signatures(automaton, stream, RemoteStore(), "greedy")
        assert len(matches) == 4  # 2 A's x 2 B's

    def test_order_preservation(self):
        automaton = build("SEQ(A a, B b) WITHIN 1000")
        stream = stream_of(("B", {}), ("A", {}))
        matches = reference_match_signatures(automaton, stream, RemoteStore(), "greedy")
        assert matches == set()

    def test_window_bound(self):
        automaton = build("SEQ(A a, B b) WITHIN 15 us")
        stream = stream_of(("A", {}), ("B", {}), ("B", {}))  # t=10,20,30
        matches = reference_match_signatures(automaton, stream, RemoteStore(), "greedy")
        assert len(matches) == 1  # only the B at t=20 is within 15us of A

    def test_remote_predicate_respected(self):
        automaton = build("SEQ(A a, B b) WHERE b.v IN REMOTE<r>[a.k] WITHIN 1000")
        store = RemoteStore()
        store.put("r", 1, frozenset({5}))
        stream = stream_of(("A", {"k": 1}), ("B", {"v": 5}), ("B", {"v": 6}))
        matches = reference_match_signatures(automaton, store=store, stream=stream, policy="greedy")
        assert len(matches) == 1

    def test_or_branches(self):
        automaton = build("SEQ(A a, (B b OR C c)) WITHIN 1000")
        stream = stream_of(("A", {}), ("B", {}), ("C", {}))
        matches = reference_match_signatures(automaton, stream, RemoteStore(), "greedy")
        assert len(matches) == 2


class TestNonGreedySimulation:
    def test_takes_first_satisfying_event(self):
        automaton = build("SEQ(A a, B b) WITHIN 1000")
        stream = stream_of(("A", {}), ("B", {}), ("B", {}))
        matches = reference_match_signatures(automaton, stream, RemoteStore(), "non_greedy")
        assert len(matches) == 1
        ((_, _), (_, b_seq)) = sorted(next(iter(matches)))
        assert b_seq == 1

    def test_skips_non_matching_events(self):
        automaton = build("SEQ(A a, B b) WHERE b.v > 5 WITHIN 1000")
        stream = stream_of(("A", {"v": 0}), ("B", {"v": 1}), ("B", {"v": 9}))
        matches = reference_match_signatures(automaton, stream, RemoteStore(), "non_greedy")
        assert len(matches) == 1
        ((_, _), (_, b_seq)) = sorted(next(iter(matches)))
        assert b_seq == 2

    def test_each_start_event_opens_a_run(self):
        automaton = build("SEQ(A a, B b) WITHIN 1000")
        stream = stream_of(("A", {}), ("A", {}), ("B", {}))
        matches = reference_match_signatures(automaton, stream, RemoteStore(), "non_greedy")
        assert len(matches) == 2  # both A-runs consume the single B

    def test_unknown_policy_rejected(self):
        automaton = build("SEQ(A a, B b) WITHIN 1000")
        with pytest.raises(ValueError):
            reference_match_signatures(automaton, Stream([]), RemoteStore(), "eager")

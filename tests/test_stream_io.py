"""Tests for stream trace (de)serialisation."""

import pytest

from repro.events.event import Event
from repro.events.io import events_from_dicts, read_csv, read_jsonl, write_csv, write_jsonl
from repro.events.stream import Stream

from tests.helpers import make_abc_scenario, run_eires


def sample_stream():
    return Stream([
        Event(10.0, {"type": "A", "id": 1, "v": 3}),
        Event(20.0, {"type": "B", "id": 1, "v": 4}),
        Event(30.0, {"type": "C", "id": 2, "v": 5}),
    ])


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(sample_stream(), path)
        loaded = read_jsonl(path)
        assert len(loaded) == 3
        assert loaded[0].t == 10.0
        assert loaded[0].attrs == {"type": "A", "id": 1, "v": 3}

    def test_unsorted_input_sorted_on_request(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"t": 20, "type": "B"}\n{"t": 10, "type": "A"}\n')
        with pytest.raises(ValueError, match="out of order"):
            read_jsonl(path)
        loaded = read_jsonl(path, assume_sorted=False)
        assert [event.t for event in loaded] == [10.0, 20.0]

    def test_missing_timestamp_reported_with_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"t": 1, "type": "A"}\n{"type": "B"}\n')
        with pytest.raises(ValueError, match=":2:"):
            read_jsonl(path)

    def test_invalid_json_reported_with_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"t": 1}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            read_jsonl(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"t": 1, "type": "A"}\n\n{"t": 2, "type": "B"}\n')
        assert len(read_jsonl(path)) == 2

    def test_tuple_payload_serialises_as_list(self, tmp_path):
        stream = Stream([Event(1.0, {"area": (1.0, 2.0, 3.0, 4.0)})])
        path = tmp_path / "trace.jsonl"
        write_jsonl(stream, path)
        loaded = read_jsonl(path)
        assert loaded[0]["area"] == [1.0, 2.0, 3.0, 4.0]

    def test_timestamp_key_collision_rejected(self, tmp_path):
        stream = Stream([Event(1.0, {"t": 5})])
        with pytest.raises(ValueError, match="collides"):
            write_jsonl(stream, tmp_path / "x.jsonl")


class TestCsv:
    def test_round_trip_with_type_inference(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(sample_stream(), path)
        loaded = read_csv(path)
        assert loaded[1].attrs == {"type": "B", "id": 1, "v": 4}
        assert isinstance(loaded[1]["id"], int)

    def test_missing_timestamp_column(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="timestamp column"):
            read_csv(path)

    def test_non_uniform_schema_rejected_on_write(self, tmp_path):
        stream = Stream([Event(1.0, {"a": 1}), Event(2.0, {"b": 2})])
        with pytest.raises(ValueError, match="uniform schema"):
            write_csv(stream, tmp_path / "x.csv")

    def test_empty_stream_writes_header_only(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_csv(Stream([]), path)
        assert path.read_text().strip() == "t"

    def test_float_inference(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("t,rad\n1.0,318.5\n")
        loaded = read_csv(path)
        assert loaded[0]["rad"] == pytest.approx(318.5)


class TestReplayedTraceThroughEires:
    def test_persisted_trace_reproduces_matches(self, tmp_path):
        from tests.helpers import random_stream

        query, store = make_abc_scenario()
        original = random_stream(150, seed=12)
        direct = run_eires(query, store, original)

        path = tmp_path / "replay.jsonl"
        write_jsonl(original, path)
        replayed = run_eires(query, store, read_jsonl(path))
        assert replayed.match_signatures() == direct.match_signatures()


class TestEventsFromDicts:
    def test_builds_stream(self):
        stream = events_from_dicts([{"t": 1, "type": "A"}, {"t": 2, "type": "B"}])
        assert len(stream) == 2
        assert stream[1].event_type == "B"

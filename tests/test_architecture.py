"""Tests for the import-architecture linter (tools/check_architecture.py).

The real tree must pass, and — just as important — the checker must FAIL
when a violation is seeded into a scratch package, or CI's green check
means nothing.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_architecture  # noqa: E402


def seed(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


class TestRealTree:
    def test_repo_architecture_holds(self):
        violations = check_architecture.check_tree(REPO_ROOT / "src" / "repro")
        assert violations == []

    def test_cli_exit_zero_on_real_tree(self, capsys):
        rc = check_architecture.main(["--root", str(REPO_ROOT / "src" / "repro")])
        assert rc == 0
        assert "architecture OK" in capsys.readouterr().out


class TestSeededViolations:
    def test_r1_core_importing_strategies_is_flagged(self, tmp_path):
        seed(tmp_path, "engine/rogue.py", "from repro.strategies.base import FetchStrategy\n")
        violations = check_architecture.check_tree(tmp_path)
        assert any("R1" in v and "engine/rogue.py" in v for v in violations)

    def test_r1_core_importing_runtime_is_flagged(self, tmp_path):
        seed(tmp_path, "nfa/rogue.py", "import repro.runtime.builder\n")
        violations = check_architecture.check_tree(tmp_path)
        assert any("R1" in v and "repro.runtime.builder" in v for v in violations)

    def test_r2_transport_construction_outside_runtime_is_flagged(self, tmp_path):
        seed(
            tmp_path, "bench/rogue.py",
            "from repro.remote.transport import Transport\n"
            "transport = Transport(store, latency, rng, monitor)\n",
        )
        violations = check_architecture.check_tree(tmp_path)
        assert any("R2" in v and "Transport" in v for v in violations)

    def test_r2_cache_construction_outside_runtime_is_flagged(self, tmp_path):
        seed(tmp_path, "core/rogue.py", "cache = lru.LRUCache(100)\n")
        violations = check_architecture.check_tree(tmp_path)
        assert any("R2" in v and "LRUCache" in v for v in violations)

    def test_r3_wiring_two_groups_together_is_flagged(self, tmp_path):
        seed(
            tmp_path, "cli_rogue.py",
            "tracer = Tracer(sink)\ntransport = Transport(store, latency, rng, monitor)\n",
        )
        violations = check_architecture.check_tree(tmp_path)
        assert any("R3" in v and "together" in v for v in violations)

    def test_cli_exit_one_on_seeded_violation(self, tmp_path, capsys):
        seed(tmp_path, "engine/rogue.py", "from repro.core.config import EiresConfig\n")
        rc = check_architecture.main(["--root", str(tmp_path)])
        assert rc == 1
        assert "FAILED" in capsys.readouterr().out


class TestAllowed:
    def test_composition_root_may_build_everything(self, tmp_path):
        seed(
            tmp_path, "runtime/builder2.py",
            "transport = Transport(store, latency, rng, monitor)\n"
            "cache = LRUCache(100)\ntracer = Tracer(sink)\n",
        )
        assert check_architecture.check_tree(tmp_path) == []

    def test_tracer_alone_is_fine_anywhere(self, tmp_path):
        # Callers construct tracers and hand them INTO the builder.
        seed(tmp_path, "cli2.py", "tracer = Tracer(sink, track='Hybrid')\n")
        assert check_architecture.check_tree(tmp_path) == []

    def test_defining_modules_may_reference_their_class(self, tmp_path):
        seed(tmp_path, "cache/lru.py", "DEFAULT = LRUCache(1)\n")
        assert check_architecture.check_tree(tmp_path) == []

"""Unit tests for the remote-data substrate."""

import pytest

from repro.remote.element import DataElement
from repro.remote.faults import DropFaults
from repro.remote.monitor import LatencyMonitor
from repro.remote.retry import RetryPolicy
from repro.remote.store import MISSING_VALUE, RemoteStore
from repro.remote.transport import (
    MODE_BLOCKING,
    FetchRequest,
    FixedLatency,
    PerSourceLatency,
    Transport,
    UniformLatency,
)
from repro.sim.rng import make_rng


class TestDataElement:
    def test_hierarchy_construction(self):
        org = DataElement(("s", "org"), "o", size=0)
        user = DataElement(("s", "user"), "u", size=0, parent=org)
        card = DataElement(("s", "card"), "c", size=2, parent=user)
        assert list(card.ancestors()) == [card, user, org]
        assert {d.key for d in org.descendants()} == {("s", "org"), ("s", "user"), ("s", "card")}

    def test_total_size_sums_descendants(self):
        org = DataElement(("s", "org"), "o", size=1)
        DataElement(("s", "u1"), "u", size=2, parent=org)
        DataElement(("s", "u2"), "u", size=3, parent=org)
        assert org.total_size() == 6

    def test_reparenting_rejected(self):
        a = DataElement(("s", "a"), 1)
        b = DataElement(("s", "b"), 1)
        child = DataElement(("s", "c"), 1, parent=a)
        with pytest.raises(ValueError, match="already has a container"):
            b.add_child(child)

    def test_containment_cycle_rejected(self):
        a = DataElement(("s", "a"), 1)
        b = DataElement(("s", "b"), 1, parent=a)
        with pytest.raises(ValueError, match="cycle"):
            b.add_child(a)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DataElement(("s", "a"), 1, size=-1)


class TestRemoteStore:
    def test_put_and_get(self):
        store = RemoteStore()
        store.put("tbl", 1, "value")
        assert store.get("tbl", 1).value == "value"
        assert ("tbl", 1) in store

    def test_missing_key_yields_empty_sentinel(self):
        store = RemoteStore()
        elem = store.lookup(("tbl", 99))
        assert elem.value == MISSING_VALUE
        assert "x" not in elem.value

    def test_virtual_source_factory(self):
        store = RemoteStore()
        store.register_source("sq", lambda key: key * key)
        assert store.lookup(("sq", 7)).value == 49

    def test_virtual_source_memoises(self):
        calls = []
        store = RemoteStore()
        store.register_source("t", lambda key: calls.append(key) or key)
        store.lookup(("t", 1))
        store.lookup(("t", 1))
        assert calls == [1]

    def test_register_source_invalid_size(self):
        with pytest.raises(ValueError):
            RemoteStore().register_source("x", lambda k: k, size=0)

    def test_put_all_and_sources(self):
        store = RemoteStore()
        store.put_all("a", [(1, "x"), (2, "y")])
        store.put("b", 1, "z")
        assert store.sources() == {"a", "b"}
        assert len(store) == 3


class TestLatencyModels:
    def test_fixed(self):
        model = FixedLatency(5.0)
        assert model.sample(("s", 1), make_rng(1)) == 5.0

    def test_fixed_negative_rejected(self):
        with pytest.raises(ValueError):
            FixedLatency(-1.0)

    def test_uniform_in_range(self):
        model = UniformLatency(10.0, 100.0)
        rng = make_rng(2)
        for _ in range(200):
            assert 10.0 <= model.sample(("s", 1), rng) <= 100.0

    def test_uniform_invalid_range(self):
        with pytest.raises(ValueError):
            UniformLatency(10.0, 5.0)

    def test_per_source_dispatch(self):
        model = PerSourceLatency({"fast": FixedLatency(1.0)}, default=FixedLatency(9.0))
        rng = make_rng(3)
        assert model.sample(("fast", 1), rng) == 1.0
        assert model.sample(("slow", 1), rng) == 9.0

    def test_per_source_without_default_raises(self):
        model = PerSourceLatency({})
        with pytest.raises(KeyError):
            model.sample(("unknown", 1), make_rng(1))


class TestTransport:
    def _transport(self, latency=10.0):
        store = RemoteStore()
        store.put("t", 1, "one")
        store.put("t", 2, "two")
        return Transport(store, FixedLatency(latency), make_rng(5))

    def test_blocking_fetch_latency(self):
        transport = self._transport(25.0)
        request = transport.submit(FetchRequest(("t", 1), at=100.0, mode=MODE_BLOCKING))
        assert request.arrives_at == 125.0
        assert request.element.value == "one"
        assert transport.blocking_fetches == 1

    def test_async_fetch_tracked_until_delivered(self):
        transport = self._transport(10.0)
        transport.submit(FetchRequest(("t", 1), at=0.0))
        assert transport.pending_count() == 1
        assert transport.deliver_due(5.0) == []
        delivered = transport.deliver_due(10.0)
        assert [req.key for req in delivered] == [("t", 1)]
        assert transport.pending_count() == 0

    def test_async_coalesces_duplicate_requests(self):
        transport = self._transport()
        first = transport.submit(FetchRequest(("t", 1), at=0.0))
        second = transport.submit(FetchRequest(("t", 1), at=3.0))
        assert first is second
        assert transport.coalesced == 1
        assert transport.async_fetches == 1

    def test_blocking_joins_in_flight_request(self):
        transport = self._transport(10.0)
        async_request = transport.submit(FetchRequest(("t", 1), at=0.0))
        blocking = transport.submit(FetchRequest(("t", 1), at=8.0, mode=MODE_BLOCKING))
        assert blocking is async_request
        assert transport.blocking_fetches == 0

    def test_delivery_sorted_by_arrival(self):
        store = RemoteStore()
        store.put("t", 1, "a")
        store.put("t", 2, "b")
        latencies = iter([30.0, 10.0])

        class SeqLatency(FixedLatency):
            def __init__(self):
                super().__init__(0.0)

            def sample(self, key, rng):
                return next(latencies)

        transport = Transport(store, SeqLatency(), make_rng(1))
        transport.submit(FetchRequest(("t", 1), at=0.0))  # arrives at 30
        transport.submit(FetchRequest(("t", 2), at=0.0))  # arrives at 10
        delivered = transport.deliver_due(100.0)
        assert [req.key for req in delivered] == [("t", 2), ("t", 1)]

    def test_monitor_records_observations(self):
        transport = self._transport(42.0)
        transport.submit(FetchRequest(("t", 1), at=0.0, mode=MODE_BLOCKING))
        assert transport.monitor.estimate(("t", 1)) == 42.0

    def test_blocking_fetch_registers_in_flight(self):
        # A blocking fetch is visible in the in-flight table until its
        # consumer completes it — an async fetch issued at the same virtual
        # instant must coalesce instead of duplicating the wire request.
        transport = self._transport(10.0)
        blocking = transport.submit(FetchRequest(("t", 1), at=0.0, mode=MODE_BLOCKING))
        assert transport.in_flight(("t", 1)) is blocking
        joined = transport.submit(FetchRequest(("t", 1), at=0.0))
        assert joined is blocking
        assert transport.async_fetches == 0
        assert transport.coalesced == 1
        transport.complete(blocking)
        assert transport.in_flight(("t", 1)) is None
        # Once completed, the key is fetchable again as a fresh request.
        assert transport.submit(FetchRequest(("t", 1), at=20.0)) is not blocking

    def test_complete_ignores_stale_request(self):
        transport = self._transport(10.0)
        first = transport.submit(FetchRequest(("t", 1), at=0.0, mode=MODE_BLOCKING))
        transport.complete(first)
        fresh = transport.submit(FetchRequest(("t", 1), at=5.0))
        transport.complete(first)  # stale handle: must not evict `fresh`
        assert transport.in_flight(("t", 1)) is fresh

    def test_delivery_ties_broken_deterministically(self):
        # Identical arrival times: delivery order falls back to issue time,
        # then to the key itself, independent of dict insertion order.
        store = RemoteStore()
        for k in (1, 2, 3):
            store.put("t", k, str(k))
        transport = Transport(store, FixedLatency(10.0), make_rng(1))
        transport.submit(FetchRequest(("t", 3), at=0.0))
        transport.submit(FetchRequest(("t", 1), at=0.0))
        transport.submit(FetchRequest(("t", 2), at=5.0))  # arrives at 15
        delivered = transport.deliver_due(100.0)
        assert [req.key for req in delivered] == [("t", 1), ("t", 3), ("t", 2)]

    def test_failed_fetch_distinct_from_missing_value(self):
        # A dropped fetch must never masquerade as a successful fetch of the
        # store's MISSING_VALUE sentinel: an empty answer is an answer, a
        # failure is not.
        store = RemoteStore()
        store.put("t", 1, "one")
        transport = Transport(
            store,
            FixedLatency(10.0),
            make_rng(5),
            fault_model=DropFaults(1.0),
            fault_rng=make_rng(6),
            retry_policy=RetryPolicy(max_attempts=2, attempt_timeout=50.0),
        )
        failed = transport.submit(FetchRequest(("t", 1), at=0.0, mode=MODE_BLOCKING))
        assert not failed.ok
        assert failed.element is None
        assert failed.error == "timeout"
        # Whereas a fetch of an absent key *succeeds* with the sentinel.
        clean = Transport(store, FixedLatency(10.0), make_rng(5))
        missing = clean.submit(FetchRequest(("t", 99), at=0.0, mode=MODE_BLOCKING))
        assert missing.ok
        assert missing.element.value is MISSING_VALUE


class TestLatencyMonitor:
    def test_prior_before_observations(self):
        monitor = LatencyMonitor(prior=50.0)
        assert monitor.estimate(("s", 1)) == 50.0

    def test_key_estimate_tracks_observations(self):
        monitor = LatencyMonitor(alpha=0.5)
        monitor.record(("s", 1), 100.0)
        monitor.record(("s", 1), 50.0)
        assert monitor.estimate(("s", 1)) == pytest.approx(75.0)

    def test_source_fallback_for_unseen_key(self):
        monitor = LatencyMonitor()
        monitor.record(("s", 1), 80.0)
        assert monitor.estimate(("s", 999)) == pytest.approx(80.0)
        assert monitor.estimate_source("s") == pytest.approx(80.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyMonitor().record(("s", 1), -1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LatencyMonitor(alpha=0.0)
        with pytest.raises(ValueError):
            LatencyMonitor(prior=0.0)

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import WORKLOADS, main


class TestDescribe:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_describe_prints_automaton(self, workload, capsys):
        assert main(["describe", "--workload", workload]) == 0
        out = capsys.readouterr().out
        assert "Automaton" in out
        assert "Transition" in out


class TestCompare:
    def test_compare_two_strategies(self, capsys):
        code = main([
            "compare", "--workload", "q1", "--events", "800",
            "--strategies", "BL2", "Hybrid",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "BL2" in out and "Hybrid" in out
        assert "p50" in out
        assert "improvement" in out

    def test_compare_single_strategy_no_comparison_line(self, capsys):
        code = main([
            "compare", "--workload", "q2", "--events", "500",
            "--strategies", "BL1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "improvement" not in out

    def test_compare_non_greedy_lru(self, capsys):
        code = main([
            "compare", "--workload", "q1", "--events", "600",
            "--policy", "non_greedy", "--cache", "lru",
            "--strategies", "BL2", "Hybrid", "--capacity", "64",
        ])
        assert code == 0
        assert "lru cache (capacity 64)" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "--workload", "nope"])


class TestConfigFile:
    """--config FILE round-trips TOML into flag defaults."""

    def write_config(self, tmp_path, text):
        path = tmp_path / "eires.toml"
        path.write_text(text)
        return str(path)

    def test_config_file_sets_defaults(self, tmp_path, capsys):
        path = self.write_config(
            tmp_path, 'cache_policy = "lru"\ncache_capacity = 64\n'
        )
        code = main([
            "compare", "--workload", "q1", "--events", "400",
            "--strategies", "Hybrid", "--config", path,
        ])
        assert code == 0
        assert "lru cache (capacity 64)" in capsys.readouterr().out

    def test_explicit_flag_beats_config(self, tmp_path, capsys):
        path = self.write_config(
            tmp_path, 'cache_policy = "lru"\ncache_capacity = 64\n'
        )
        code = main([
            "compare", "--workload", "q1", "--events", "400",
            "--strategies", "Hybrid", "--config", path, "--cache", "cost",
        ])
        assert code == 0
        assert "cost cache (capacity 64)" in capsys.readouterr().out

    def test_unknown_config_key_exits_two(self, tmp_path, capsys):
        path = self.write_config(tmp_path, 'cache_polciy = "lru"\n')
        with pytest.raises(SystemExit) as exc:
            main(["compare", "--workload", "q1", "--config", path])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown --config key" in err and "accepted keys" in err

    def test_unreadable_config_exits_two(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["compare", "--workload", "q1",
                  "--config", str(tmp_path / "missing.toml")])
        assert exc.value.code == 2
        assert "cannot load --config" in capsys.readouterr().err

    def test_equals_form_is_recognised(self, tmp_path, capsys):
        path = self.write_config(tmp_path, "cache_capacity = 32\n")
        code = main([
            "compare", "--workload", "q1", "--events", "400",
            "--strategies", "Hybrid", f"--config={path}",
        ])
        assert code == 0
        assert "(capacity 32)" in capsys.readouterr().out


class TestServe:
    def test_serve_prints_fleet_and_tenants(self, capsys):
        code = main([
            "serve", "--workload", "q1", "--events", "400",
            "--tenants", "2", "--shards", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet: 2 tenants on 2 shard(s)" in out
        assert "tenant0" in out and "tenant1" in out

    def test_serve_json_schema(self, capsys):
        code = main([
            "serve", "--workload", "q1", "--events", "400",
            "--tenants", "2", "--json",
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {"fleet", "tenants"}
        assert report["fleet"]["n_tenants"] == 2
        assert len(report["tenants"]) == 2
        for row in report["tenants"]:
            assert set(row) == {
                "tenant", "query", "shard", "matches", "admitted",
                "throttled", "p50", "p95",
            }

    def test_serve_rate_limit_throttles(self, capsys):
        code = main([
            "serve", "--workload", "q1", "--events", "800",
            "--tenants", "2", "--rate-limit", "20000", "--burst", "8",
            "--json",
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["fleet"]["throttled"] > 0
        assert all(row["admitted"] + row["throttled"] == 800
                   for row in report["tenants"])

    def test_serve_trace_replays_clean(self, tmp_path, capsys):
        out_path = tmp_path / "serve.trace.jsonl"
        code = main([
            "serve", "--workload", "q1", "--events", "400",
            "--tenants", "2", "--shards", "2",
            "--rate-limit", "20000", "--burst", "8",
            "--trace-out", str(out_path), "--trace-format", "jsonl",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "provenance:" in out and "0 inconsistencies" in out
        assert out_path.exists()

    def test_serve_build_error_exits_two(self, capsys):
        # Three round-robin shards for two tenants leaves one shard empty.
        code = main([
            "serve", "--workload", "q1", "--events", "200",
            "--tenants", "2", "--shards", "3",
        ])
        assert code == 2
        assert "received no tenants" in capsys.readouterr().err

    def test_serve_rejects_unknown_placement(self):
        with pytest.raises(SystemExit):
            main(["serve", "--workload", "q1", "--placement", "astrology"])

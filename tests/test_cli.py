"""Tests for the command-line interface."""

import pytest

from repro.cli import WORKLOADS, main


class TestDescribe:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_describe_prints_automaton(self, workload, capsys):
        assert main(["describe", "--workload", workload]) == 0
        out = capsys.readouterr().out
        assert "Automaton" in out
        assert "Transition" in out


class TestCompare:
    def test_compare_two_strategies(self, capsys):
        code = main([
            "compare", "--workload", "q1", "--events", "800",
            "--strategies", "BL2", "Hybrid",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "BL2" in out and "Hybrid" in out
        assert "p50" in out
        assert "improvement" in out

    def test_compare_single_strategy_no_comparison_line(self, capsys):
        code = main([
            "compare", "--workload", "q2", "--events", "500",
            "--strategies", "BL1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "improvement" not in out

    def test_compare_non_greedy_lru(self, capsys):
        code = main([
            "compare", "--workload", "q1", "--events", "600",
            "--policy", "non_greedy", "--cache", "lru",
            "--strategies", "BL2", "Hybrid", "--capacity", "64",
        ])
        assert code == 0
        assert "lru cache (capacity 64)" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "--workload", "nope"])

"""Unit tests for AST -> automaton compilation."""

import pytest

from repro.nfa.compiler import compile_query
from repro.query.ast import EventAtom, Query, SeqPattern, Window
from repro.query.errors import CompileError
from repro.query.parser import parse_query


def _compile(text, name="q"):
    return compile_query(parse_query(text, name=name))


class TestLinearCompilation:
    def test_chain_shape(self):
        automaton = _compile("SEQ(A a, B b, C c) WITHIN 10")
        assert automaton.n_states == 4  # root + 3
        assert len(automaton.final_states) == 1
        assert automaton.final_states[0].path_bindings == ("a", "b", "c")

    def test_transition_types_and_bindings(self):
        automaton = _compile("SEQ(A a, B b) WITHIN 10")
        types = [(t.event_type, t.binding) for t in automaton.transitions]
        assert types == [("A", "a"), ("B", "b")]

    def test_bfs_indices_respect_partial_order(self):
        automaton = _compile("SEQ(A a, (SEQ(B b, C c) OR SEQ(D d, E e))) WITHIN 10")
        for transition in automaton.transitions:
            assert transition.source.index < transition.target.index

    def test_state_partial_order(self):
        automaton = _compile("SEQ(A a, B b, C c) WITHIN 10")
        root, qa, qb, qc = automaton.states
        assert root.precedes(qc)
        assert qa.precedes(qb)
        assert not qb.precedes(qa)
        assert not qa.precedes(qa)  # strict


class TestOrCompilation:
    def test_shared_prefix(self):
        automaton = _compile("SEQ(A a, (SEQ(B b, C c) OR SEQ(D d, E e))) WITHIN 10")
        # root, a, then two branches of two states each
        assert automaton.n_states == 6
        assert len(automaton.final_states) == 2
        a_state = automaton.states[1]
        assert len(a_state.transitions) == 2

    def test_prefix_of_longer_alternative_is_final_and_extending(self):
        pattern = SeqPattern([EventAtom("A", "a"), EventAtom("B", "b")])
        longer = SeqPattern(
            [EventAtom("A", "a"), EventAtom("B", "b"), EventAtom("C", "c")]
        )
        from repro.query.ast import OrPattern

        query = Query(OrPattern([pattern, longer]), [], Window.count(10))
        automaton = compile_query(query)
        b_states = [s for s in automaton.states if s.path_bindings == ("a", "b")]
        assert len(b_states) == 1
        assert b_states[0].is_final
        assert b_states[0].transitions  # can still extend to c


class TestPredicateAttachment:
    def test_predicate_attaches_when_all_bindings_available(self):
        automaton = _compile("SEQ(A a, B b, C c) WHERE a.v < c.v WITHIN 10")
        last = automaton.transitions[-1]
        assert any("a.v" in repr(p) for p in last.local_predicates)
        assert not automaton.transitions[0].local_predicates
        assert not automaton.transitions[1].local_predicates

    def test_single_binding_predicate_on_own_transition(self):
        automaton = _compile("SEQ(A a, B b) WHERE b.v > 5 WITHIN 10")
        assert not automaton.transitions[0].local_predicates
        assert automaton.transitions[1].local_predicates

    def test_same_expands_pairwise_per_transition(self):
        automaton = _compile("SEQ(A a, B b, C c) WHERE SAME[id] WITHIN 10")
        # Transitions beyond the first must carry an equality with previous.
        assert not automaton.transitions[0].local_predicates
        for transition in automaton.transitions[1:]:
            assert len(transition.local_predicates) == 1

    def test_remote_predicate_classified_remote(self):
        automaton = _compile("SEQ(A a, B b) WHERE b.v IN REMOTE[a.v] WITHIN 10")
        last = automaton.transitions[-1]
        assert len(last.remote_predicates) == 1
        assert not last.local_predicates

    def test_branch_local_condition_attaches_only_on_its_branch(self):
        automaton = _compile(
            "SEQ(A a, (SEQ(B b, C c) OR SEQ(D d, E e))) WHERE b.v > 1 WITHIN 10"
        )
        b_transitions = [t for t in automaton.transitions if t.binding == "b"]
        d_transitions = [t for t in automaton.transitions if t.binding == "d"]
        assert b_transitions[0].local_predicates
        assert not d_transitions[0].local_predicates

    def test_cross_branch_condition_rejected(self):
        with pytest.raises(CompileError, match="never co-occur"):
            _compile("SEQ(A a, (B b OR C c)) WHERE b.v < c.v WITHIN 10")


class TestRemoteSites:
    def test_site_key_bound_at_earlier_state(self):
        automaton = _compile("SEQ(A a, B b, C c) WHERE c.v IN REMOTE[a.v] WITHIN 10")
        (site,) = automaton.sites
        assert site.prefetchable
        assert site.bound_at.path_bindings == ("a",)
        # Lookahead candidates: from the need (source of c's transition) back
        # to the binding state of a.
        assert [s.path_bindings for s in site.lookahead_states] == [("a", "b"), ("a",)]

    def test_site_keyed_by_current_event_not_prefetchable(self):
        automaton = _compile("SEQ(A a, B b) WHERE a.v IN REMOTE[b.v] WITHIN 10")
        (site,) = automaton.sites
        assert not site.prefetchable
        assert site.bound_at is None
        assert site.lookahead_states == ()

    def test_two_refs_two_sites(self):
        automaton = _compile(
            "SEQ(A a, B b) WHERE REMOTE<r>[a.m] <> REMOTE<r>[b.m] WITHIN 10"
        )
        assert len(automaton.sites) == 2
        prefetchable = [site for site in automaton.sites if site.prefetchable]
        assert len(prefetchable) == 1
        assert prefetchable[0].ref.key_binding == "a"


class TestCompileErrors:
    def test_duplicate_bindings_rejected(self):
        with pytest.raises(CompileError, match="duplicate"):
            parse_query("SEQ(A x, B x) WITHIN 10")

    def test_conflicting_types_for_shared_prefix(self):
        from repro.query.ast import OrPattern

        bad = OrPattern(
            [
                SeqPattern([EventAtom("A", "a"), EventAtom("B", "b")]),
                SeqPattern([EventAtom("C", "a"), EventAtom("D", "d")]),
            ]
        )
        with pytest.raises(CompileError, match="conflicting types"):
            compile_query(Query(bad, [], Window.count(5)))

    def test_describe_lists_structure(self):
        automaton = _compile("SEQ(A a, B b) WHERE b.v IN REMOTE[a.v] WITHIN 10")
        description = automaton.describe()
        assert "q0" in description and "RemoteSite" in description

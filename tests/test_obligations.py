"""Deterministic tests of the obligation (postponed predicate) mechanism.

These scenarios pin down the split semantics that keep lazy evaluation
correctness-preserving: when a remote predicate cannot be decided at
selection time, the extension carries ``p`` and (under non-greedy selection)
the retained original carries ``NOT p`` with a snapshot of the evaluation
environment.  Once the data arrives, exactly one branch survives.
"""

from repro.events.event import Event
from repro.events.stream import Stream
from repro.query.parser import parse_query
from repro.remote.store import RemoteStore
from repro.remote.transport import FixedLatency

from tests.helpers import run_eires

IN_SET = 5
NOT_IN_SET = 6


def scenario(latency=1_000.0):
    """A-B-C with a remote membership test on B, slow remote data."""
    query = parse_query(
        "SEQ(A a, B b, C c) WHERE SAME[id] AND b.v IN REMOTE[a.v] WITHIN 100000",
        name="obl",
    )
    store = RemoteStore()
    store.register_source("v", lambda key: frozenset({IN_SET}))
    return query, store, FixedLatency(latency)


def events(*specs):
    return Stream([Event(10.0 * (i + 1), attrs) for i, attrs in enumerate(specs)])


class TestNonGreedySplits:
    def test_true_predicate_kills_the_retained_branch(self):
        # B1 satisfies the remote predicate (decided only after C arrived):
        # the non-greedy run must have consumed B1, so the only match uses B1
        # even though B2 also satisfied everything locally.
        query, store, latency = scenario()
        stream = events(
            {"type": "A", "id": 1, "v": 0},
            {"type": "B", "id": 1, "v": IN_SET},
            {"type": "B", "id": 1, "v": IN_SET},
            {"type": "C", "id": 1, "v": 0},
        )
        result = run_eires(query, store, stream, strategy="BL3", policy="non_greedy",
                           latency=latency)
        assert result.match_count == 1
        signature = next(iter(result.match_signatures()))
        assert ("b", 1) in signature  # the first B, not the second

    def test_false_predicate_revives_the_retained_branch(self):
        # B1 fails the remote predicate: the original run must survive the
        # split and consume B2 instead.
        query, store, latency = scenario()
        stream = events(
            {"type": "A", "id": 1, "v": 0},
            {"type": "B", "id": 1, "v": NOT_IN_SET},
            {"type": "B", "id": 1, "v": IN_SET},
            {"type": "C", "id": 1, "v": 0},
        )
        result = run_eires(query, store, stream, strategy="BL3", policy="non_greedy",
                           latency=latency)
        assert result.match_count == 1
        signature = next(iter(result.match_signatures()))
        assert ("b", 2) in signature  # the second B

    def test_split_agrees_with_blocking_resolution(self):
        # The same stream under a blocking strategy (BL2, which always knows
        # the predicate outcome immediately) must produce identical matches.
        query, store, latency = scenario()
        stream = events(
            {"type": "A", "id": 1, "v": 0},
            {"type": "B", "id": 1, "v": IN_SET},
            {"type": "B", "id": 1, "v": NOT_IN_SET},
            {"type": "B", "id": 1, "v": IN_SET},
            {"type": "C", "id": 1, "v": 0},
        )
        lazy = run_eires(query, store, stream, strategy="BL3", policy="non_greedy",
                         latency=latency)
        blocking = run_eires(query, store, stream, strategy="BL2", policy="non_greedy",
                             latency=latency)
        assert lazy.match_signatures() == blocking.match_signatures()


class TestGreedyObligations:
    def test_extension_dies_when_predicate_resolves_false(self):
        query, store, latency = scenario()
        stream = events(
            {"type": "A", "id": 1, "v": 0},
            {"type": "B", "id": 1, "v": NOT_IN_SET},
            {"type": "C", "id": 1, "v": 0},
        )
        result = run_eires(query, store, stream, strategy="BL3", policy="greedy",
                           latency=latency)
        assert result.match_count == 0
        assert result.engine_stats["matches_rejected"] + result.engine_stats[
            "runs_failed_obligation"
        ] >= 1

    def test_original_survives_regardless(self):
        # Greedy keeps the unextended original without any obligation: a
        # later valid B still completes a match.
        query, store, latency = scenario()
        stream = events(
            {"type": "A", "id": 1, "v": 0},
            {"type": "B", "id": 1, "v": NOT_IN_SET},
            {"type": "B", "id": 1, "v": IN_SET},
            {"type": "C", "id": 1, "v": 0},
        )
        result = run_eires(query, store, stream, strategy="BL3", policy="greedy",
                           latency=latency)
        assert result.match_count == 1
        assert ("b", 2) in next(iter(result.match_signatures()))


class TestObligationEnvironmentSnapshot:
    def test_negated_obligation_sees_the_unconsumed_event(self):
        # The retained branch never binds the candidate B event; its NOT(p)
        # obligation must still be checkable, which requires the env snapshot
        # taken at postponement time.  If the snapshot were missing, this
        # would crash (historically: KeyError "binding 'b' not bound").
        query, store, latency = scenario()
        stream = events(
            {"type": "A", "id": 1, "v": 0},
            {"type": "B", "id": 1, "v": IN_SET},
            {"type": "B", "id": 1, "v": IN_SET},
            {"type": "B", "id": 1, "v": IN_SET},
            {"type": "C", "id": 1, "v": 0},
        )
        result = run_eires(query, store, stream, strategy="BL3", policy="non_greedy",
                           latency=latency)
        assert result.match_count == 1

    def test_obligation_checks_are_charged(self):
        query, store, latency = scenario()
        stream = events(
            {"type": "A", "id": 1, "v": 0},
            {"type": "B", "id": 1, "v": IN_SET},
            {"type": "C", "id": 1, "v": 0},
        )
        result = run_eires(query, store, stream, strategy="BL3", latency=latency)
        assert result.engine_stats["obligation_checks"] > 0

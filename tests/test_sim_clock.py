"""Unit tests for the virtual clock."""

import pytest

from repro.sim.clock import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now == 4.0

    def test_advance_returns_new_time(self):
        clock = VirtualClock(1.0)
        assert clock.advance(2.0) == 3.0

    def test_zero_advance_allowed(self):
        clock = VirtualClock(7.0)
        clock.advance(0.0)
        assert clock.now == 7.0

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to_future(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_is_noop(self):
        clock = VirtualClock(10.0)
        clock.advance_to(3.0)
        assert clock.now == 10.0

    def test_advance_to_returns_current_time(self):
        clock = VirtualClock(10.0)
        assert clock.advance_to(3.0) == 10.0
        assert clock.advance_to(12.0) == 12.0

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(100.0)
        clock.reset()
        assert clock.now == 0.0

    def test_reset_to_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().reset(-5.0)

    def test_repr_mentions_time(self):
        assert "12.5" in repr(VirtualClock(12.5))

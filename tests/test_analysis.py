"""Tests for the repro.analysis static-analysis framework.

Three layers, mirroring how the framework earns its keep:

* the **fixture corpus** — every registered rule must pass on its clean
  snippet and fail on its seeded violation, or the framework's green check
  proves nothing;
* the **framework mechanics** — suppression parsing (with mandatory
  justifications), baseline round-trips, the JSON report schema, and the
  ``--explain`` catalogue;
* the **real tree** — ``src`` + ``benchmarks`` must be clean, which is the
  acceptance bar CI enforces on every push.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.analysis import ModuleIndex, all_rules, analyze, get_rule
from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.cli import main
from repro.analysis.core import FRAMEWORK_RULE
from repro.analysis.suppress import parse_suppressions

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).parent / "analysis_fixtures"

_PLACE = re.compile(r"#\s*eires-fixture:\s*place=(\S+)")


def place_fixture(tmp_path: Path, fixture: Path) -> Path:
    """Copy a fixture to its header-declared package path under tmp_path."""
    source = fixture.read_text()
    match = _PLACE.search(source.splitlines()[0])
    assert match is not None, f"{fixture.name} lacks a '# eires-fixture: place=' header"
    target = tmp_path / match.group(1)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


def fixture_cases() -> list[Path]:
    return sorted(FIXTURES.glob("*_*.py"))


class TestFixtureCorpus:
    def test_every_rule_has_a_good_and_a_bad_fixture(self):
        for rule in all_rules():
            assert (FIXTURES / f"{rule.id}_good.py").exists(), rule.id
            assert (FIXTURES / f"{rule.id}_bad.py").exists(), rule.id

    @pytest.mark.parametrize("fixture", fixture_cases(), ids=lambda p: p.stem)
    def test_fixture(self, fixture: Path, tmp_path: Path):
        rule_id, kind = fixture.stem.split("_", 1)
        assert get_rule(rule_id) is not None, f"fixture for unknown rule {rule_id}"
        place_fixture(tmp_path, fixture)
        result = analyze([tmp_path], rule_ids=[rule_id], package_root=tmp_path)
        flagged = [f for f in result.findings if f.rule == rule_id]
        if kind == "bad":
            assert flagged, f"{fixture.name}: expected a {rule_id} finding, got none"
        else:
            assert not result.findings, (
                f"{fixture.name}: expected clean, got {result.findings}"
            )

    def test_bad_fixtures_report_the_seeded_line(self, tmp_path):
        place_fixture(tmp_path, FIXTURES / "D1_bad.py")
        result = analyze([tmp_path], rule_ids=["D1"], package_root=tmp_path)
        (finding,) = result.findings
        assert "time.time" in finding.message
        assert finding.line > 1  # not the header comment


class TestRealTree:
    def test_src_and_benchmarks_are_clean(self):
        result = analyze([REPO_ROOT / "src", REPO_ROOT / "benchmarks"])
        assert result.ok, "\n".join(f.render() for f in result.findings)

    def test_real_tree_suppressions_all_carry_reasons(self):
        result = analyze([REPO_ROOT / "src", REPO_ROOT / "benchmarks"])
        for _, suppression in result.suppressed:
            assert suppression.reason


class TestSuppressions:
    def test_parse_single_rule(self):
        suppressions, malformed = parse_suppressions(
            ["x = 1  # eires: allow[D1] bench wall-clock timing"]
        )
        assert malformed == []
        assert suppressions[1].rule_ids == frozenset({"D1"})
        assert suppressions[1].reason == "bench wall-clock timing"

    def test_parse_multiple_rules(self):
        suppressions, _ = parse_suppressions(["y = 2  # eires: allow[D2, M1] seeding"])
        assert suppressions[1].rule_ids == frozenset({"D2", "M1"})

    def test_missing_reason_is_malformed(self):
        suppressions, malformed = parse_suppressions(["z = 3  # eires: allow[D3]"])
        assert suppressions == {}
        assert malformed and "justification" in malformed[0][1]

    def test_non_allow_marker_is_malformed(self):
        _, malformed = parse_suppressions(["w = 4  # eires: disable D3"])
        assert malformed and "malformed" in malformed[0][1]

    def test_suppressed_finding_is_dropped_and_recorded(self, tmp_path):
        rogue = tmp_path / "rogue.py"
        rogue.write_text(
            "import time\n"
            "START = time.time()  # eires: allow[D1] process start stamp for logs\n"
        )
        result = analyze([tmp_path], rule_ids=["D1"])
        assert result.findings == []
        assert len(result.suppressed) == 1
        finding, suppression = result.suppressed[0]
        assert finding.rule == "D1"
        assert suppression.reason == "process start stamp for logs"

    def test_suppression_for_other_rule_does_not_mask(self, tmp_path):
        rogue = tmp_path / "rogue.py"
        rogue.write_text("import time\nSTART = time.time()  # eires: allow[D2] wrong id\n")
        result = analyze([tmp_path], rule_ids=["D1"])
        assert [f.rule for f in result.findings] == ["D1"]

    def test_malformed_suppression_surfaces_as_framework_finding(self, tmp_path):
        rogue = tmp_path / "rogue.py"
        rogue.write_text("x = 1  # eires: allow[D1]\n")
        result = analyze([tmp_path])
        assert [f.rule for f in result.findings] == [FRAMEWORK_RULE]

    def test_syntax_error_surfaces_as_framework_finding(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        result = analyze([tmp_path])
        assert [f.rule for f in result.findings] == [FRAMEWORK_RULE]
        assert "unparseable" in result.findings[0].message


class TestBaseline:
    def test_round_trip_masks_accepted_findings(self, tmp_path):
        (tmp_path / "rogue.py").write_text("import time\nNOW = time.time()\n")
        result = analyze([tmp_path], rule_ids=["D1"])
        assert len(result.findings) == 1
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, result.findings)
        fingerprints = load_baseline(baseline)
        fresh = analyze([tmp_path], rule_ids=["D1"])
        dropped = fresh.drop_baselined(fingerprints)
        assert fresh.findings == [] and len(dropped) == 1

    def test_fingerprint_is_line_independent(self, tmp_path):
        (tmp_path / "rogue.py").write_text("import time\nNOW = time.time()\n")
        first = analyze([tmp_path], rule_ids=["D1"]).findings[0]
        (tmp_path / "rogue.py").write_text("import time\n\n\nNOW = time.time()\n")
        second = analyze([tmp_path], rule_ids=["D1"]).findings[0]
        assert first.line != second.line
        assert first.fingerprint() == second.fingerprint()

    def test_cli_write_then_strict_run(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "rogue.py").write_text("import time\nNOW = time.time()\n")
        baseline = tmp_path / "baseline.json"
        assert main([str(tree), "--baseline", str(baseline), "--write-baseline"]) == 0
        assert main([str(tree), "--baseline", str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out
        assert main([str(tree)]) == 1


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "rogue.py").write_text("import random\nx = random.random()\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "D2" in out and "FAILED" in out

    def test_missing_path_exits_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["no/such/dir"]) == 2

    def test_unknown_rule_exits_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert main([str(tmp_path), "--rules", "Z9"]) == 2

    def test_json_schema(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "rogue.py").write_text(
            "import random\n"
            "x = random.random()\n"
            "y = random.random()  # eires: allow[D2] fixture exercising suppressed output\n"
        )
        assert main([str(tmp_path), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {
            "schema_version", "rules", "modules", "findings", "suppressed",
            "baselined", "incremental", "ok",
        }
        assert report["schema_version"] == 2 and report["ok"] is False
        assert set(report["incremental"]) == {"parsed", "cached", "dirty_region"}
        assert report["incremental"]["parsed"] == 1
        assert report["incremental"]["cached"] == 0
        assert report["modules"] == 1 and report["baselined"] == 0
        (finding,) = report["findings"]
        assert set(finding) == {"rule", "path", "line", "message", "fingerprint"}
        assert finding["rule"] == "D2" and finding["line"] == 2
        (suppressed,) = report["suppressed"]
        assert suppressed["reason"] == "fixture exercising suppressed output"

    def test_explain_every_registered_rule(self, capsys):
        for rule in all_rules():
            assert main(["--explain", rule.id]) == 0
            out = capsys.readouterr().out
            assert rule.id in out and rule.title in out

    def test_explain_unknown_rule(self, capsys):
        assert main(["--explain", "Q7"]) == 2

    def test_list_rules_names_all(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "D1", "D2", "D3", "D4", "M1", "M2", "A1", "A2", "A3", "A4", "A5", "A6",
            "A7", "T1", "T2", "T3", "P1", "R1", "R2", "R3",
        ):
            assert rule_id in out


class TestModuleIndex:
    def test_binding_resolution_through_aliases(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "import numpy as np\n"
            "from time import perf_counter as pc\n"
            "x = np.random.rand(3)\n"
            "t = pc()\n"
        )
        (module,) = ModuleIndex([tmp_path]).modules
        targets = {target for target, _ in module.calls}
        assert "numpy.random.rand" in targets
        assert "time.perf_counter" in targets

    def test_constant_table_lookup(self, tmp_path):
        (tmp_path / "tables.py").write_text('KEYS = ("a", "b")\nNAME = "x"\n')
        index = ModuleIndex([tmp_path])
        assert index.constant_table("KEYS") == ("a", "b")
        assert index.constant_table("NAME") is None  # not a tuple table

    def test_import_graph_lists_repro_imports(self, tmp_path):
        (tmp_path / "m.py").write_text("import repro.sim.rng\nimport json\n")
        index = ModuleIndex([tmp_path])
        assert index.import_graph()["m.py"] == ["repro.sim.rng"]

    def test_package_root_scoping(self, tmp_path):
        target = tmp_path / "strategies" / "s.py"
        target.parent.mkdir()
        target.write_text("x = 1\n")
        (module,) = ModuleIndex([tmp_path], package_root=tmp_path).modules
        assert module.pkg == "strategies/s.py"
        assert module.pkg_top == "strategies"

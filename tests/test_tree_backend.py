"""Tests for the tree-based execution backend (§9 future work)."""

import pytest

from repro.core.config import EiresConfig
from repro.core.framework import EIRES
from repro.engine.reference import reference_match_signatures
from repro.nfa.compiler import compile_query
from repro.query.parser import parse_query
from repro.remote.store import RemoteStore
from repro.remote.transport import FixedLatency

from tests.helpers import make_abc_scenario, random_stream

ALL_STRATEGIES = ("BL1", "BL2", "BL3", "PFetch", "LzEval", "Hybrid")


def run_tree(query, store, stream, strategy="Hybrid", latency=50.0, **config):
    eires = EIRES(
        query, store, FixedLatency(latency), strategy=strategy,
        config=EiresConfig(cache_capacity=config.pop("cache_capacity", 100), **config),
        backend="tree",
    )
    return eires.run(stream)


class TestTreeEquivalence:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_matches_equal_oracle(self, strategy):
        query, store = make_abc_scenario()
        stream = random_stream(150, seed=21)
        expected = reference_match_signatures(compile_query(query), stream, store, "greedy")
        result = run_tree(query, store, stream, strategy=strategy)
        assert result.match_signatures() == expected

    def test_matches_equal_automaton_backend(self):
        query, store = make_abc_scenario()
        stream = random_stream(200, seed=22)
        tree = run_tree(query, store, stream)
        automaton = EIRES(query, store, FixedLatency(50.0), strategy="Hybrid",
                          config=EiresConfig(cache_capacity=100)).run(stream)
        assert tree.match_signatures() == automaton.match_signatures()

    def test_multiple_seeds(self):
        query, store = make_abc_scenario()
        automaton = compile_query(query)
        for seed in (1, 2, 3):
            stream = random_stream(100, seed=seed)
            expected = reference_match_signatures(automaton, stream, store, "greedy")
            assert run_tree(query, store, stream).match_signatures() == expected

    def test_q1_style_two_remote_sites(self):
        query = parse_query(
            """
            SEQ(A a, B b, C c, D d)
            WHERE SAME[id] AND c.v IN REMOTE<r1>[a.v] AND d.v IN REMOTE<r2>[b.v]
            WITHIN 5000
            """,
            name="two-remote",
        )
        store = RemoteStore()
        store.register_source("r1", lambda key: frozenset(range(6)))
        store.register_source("r2", lambda key: frozenset(range(6)))
        stream = random_stream(250, seed=31, types="ABCD")
        expected = reference_match_signatures(compile_query(query), stream, store, "greedy")
        for strategy in ("BL2", "BL3", "Hybrid"):
            assert run_tree(query, store, stream, strategy=strategy).match_signatures() == expected


class TestTreeRestrictions:
    def test_or_queries_rejected(self):
        query = parse_query("SEQ(A a, (B b OR C c)) WITHIN 100", name="t")
        store = RemoteStore()
        with pytest.raises(ValueError, match="linear SEQ"):
            EIRES(query, store, FixedLatency(10.0), backend="tree",
                  config=EiresConfig(cache_capacity=8))

    def test_non_greedy_rejected(self):
        query, store = make_abc_scenario()
        with pytest.raises(ValueError, match="greedy"):
            EIRES(query, store, FixedLatency(10.0), backend="tree",
                  config=EiresConfig(cache_capacity=8, policy="non_greedy"))

    def test_unknown_backend_rejected(self):
        query, store = make_abc_scenario()
        with pytest.raises(ValueError, match="unknown backend"):
            EIRES(query, store, FixedLatency(10.0), backend="gpu",
                  config=EiresConfig(cache_capacity=8))


class TestTreeLatencyShapes:
    """§9's expectation: the automaton results carry over to the tree model."""

    def test_strategy_ordering_carries_over(self):
        query, store = make_abc_scenario()
        stream = random_stream(250, seed=41)
        p50 = {
            strategy: run_tree(query, store, stream, strategy=strategy).latency.median()
            for strategy in ("BL1", "BL2", "Hybrid")
        }
        assert p50["Hybrid"] <= p50["BL2"] <= p50["BL1"]

    def test_prefetch_triggers_on_buffer_insertion(self):
        query, store = make_abc_scenario()
        stream = random_stream(200, seed=43)
        result = run_tree(query, store, stream, strategy="PFetch")
        bl2 = run_tree(query, store, stream, strategy="BL2")
        assert result.strategy_stats["prefetches_issued"] > 0
        # Prefetching at insertion hides most (not necessarily all: short
        # insert-to-join gaps can undercut the transmission latency) stalls.
        assert result.strategy_stats["blocking_stalls"] < bl2.strategy_stats["blocking_stalls"]

    def test_deferred_strategies_batch_fetches_at_emission(self):
        query, store = make_abc_scenario()
        stream = random_stream(120, seed=44)
        bl3 = run_tree(query, store, stream, strategy="BL3", latency=500.0)
        # Every deferred candidate pays (at most) one concurrent round.
        assert bl3.engine_stats["obligation_checks"] > 0

    def test_window_prunes_buffers(self):
        query = parse_query("SEQ(A a, B b) WHERE SAME[id] WITHIN 100 us", name="t")
        _, store = make_abc_scenario()
        from repro.events.event import Event
        from repro.events.stream import Stream

        events = Stream([
            Event(0.0, {"type": "A", "id": 1, "v": 1}),
            Event(500.0, {"type": "B", "id": 1, "v": 1}),  # A expired
        ])
        result = run_tree(query, store, events)
        assert result.match_count == 0
        assert result.engine_stats["runs_expired"] == 1

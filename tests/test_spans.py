"""Tests for per-match latency-attribution spans.

The acceptance bar for the span plane:

* every traced match carries a span whose components sum to the recorded
  end-to-end latency, replay-verified on q1 and q2, healthy and faulted,
  with and without shedding and batching;
* spans ride on the trace bus, so enabling them is inert — match set,
  summary, and RNG-dependent outcomes are identical to an untraced run;
* a tampered span record is caught by the replay verifier.
"""

import pytest

from repro.bench.harness import run_strategy
from repro.core.config import EiresConfig
from repro.obs.provenance import replay_trace, verify_span_record
from repro.obs.spans import SPAN_COMPONENTS, SPAN_RECORD_NAME, SpanTracker, aggregate_spans
from repro.obs.trace import CAT_SPAN, MemorySink, Tracer
from repro.workloads.synthetic import SyntheticConfig, q1_workload, q2_workload


def q1():
    return q1_workload(SyntheticConfig(n_events=1500, id_domain=20, window_events=400))


def q2():
    return q2_workload(
        SyntheticConfig(n_events=1200, id_domain=40, window_events=400, seed=7)
    )


def traced_run(workload, strategy="Hybrid", config=None):
    sink = MemorySink()
    result = run_strategy(
        workload,
        strategy,
        config if config is not None else EiresConfig(),
        tracer=Tracer(sink, track=strategy),
    )
    return result, sink


def span_records(sink):
    return [
        record
        for record in sink.records
        if record["cat"] == CAT_SPAN and record["name"] == SPAN_RECORD_NAME
    ]


class TestSpanDecomposition:
    @pytest.mark.parametrize("make_workload", [q1, q2], ids=["q1", "q2"])
    @pytest.mark.parametrize("fault_profile", ["none", "drop:0.05"])
    def test_every_match_has_a_verified_span(self, make_workload, fault_profile):
        config = EiresConfig(fault_profile=fault_profile)
        result, sink = traced_run(make_workload(), config=config)
        spans = span_records(sink)
        assert result.match_count > 0
        assert len(spans) == result.match_count
        replay = replay_trace(sink.records)
        assert replay["checked_spans"] == result.match_count
        assert replay["problems"] == []

    @pytest.mark.parametrize("strategy", ["BL1", "BL3", "PFetch", "LzEval"])
    def test_span_accounting_holds_across_strategies(self, strategy):
        result, sink = traced_run(q1(), strategy=strategy)
        replay = replay_trace(sink.records)
        assert replay["checked_spans"] == result.match_count > 0
        assert replay["problems"] == []

    def test_span_accounting_under_shedding(self):
        config = EiresConfig(shed_policy="events", latency_bound=200.0)
        result, sink = traced_run(q1(), config=config)
        replay = replay_trace(sink.records)
        assert replay["checked_spans"] == result.match_count > 0
        assert replay["problems"] == []

    def test_span_accounting_under_batching(self):
        config = EiresConfig(batch_window=60.0, batch_max_keys=8)
        result, sink = traced_run(q1(), strategy="PFetch", config=config)
        replay = replay_trace(sink.records)
        assert replay["checked_spans"] == result.match_count > 0
        assert replay["problems"] == []

    def test_blocking_strategy_attributes_wire_time(self):
        _, sink = traced_run(q1(), strategy="BL1")
        spans = span_records(sink)
        assert sum(record["wire"] for record in spans) > 0.0


class TestSpansAreInert:
    @pytest.mark.parametrize("fault_profile", ["none", "drop:0.05"])
    def test_traced_run_reproduces_untraced_results(self, fault_profile):
        config = EiresConfig(fault_profile=fault_profile)
        plain = run_strategy(q1(), "Hybrid", config)
        traced, sink = traced_run(q1(), config=config)
        assert span_records(sink), "tracing must produce spans"
        assert traced.match_signatures() == plain.match_signatures()
        assert traced.summary() == plain.summary()

    def test_untraced_strategy_has_no_span_tracker(self):
        result = run_strategy(q1(), "Hybrid", EiresConfig())
        assert result.match_count > 0
        assert all(match.span is None for match in result.matches)


class TestSpanVerifier:
    def _valid_record(self):
        record = {name: 0.0 for name in SPAN_COMPONENTS}
        record.update(
            {"seq": 1, "cat": CAT_SPAN, "name": SPAN_RECORD_NAME,
             "wire": 30.0, "eval": 12.0, "latency": 42.0, "dur": 42.0}
        )
        return record

    def test_consistent_record_passes(self):
        assert verify_span_record(self._valid_record()) == []

    def test_component_sum_mismatch_caught(self):
        record = self._valid_record()
        record["wire"] = 35.0  # components now sum to 47, latency says 42
        problems = verify_span_record(record)
        assert problems and "sum" in problems[0]

    def test_negative_component_caught(self):
        record = self._valid_record()
        record["queueing"] = -5.0
        record["eval"] = 17.0  # keep the sum consistent: only the sign is bad
        problems = verify_span_record(record)
        assert problems and "negative" in problems[0]

    def test_missing_field_caught(self):
        record = self._valid_record()
        del record["batch_wait"]
        problems = verify_span_record(record)
        assert problems and "missing" in problems[0]

    def test_dur_latency_disagreement_caught(self):
        record = self._valid_record()
        record["dur"] = 40.0
        problems = verify_span_record(record)
        assert any("disagrees" in problem for problem in problems)


class TestSpanTracker:
    def test_capture_decomposes_pickup_stalls_and_eval(self):
        tracker = SpanTracker()
        tracker.begin_event(100.0)

        class Ticket:
            issued_at = 100.0
            wire_started_at = 100.0
            arrives_at = 130.0
            key = ("site", 1)

        tracker.add_stall(100.0, 130.0, [Ticket()])
        span = tracker.capture(90.0, 150.0)
        assert span["queueing"] == pytest.approx(10.0)
        assert span["wire"] == pytest.approx(30.0)
        assert span["eval"] == pytest.approx(20.0)
        assert sum(span[name] for name in SPAN_COMPONENTS) == pytest.approx(60.0)

    def test_aggregate_spans_shares_sum_to_one(self):
        _, sink = traced_run(q1())
        summary = aggregate_spans(sink.records)
        assert summary["matches"] > 0
        shares = sum(data["share"] for data in summary["components"].values())
        assert shares == pytest.approx(1.0)

"""Shared builders for engine/strategy tests."""

from __future__ import annotations

import random

from repro.core.config import EiresConfig
from repro.core.framework import EIRES
from repro.events.event import Event
from repro.events.stream import Stream
from repro.query.parser import parse_query
from repro.remote.store import RemoteStore
from repro.remote.transport import FixedLatency, LatencyModel

__all__ = ["make_abc_scenario", "run_eires", "random_stream"]


def make_abc_scenario(set_members=frozenset({1, 2, 3, 4})):
    """A small 3-step query over types A/B/C with one remote membership test.

    Remote source ``v`` maps every key to ``set_members``; the predicate
    ``b.v IN REMOTE[a.v]`` passes iff the B event's ``v`` lies in that set.
    """
    query = parse_query(
        """
        SEQ(A a, B b, C c)
        WHERE SAME[id] AND b.v IN REMOTE[a.v]
        WITHIN 2000
        """,
        name="abc",
    )
    store = RemoteStore()
    store.register_source("v", lambda key: set_members)
    return query, store


def random_stream(n_events: int, seed: int, types="ABC", id_domain=3, v_domain=10,
                  gap: float = 10.0) -> Stream:
    rng = random.Random(seed)
    events = []
    t = 0.0
    for _ in range(n_events):
        t += gap
        events.append(
            Event(
                t,
                {
                    "type": rng.choice(types),
                    "id": rng.randint(1, id_domain),
                    "v": rng.randint(0, v_domain - 1),
                },
            )
        )
    return Stream(events)


def run_eires(query, store, stream, strategy="Hybrid", policy="greedy",
              latency: LatencyModel | None = None, tracer=None, **config_kwargs):
    config = EiresConfig(policy=policy, cache_capacity=config_kwargs.pop("cache_capacity", 100),
                         **config_kwargs)
    eires = EIRES(
        query,
        store,
        latency if latency is not None else FixedLatency(50.0),
        strategy=strategy,
        config=config,
        tracer=tracer,
    )
    return eires.run(stream)

# eires-fixture: place=examples/public_surface_demo.py
"""An example on the curated surface: `repro` + public subpackages only."""
from repro import EIRES, EiresConfig, parse_query
from repro.workloads import synthetic


def run():
    query = parse_query("SEQ(A a, B b) WITHIN 100 WHERE remote(a, 'v')")
    stream = synthetic.make_stream(n_events=100, seed=7)
    store = synthetic.make_store()
    framework = EIRES(store, config=EiresConfig(seed=7))
    return framework.run(query, stream)

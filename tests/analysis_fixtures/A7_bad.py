# eires-fixture: place=core/rogue_fleet.py
"""Serving-plane internals wired outside repro.serving — A7 flags."""


def assemble(shards, placement, plane):
    bucket = TokenBucket(rate=100.0, burst=10.0)
    return Fleet(shards, placement, plane, buckets=[bucket])

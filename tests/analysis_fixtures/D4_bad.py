# eires-fixture: place=strategies/prefetch.py
"""Exact float equality on an Eq. 7 gate expression — D4 must flag it."""


def admit(candidate: float, cache) -> bool:
    if candidate == cache.min_utility():
        return False
    return candidate != 0.0

# eires-fixture: place=sim/stopwatch.py
"""sim/ implements the time substrate, so wall-clock reads are allowed."""
import time


def wall_elapsed(start: float) -> float:
    return time.perf_counter() - start

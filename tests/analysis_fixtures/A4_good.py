# eires-fixture: place=strategies/uses_submit.py
"""Strategy code on the unified surface — submit(FetchRequest) is fine."""
from repro.remote.transport import MODE_BLOCKING, FetchRequest


def resolve(transport, key, now):
    ticket = transport.submit(FetchRequest(key, at=now, mode=MODE_BLOCKING))
    return ticket.element

# eires-fixture: place=strategies/rogue_guard.py
"""emit() without the enabled guard — M2 must flag it."""
from repro.obs.trace import CAT_FETCH


def instrument(tracer, now: float) -> None:
    tracer.emit(CAT_FETCH, "issue", now)

# eires-fixture: place=strategies/laundered_rng.py
"""An ambient-RNG draw laundered through a helper into a metric update."""
import random


def _jitter() -> float:
    return random.random() * 0.1


def _scaled(base: float) -> float:
    return base + _jitter()


def record(registry, base: float) -> None:
    registry.gauge("strategy.jitter").observe(_scaled(base))

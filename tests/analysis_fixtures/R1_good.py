# eires-fixture: place=obs/report.py
"""Categories imported from the defining registry — no drift."""
from repro.obs.trace import CAT_FETCH


def snapshot(tracer, payload: dict) -> None:
    if tracer.enabled:
        tracer.emit(CAT_FETCH, payload)

# eires-fixture: place=strategies/laundered_clock.py
"""A two-hop wall-clock leak: the read escapes through two returns into an
emit sink — D1 sees nothing at the sink, T1 must follow the chain."""
import time


def _raw_now() -> float:
    return time.time()


def _stamp(offset: float) -> float:
    return _raw_now() + offset


def report(tracer, offset: float) -> None:
    stamped = _stamp(offset)
    if tracer.enabled:
        tracer.emit("span", {"at": stamped})

# eires-fixture: place=core/uses_builder.py
"""Shedding requested through config; RuntimeBuilder wires the plane."""
from repro.core.config import EiresConfig


def overloaded_config() -> EiresConfig:
    return EiresConfig(shed_policy="runs", latency_bound=100.0)

# eires-fixture: place=strategies/rogue_trace.py
"""Stray string literals at emission sites — M1 must flag both."""


def instrument(tracer, registry, now: float) -> None:
    if tracer.enabled:
        tracer.emit("fetch", "issue", now)
    registry.counter("fetch.retries").inc()

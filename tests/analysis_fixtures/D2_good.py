# eires-fixture: place=strategies/clean_rng.py
"""Annotating with random.Random and drawing from an injected rng is fine."""
import random


def jitter(base: float, rng: random.Random) -> float:
    return base * rng.random()

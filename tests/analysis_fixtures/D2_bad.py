# eires-fixture: place=strategies/rogue_rng.py
"""Draws from the global random module — D2 must flag it."""
import random


def jitter(base: float) -> float:
    return base * random.random()


def fresh_generator(seed: int):
    return random.Random(seed)

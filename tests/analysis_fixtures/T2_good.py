# eires-fixture: place=strategies/injected_rng.py
"""Randomness comes from an injected seeded stream — no ambient taint."""


def _jitter(rng) -> float:
    return rng.random() * 0.1


def _scaled(rng, base: float) -> float:
    return base + _jitter(rng)


def record(registry, rng, base: float) -> None:
    registry.gauge("strategy.jitter").observe(_scaled(rng, base))

# eires-fixture: place=cache/rogue_iter.py
"""Iterates an unsorted dict view and a set in decision code — D3 flags."""


def pick_victims(utilities: dict, resident: set) -> list:
    victims = []
    for key, utility in utilities.items():
        if utility <= 0:
            victims.append(key)
    extra = [key for key in set(resident)]
    return victims + extra

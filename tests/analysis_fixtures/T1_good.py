# eires-fixture: place=strategies/injected_clock.py
"""Timestamps come from the injected virtual clock — no wall-clock taint."""


def _stamp(clock, offset: float) -> float:
    return clock.now() + offset


def report(tracer, clock, offset: float) -> None:
    stamped = _stamp(clock, offset)
    if tracer.enabled:
        tracer.emit("span", {"at": stamped})

# eires-fixture: place=examples/rogue_internal_import.py
"""An example reaching into internal modules — R3 flags each import."""
from repro.core.config import EiresConfig
from repro.runtime.builder import RuntimeBuilder


def build(store, latency_model, query):
    builder = RuntimeBuilder(store, latency_model, config=EiresConfig(seed=7))
    return builder.add_query(query).build()

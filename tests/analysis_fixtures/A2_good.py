# eires-fixture: place=runtime/extra_builder.py
"""The composition root may build every substrate class."""
from repro.cache.lru import LRUCache
from repro.remote.transport import Transport

cache = LRUCache(100)
transport = Transport(store, latency, rng, monitor)

# eires-fixture: place=utility/model.py
"""A promised-pure scoring function: builds only fresh locals, returns."""


class UtilityModel:
    def __init__(self, omega: float) -> None:
        self.omega = omega

    def value(self, run, now: float) -> float:
        weights = [self.omega, now]
        weights.append(2.0)
        return sum(weights)

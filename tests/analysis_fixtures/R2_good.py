# eires-fixture: place=backends/clean.py
"""A backend registered under a documented name and alias."""
from repro.backends import register_backend


@register_backend("reference", aliases=("automaton",))
class CleanBackend:
    pass

# eires-fixture: place=strategies/prefetch.py
"""Ordering comparisons and explicit tolerances pass D4."""

_EPS = 1e-9


def admit(candidate: float, cache) -> bool:
    minimum = cache.min_utility()
    if abs(candidate - minimum) <= _EPS:
        return False
    return candidate > minimum

# eires-fixture: place=core/rogue_shedder.py
"""A LoadShedder wired outside the composition root — A5 flags."""
from repro.shedding import LoadShedder, OverloadDetector, make_shedding_policy


def attach_shedding(session, clock):
    detector = OverloadDetector(latency_bound=100.0)
    policy = make_shedding_policy("runs", automaton=session.automaton, omega=0.5)
    session.shedder = LoadShedder(detector, policy, clock)

# eires-fixture: place=engine/clean.py
"""The core may import sideways and downwards (nfa, events, sim)."""
from repro.nfa.run import Run


def touch(run: Run) -> None:
    pass

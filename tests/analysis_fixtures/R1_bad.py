# eires-fixture: place=obs/report.py
"""A locally minted category constant: spelled like CAT_*, so M1 passes,
but repro.obs.trace has never heard of it — R1 must flag the drift."""

CAT_BOGUS = "bogus"


def snapshot(tracer, payload: dict) -> None:
    if tracer.enabled:
        tracer.emit(CAT_BOGUS, payload)

# eires-fixture: place=core/rogue.py
"""Substrate construction outside repro.runtime — A2 (R2) flags."""
from repro.cache.lru import LRUCache

cache = LRUCache(100)

# eires-fixture: place=strategies/rogue_clock.py
"""Reads the host wall clock from strategy code — D1 must flag it."""
import time


def decide(now_virtual: float) -> float:
    return time.time() - now_virtual

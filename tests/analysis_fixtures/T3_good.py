# eires-fixture: place=cache/order_sorted.py
"""The escaping value is sorted at the source — the order taint is stripped."""


def _candidates(index: dict) -> list:
    return sorted(set(index))


def flush(registry, index: dict) -> None:
    for key in _candidates(index):
        registry.counter("cache.evictions").inc(key)

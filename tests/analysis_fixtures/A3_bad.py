# eires-fixture: place=cli_rogue.py
"""Wiring two substrate groups together outside runtime — A3 (R3) flags."""

tracer = Tracer(sink)
transport = Transport(store, latency, rng, monitor)

# eires-fixture: place=core/uses_fleet_builder.py
"""Tenants declared as specs; FleetBuilder composes the fleet."""
from repro.serving import FleetBuilder, TenantSpec


def serve(store, latency_model, tenants, queries):
    builder = FleetBuilder(store, latency_model, n_shards=2)
    for name in tenants:
        builder.add_tenant(TenantSpec(name, queries[name], rate_limit=100.0))
    return builder.build()

# eires-fixture: place=strategies/rogue_engine.py
"""An engine hand-built outside the composition root, on a rogue numpy
import — A6 flags both."""
import numpy as np

from repro.engine.engine import Engine


def attach_engine(automaton, clock):
    engine = Engine(automaton, clock)
    engine.bias = np.zeros(4)
    return engine

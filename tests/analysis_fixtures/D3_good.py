# eires-fixture: place=cache/clean_iter.py
"""sorted(...) around views and sets keeps decision order deterministic."""


def pick_victims(utilities: dict, resident: set) -> list:
    victims = []
    for key, utility in sorted(utilities.items()):
        if utility <= 0:
            victims.append(key)
    extra = [key for key in sorted(resident)]
    return victims + extra

# eires-fixture: place=engine/rogue.py
"""The evaluation core importing the strategy layer — A1 (R1) flags."""
from repro.strategies.base import FetchStrategy


def shortcut(strategy: FetchStrategy) -> None:
    pass

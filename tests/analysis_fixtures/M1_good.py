# eires-fixture: place=strategies/clean_trace.py
"""Categories from CAT_* constants, metric names from the key tables."""
from repro.obs.trace import CAT_FETCH
from repro.strategies.stats import STRATEGY_COUNTER_KEYS


def instrument(tracer, registry, now: float) -> None:
    if tracer.enabled:
        tracer.emit(CAT_FETCH, "issue", now)
    for key in STRATEGY_COUNTER_KEYS:
        registry.counter(f"fetch.{key}")

# eires-fixture: place=utility/model.py
"""A promised-pure scoring function that caches into instance state —
P1 must flag the attribute store."""


class UtilityModel:
    def __init__(self) -> None:
        self._memo = {}

    def value(self, run, now: float) -> float:
        score = now * 2.0
        self._memo[run] = score
        return score

# eires-fixture: place=cache/order_leak.py
"""A return-value order leak: a helper returns ``set(...)`` and the caller
iterates the unordered value into a metric sink — D3 never sees the sink."""


def _candidates(index: dict) -> set:
    return set(index)


def flush(registry, index: dict) -> None:
    for key in _candidates(index):
        registry.counter("cache.evictions").inc(key)

# eires-fixture: place=cli_clean.py
"""Constructing a Tracer alone is fine: callers hand tracers INTO the builder."""

tracer = Tracer(sink, track="Hybrid")

# eires-fixture: place=strategies/rogue_shim.py
"""A removed Transport shim called (and redefined) — A4 flags both."""


def resolve(transport, key, now):
    request = transport.fetch_blocking(key, now)
    return request.element


def fetch_async(transport, key, now):
    return transport.submit(key, now)

# eires-fixture: place=strategies/rogue_shim.py
"""A deprecated Transport shim called outside repro.remote — A4 flags."""


def resolve(transport, key, now):
    request = transport.fetch_blocking(key, now)
    return request.element

# eires-fixture: place=core/uses_backend_registry.py
"""A backend chosen by name; RuntimeBuilder constructs it via the registry."""
from repro.runtime.session import QuerySpec


def spec_for(query):
    return QuerySpec(query, strategy="Hybrid", backend="vectorized")

# eires-fixture: place=backends/rogue.py
"""A backend registered under a name no docs table mentions — R2 must
flag the undocumented registration."""
from repro.backends import register_backend


@register_backend("undocumented_backend")
class RogueBackend:
    pass

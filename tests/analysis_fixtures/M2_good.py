# eires-fixture: place=strategies/clean_guard.py
"""The documented guard pattern: one attribute read on the disabled path."""
from repro.obs.trace import CAT_FETCH


def instrument(tracer, now: float) -> None:
    if tracer.enabled:
        tracer.emit(CAT_FETCH, "issue", now)

"""Tests for the whole-program analysis engine.

Covers the layers the per-module fixture corpus cannot: call-graph
resolution (self-methods, re-export aliases), the interprocedural taint
fixpoint, purity inference, registry-drift cross-checks, and the
incremental cache (warm findings byte-identical to cold, edits
invalidating exactly the dirty modules).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import ModuleIndex, analyze
from repro.analysis.cache import AnalysisCache
from repro.analysis.callgraph import build_call_graph
from repro.analysis.cli import main
from repro.analysis.effects import effect_analysis
from repro.analysis.taint import taint_analysis

REPO_ROOT = Path(__file__).resolve().parents[1]


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return root


class TestCallGraphResolution:
    def test_self_method_calls_resolve(self, tmp_path):
        write_tree(tmp_path, {
            "m.py": (
                "class Engine:\n"
                "    def step(self):\n"
                "        return self.helper()\n"
                "    def helper(self):\n"
                "        return 1\n"
            ),
        })
        index = ModuleIndex([tmp_path], package_root=tmp_path)
        (module,) = index.modules
        # The satellite fix: self.helper() lands in the flat call table ...
        assert ("repro.m.Engine.helper", 3) in module.calls
        # ... and resolves to a call-graph edge.
        graph = build_call_graph(index)
        edges = dict(graph.edges["m.py::Engine.step"])
        assert edges[0] == "m.py::Engine.helper"

    def test_reexport_aliases_canonicalize(self, tmp_path):
        write_tree(tmp_path, {
            "__init__.py": "from repro.core.config import EiresConfig\n",
            "core/config.py": (
                "class EiresConfig:\n"
                "    def __init__(self):\n"
                "        self.omega = 1.0\n"
            ),
            "client.py": (
                "from repro import EiresConfig\n"
                "cfg = EiresConfig()\n"
            ),
        })
        index = ModuleIndex([tmp_path], package_root=tmp_path)
        client = next(m for m in index if m.rel == "client.py")
        # The satellite fix: the alias resolves through the package
        # __init__ re-export to the defining module.
        assert client.bindings["EiresConfig"] == "repro.core.config.EiresConfig"
        assert ("repro.core.config.EiresConfig", 2) in client.calls
        graph = build_call_graph(index)
        edges = dict(graph.edges["client.py::<module>"])
        assert edges[0] == "core/config.py::EiresConfig.__init__"

    def test_real_tree_reexports_resolve(self):
        index = ModuleIndex([REPO_ROOT / "src"])
        assert index.canonical_name("repro.EiresConfig").startswith("repro.core.config")

    def test_dirty_region_includes_transitive_importers(self, tmp_path):
        write_tree(tmp_path, {
            "a.py": "from repro.b import mid\n",
            "b.py": "from repro.c import low\n\n\ndef mid():\n    return low()\n",
            "c.py": "def low():\n    return 1\n",
            "lone.py": "x = 1\n",
        })
        graph = build_call_graph(ModuleIndex([tmp_path], package_root=tmp_path))
        assert graph.dirty_region({"c.py"}) == ["a.py", "b.py", "c.py"]
        assert graph.dirty_region({"a.py"}) == ["a.py"]
        assert graph.dirty_region({"lone.py"}) == ["lone.py"]


class TestTaint:
    def test_two_hop_wall_clock_leak_across_modules(self, tmp_path):
        write_tree(tmp_path, {
            "clockio.py": (
                "import time\n\n\n"
                "def raw_now():\n"
                "    return time.time()\n"
            ),
            "reporter.py": (
                "from repro.clockio import raw_now\n\n\n"
                "def stamp(offset):\n"
                "    return raw_now() + offset\n\n\n"
                "def report(tracer, offset):\n"
                "    if tracer.enabled:\n"
                "        tracer.emit('span', {'at': stamp(offset)})\n"
            ),
        })
        result = analyze([tmp_path], rule_ids=["T1"], package_root=tmp_path)
        (finding,) = result.findings
        # The finding anchors at the SOURCE (the time.time() line) and
        # names the sink it reaches.
        assert finding.rel == "clockio.py" and finding.line == 5
        assert "emit" in finding.message

    def test_argument_into_callee_sink(self, tmp_path):
        write_tree(tmp_path, {
            "m.py": (
                "import time\n\n\n"
                "def sinker(tracer, value):\n"
                "    tracer.emit('span', value)\n\n\n"
                "def driver(tracer):\n"
                "    sinker(tracer, time.time())\n"
            ),
        })
        result = analyze([tmp_path], rule_ids=["T1"], package_root=tmp_path)
        assert [f.line for f in result.findings] == [9]

    def test_self_attribute_store_channel(self, tmp_path):
        write_tree(tmp_path, {
            "m.py": (
                "import time\n\n\n"
                "class Probe:\n"
                "    def arm(self):\n"
                "        self.started = time.time()\n\n"
                "    def report(self, tracer):\n"
                "        tracer.emit('span', self.started)\n"
            ),
        })
        result = analyze([tmp_path], rule_ids=["T1"], package_root=tmp_path)
        assert [f.line for f in result.findings] == [6]

    def test_sorted_strips_order_but_not_clock(self, tmp_path):
        write_tree(tmp_path, {
            "m.py": (
                "def keys(index):\n"
                "    return sorted(set(index))\n\n\n"
                "def flush(registry, index):\n"
                "    for key in keys(index):\n"
                "        registry.counter('c').inc(key)\n"
            ),
        })
        result = analyze([tmp_path], rule_ids=["T3"], package_root=tmp_path)
        assert result.findings == []

    def test_sim_modules_are_sanitizers(self, tmp_path):
        write_tree(tmp_path, {
            "sim/clock.py": (
                "import time\n\n\n"
                "def anchor():\n"
                "    return time.time()\n"
            ),
            "runtime/loop.py": (
                "from repro.sim.clock import anchor\n\n\n"
                "def report(tracer):\n"
                "    tracer.emit('span', anchor())\n"
            ),
        })
        result = analyze([tmp_path], rule_ids=["T1"], package_root=tmp_path)
        assert result.findings == []

    def test_allow_comment_on_source_sanctions_downstream_flow(self, tmp_path):
        write_tree(tmp_path, {
            "m.py": (
                "import time\n\n\n"
                "def raw():\n"
                "    return time.time()  # eires: allow[D1] boot stamp for logs\n\n\n"
                "def report(tracer):\n"
                "    tracer.emit('span', raw())\n"
            ),
        })
        result = analyze([tmp_path], rule_ids=["T1"], package_root=tmp_path)
        assert result.findings == []

    def test_rng_taint_through_two_hops(self, tmp_path):
        write_tree(tmp_path, {
            "m.py": (
                "import random\n\n\n"
                "def jitter():\n"
                "    return random.random()\n\n\n"
                "def scaled(base):\n"
                "    return base + jitter()\n\n\n"
                "def score(run, now):\n"
                "    return now + scaled(1.0)\n\n\n"
                "def decide(shedder, run, now):\n"
                "    shedder.submit(score(run, now))\n"
            ),
        })
        engine = taint_analysis(ModuleIndex([tmp_path], package_root=tmp_path))
        kinds = {flow.kind for flow in engine.flows()}
        assert kinds == {"rng"}


class TestPurity:
    def test_transitive_effect_through_helper(self, tmp_path):
        write_tree(tmp_path, {
            "utility/model.py": (
                "class UtilityModel:\n"
                "    def _bump(self):\n"
                "        self.count = 1\n\n"
                "    def value(self, run, now):\n"
                "        self._bump()\n"
                "        return now\n"
            ),
        })
        result = analyze([tmp_path], rule_ids=["P1"], package_root=tmp_path)
        (finding,) = result.findings
        assert "value" in finding.message and "_bump" in finding.message

    def test_fresh_local_mutation_is_pure(self, tmp_path):
        write_tree(tmp_path, {
            "utility/model.py": (
                "class UtilityModel:\n"
                "    def value(self, run, now):\n"
                "        acc = []\n"
                "        acc.append(now)\n"
                "        table = {}\n"
                "        table['x'] = now\n"
                "        return sum(acc)\n"
            ),
        })
        result = analyze([tmp_path], rule_ids=["P1"], package_root=tmp_path)
        assert result.findings == []

    def test_real_vectorized_plan_phase_holds_its_contract(self):
        index = ModuleIndex([REPO_ROOT / "src"])
        engine = effect_analysis(index)
        vectorized = index.module_by_pkg("backends/vectorized.py")
        if vectorized is None:  # no-NumPy environments still ship the file
            return
        assert engine.violations(vectorized) == []


class TestContracts:
    def test_injected_unregistered_metric_name_fires_r1(self, tmp_path):
        write_tree(tmp_path, {
            "obs/slo.py": (
                "def setup(registry):\n"
                "    registry.histogram(GHOST_METRIC, (1.0,))\n"
            ),
        })
        result = analyze([tmp_path], rule_ids=["R1"], package_root=tmp_path)
        (finding,) = result.findings
        assert "GHOST_METRIC" in finding.message

    def test_registered_metric_constant_passes_r1(self, tmp_path):
        write_tree(tmp_path, {
            "obs/names.py": 'SLO_METRIC = "slo.latency_us"\n',
            "obs/slo.py": (
                "from repro.obs.names import SLO_METRIC\n\n\n"
                "def setup(registry):\n"
                "    registry.histogram(SLO_METRIC, (1.0,))\n"
            ),
        })
        result = analyze([tmp_path], rule_ids=["R1"], package_root=tmp_path)
        assert result.findings == []

    def test_locally_minted_category_fires_r1(self, tmp_path):
        write_tree(tmp_path, {
            "obs/report.py": (
                "CAT_BOGUS = 'bogus'\n\n\n"
                "def snap(tracer):\n"
                "    if tracer.enabled:\n"
                "        tracer.emit(CAT_BOGUS, {})\n"
            ),
        })
        result = analyze([tmp_path], rule_ids=["R1"], package_root=tmp_path)
        (finding,) = result.findings
        assert "CAT_BOGUS" in finding.message

    def test_category_must_exist_in_trace_module(self, tmp_path):
        write_tree(tmp_path, {
            "obs/trace.py": 'CAT_FETCH = "fetch"\n',
            "obs/report.py": (
                "from repro.obs.trace import CAT_GHOST\n\n\n"
                "def snap(tracer):\n"
                "    if tracer.enabled:\n"
                "        tracer.emit(CAT_GHOST, {})\n"
            ),
        })
        result = analyze([tmp_path], rule_ids=["R1"], package_root=tmp_path)
        (finding,) = result.findings
        assert "CAT_GHOST" in finding.message

    def test_real_registries_match_real_docs(self):
        result = analyze(
            [REPO_ROOT / "src"], rule_ids=["R1", "R2"],
            docs_root=REPO_ROOT / "docs",
        )
        assert result.findings == []

    def test_undocumented_backend_fires_r2(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "backends.md").write_text("Backends: `reference`\n")
        write_tree(tmp_path, {
            "backends/rogue.py": (
                "from repro.backends import register_backend\n\n\n"
                "@register_backend('ghost_backend')\n"
                "class Ghost:\n"
                "    pass\n"
            ),
        })
        result = analyze(
            [tmp_path / "backends"], rule_ids=["R2"],
            package_root=tmp_path, docs_root=docs,
        )
        (finding,) = result.findings
        assert "ghost_backend" in finding.message


class TestIncrementalCache:
    TREE = {
        "sim/clock.py": "class Clock:\n    def now(self):\n        return 0.0\n",
        "runtime/loop.py": (
            "from repro.sim.clock import Clock\n\n\n"
            "def run():\n"
            "    return Clock().now()\n"
        ),
        "strategies/rogue.py": "import time\nNOW = time.time()\n",
    }

    def test_warm_run_parses_nothing_and_matches_cold(self, tmp_path):
        tree = write_tree(tmp_path / "tree", dict(self.TREE))
        cache_path = tmp_path / "cache.json"

        cold_cache = AnalysisCache(cache_path)
        cold = analyze([tree], package_root=tree, cache=cold_cache)
        cold_cache.write()
        assert cold.parsed_modules == 3 and cold.cached_modules == 0

        warm_cache = AnalysisCache(cache_path)
        warm = analyze([tree], package_root=tree, cache=warm_cache)
        assert warm.parsed_modules == 0 and warm.cached_modules == 3
        # Byte-identical: every finding field, fingerprint, and the
        # suppression records match the cold run exactly.
        assert warm.findings == cold.findings
        assert [f.fingerprint() for f in warm.findings] == [
            f.fingerprint() for f in cold.findings
        ]
        assert [
            (f, s.line, s.rule_ids, s.reason) for f, s in warm.suppressed
        ] == [
            (f, s.line, s.rule_ids, s.reason) for f, s in cold.suppressed
        ]

    def test_edit_invalidates_exactly_the_dirty_module(self, tmp_path):
        tree = write_tree(tmp_path / "tree", dict(self.TREE))
        cache_path = tmp_path / "cache.json"
        cold_cache = AnalysisCache(cache_path)
        analyze([tree], package_root=tree, cache=cold_cache)
        cold_cache.write()

        (tree / "strategies" / "rogue.py").write_text(
            "import time\nNOW = time.time()\nLATER = NOW + 1\n"
        )
        warm_cache = AnalysisCache(cache_path)
        warm = analyze([tree], package_root=tree, cache=warm_cache)
        assert warm.parsed_modules == 1 and warm.cached_modules == 2
        warm_cache.write()
        # The refreshed cache is warm again for the whole tree.
        third_cache = AnalysisCache(cache_path)
        third = analyze([tree], package_root=tree, cache=third_cache)
        assert third.parsed_modules == 0 and third.cached_modules == 3

    def test_analyzer_change_invalidates_the_signature(self, tmp_path):
        tree = write_tree(tmp_path / "tree", dict(self.TREE))
        cache_path = tmp_path / "cache.json"
        cold_cache = AnalysisCache(cache_path)
        analyze([tree], package_root=tree, cache=cold_cache)
        cold_cache.write()

        payload = json.loads(cache_path.read_text())
        payload["signature"] = "0" * 40  # as if the analyzer's sources changed
        cache_path.write_text(json.dumps(payload))
        stale = AnalysisCache(cache_path)
        assert not stale.valid
        result = analyze([tree], package_root=tree, cache=stale)
        assert result.parsed_modules == 3 and result.cached_modules == 0

    def test_rule_subset_runs_bypass_the_cache(self, tmp_path):
        tree = write_tree(tmp_path / "tree", dict(self.TREE))
        cache_path = tmp_path / "cache.json"
        cold_cache = AnalysisCache(cache_path)
        analyze([tree], package_root=tree, cache=cold_cache)
        cold_cache.write()
        warm_cache = AnalysisCache(cache_path)
        subset = analyze(
            [tree], rule_ids=["D1"], package_root=tree, cache=warm_cache
        )
        # Findings cached under all-rules must not leak into a subset run.
        assert subset.parsed_modules == 3
        assert [f.rule for f in subset.findings] == ["D1"]


class TestCliIncrement:
    def test_update_baseline_prunes_and_adds(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "old.py").write_text("import time\nA = time.time()\n")
        baseline = tmp_path / "baseline.json"
        assert main([str(tree), "--baseline", str(baseline), "--write-baseline"]) == 0
        # The old finding disappears; a new one appears.
        (tree / "old.py").write_text("x = 1\n")
        (tree / "new.py").write_text("import random\nB = random.random()\n")
        assert main([str(tree), "--baseline", str(baseline), "--update-baseline"]) == 0
        out = capsys.readouterr().out
        assert "0 kept, 1 added, 1 removed" in out
        # The refreshed baseline masks exactly the new finding.
        assert main([str(tree), "--baseline", str(baseline)]) == 0

    def test_cache_flag_round_trip(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "clean.py").write_text("x = 1\n")
        cache = tmp_path / "cache.json"
        assert main([str(tree), "--cache", str(cache)]) == 0
        assert cache.exists()
        capsys.readouterr()
        assert main([str(tree), "--cache", str(cache), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["incremental"]["parsed"] == 0
        assert report["incremental"]["cached"] == 1

    def test_cache_with_rules_subset_warns_and_ignores(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "clean.py").write_text("x = 1\n")
        cache = tmp_path / "cache.json"
        assert main([str(tmp_path), "--cache", str(cache), "--rules", "D1"]) == 0
        assert not cache.exists()
        assert "ignored" in capsys.readouterr().err


class TestRealTreeWholeProgram:
    def test_default_roots_are_clean(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        paths = [p for p in ("src", "benchmarks", "tools", "examples") if Path(p).exists()]
        result = analyze(paths)
        assert result.ok, "\n".join(f.render() for f in result.findings)

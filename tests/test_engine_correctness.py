"""Engine semantics against the oracle reference matcher.

The reference (``repro.engine.reference``) enumerates matches with zero
latency and direct store access; the engine must detect exactly the same
matches under every strategy — prefetching, postponement, and obligation
splitting change *when* a match is detected, never *what* is detected.
"""

import pytest

from repro.engine.reference import reference_match_signatures
from repro.nfa.compiler import compile_query
from repro.query.parser import parse_query
from repro.remote.store import RemoteStore

from tests.helpers import make_abc_scenario, random_stream, run_eires

ALL_STRATEGIES = ("BL1", "BL2", "BL3", "PFetch", "LzEval", "Hybrid")
POLICIES = ("greedy", "non_greedy")


class TestAgainstReference:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_matches_equal_reference(self, strategy, policy):
        query, store = make_abc_scenario()
        stream = random_stream(150, seed=11)
        automaton = compile_query(query)
        expected = reference_match_signatures(automaton, stream, store, policy)
        result = run_eires(query, store, stream, strategy=strategy, policy=policy)
        assert result.match_signatures() == expected
        assert result.match_count == len(expected) or policy == "greedy"

    @pytest.mark.parametrize("policy", POLICIES)
    def test_multiple_seeds(self, policy):
        query, store = make_abc_scenario()
        automaton = compile_query(query)
        for seed in (1, 2, 3, 4, 5):
            stream = random_stream(100, seed=seed)
            expected = reference_match_signatures(automaton, stream, store, policy)
            result = run_eires(query, store, stream, strategy="Hybrid", policy=policy)
            assert result.match_signatures() == expected, f"seed {seed}"

    def test_greedy_enumerates_all_combinations(self):
        # Deterministic micro-stream: A(id1) B(id1,v in set) B(id1, v in set) C(id1)
        from repro.events.event import Event
        from repro.events.stream import Stream

        query, store = make_abc_scenario(set_members=frozenset({5}))
        events = [
            Event(10.0, {"type": "A", "id": 1, "v": 0}),
            Event(20.0, {"type": "B", "id": 1, "v": 5}),
            Event(30.0, {"type": "B", "id": 1, "v": 5}),
            Event(40.0, {"type": "C", "id": 1, "v": 0}),
        ]
        result = run_eires(query, store, Stream(events), strategy="Hybrid", policy="greedy")
        # Two B choices x one A x one C = 2 matches under skip-till-any.
        assert result.match_count == 2

    def test_non_greedy_takes_next_match_only(self):
        from repro.events.event import Event
        from repro.events.stream import Stream

        query, store = make_abc_scenario(set_members=frozenset({5}))
        events = [
            Event(10.0, {"type": "A", "id": 1, "v": 0}),
            Event(20.0, {"type": "B", "id": 1, "v": 5}),
            Event(30.0, {"type": "B", "id": 1, "v": 5}),
            Event(40.0, {"type": "C", "id": 1, "v": 0}),
        ]
        result = run_eires(query, store, Stream(events), strategy="Hybrid", policy="non_greedy")
        # The run consumes the first B; the second B is not revisited.
        assert result.match_count == 1
        ((_, _), (b_binding, b_seq), (_, _)) = result.matches[0].signature()
        assert b_binding == "b" and b_seq == 1

    def test_remote_predicate_false_prevents_match(self):
        from repro.events.event import Event
        from repro.events.stream import Stream

        query, store = make_abc_scenario(set_members=frozenset())  # nothing passes
        events = [
            Event(10.0, {"type": "A", "id": 1, "v": 0}),
            Event(20.0, {"type": "B", "id": 1, "v": 5}),
            Event(30.0, {"type": "C", "id": 1, "v": 0}),
        ]
        for strategy in ALL_STRATEGIES:
            result = run_eires(query, store, Stream(events), strategy=strategy)
            assert result.match_count == 0, strategy

    def test_window_prunes_matches(self):
        from repro.events.event import Event
        from repro.events.stream import Stream

        query = parse_query(
            "SEQ(A a, B b) WHERE SAME[id] WITHIN 100 us", name="windowed"
        )
        store = RemoteStore()
        events = [
            Event(0.0, {"type": "A", "id": 1}),
            Event(50.0, {"type": "B", "id": 1}),   # inside the window
            Event(200.0, {"type": "A", "id": 2}),
            Event(400.0, {"type": "B", "id": 2}),  # outside the window
        ]
        result = run_eires(query, store, Stream(events), strategy="BL2")
        assert result.match_count == 1


class TestStrategyEquivalence:
    """All six strategies agree pairwise on realistic random workloads."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_all_strategies_same_match_set(self, policy):
        query, store = make_abc_scenario()
        stream = random_stream(250, seed=99, id_domain=4)
        baseline = None
        for strategy in ALL_STRATEGIES:
            result = run_eires(query, store, stream, strategy=strategy, policy=policy)
            signatures = result.match_signatures()
            if baseline is None:
                baseline = signatures
            assert signatures == baseline, f"{strategy} diverges under {policy}"

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_match_multiplicity_preserved_greedy(self, strategy):
        # Under the greedy policy, distinct matches are distinct signatures,
        # so count must equal signature-set size for every strategy.
        query, store = make_abc_scenario()
        stream = random_stream(200, seed=7)
        result = run_eires(query, store, stream, strategy=strategy, policy="greedy")
        assert result.match_count == len(result.match_signatures())

    def test_small_cache_does_not_change_matches(self):
        query, store = make_abc_scenario()
        stream = random_stream(200, seed=3)
        large = run_eires(query, store, stream, strategy="Hybrid", cache_capacity=1000)
        tiny = run_eires(query, store, stream, strategy="Hybrid", cache_capacity=2)
        assert large.match_signatures() == tiny.match_signatures()

    def test_lru_and_cost_cache_same_matches(self):
        query, store = make_abc_scenario()
        stream = random_stream(200, seed=5)
        cost = run_eires(query, store, stream, strategy="Hybrid", cache_policy="cost")
        lru = run_eires(query, store, stream, strategy="Hybrid", cache_policy="lru")
        assert cost.match_signatures() == lru.match_signatures()

    def test_noise_does_not_change_matches(self):
        query, store = make_abc_scenario()
        stream = random_stream(200, seed=5)
        clean = run_eires(query, store, stream, strategy="Hybrid")
        noisy = run_eires(query, store, stream, strategy="Hybrid", noise_ratio=0.9)
        assert clean.match_signatures() == noisy.match_signatures()

"""Tests for the serving layer: fleet builder, placement, admission, provenance.

Four promises are pinned down here, mirroring the layer's acceptance bar:

* **byte identity** — a single-shard single-tenant fleet is the same
  machine as a plain :class:`repro.RuntimeBuilder` run: identical
  summaries, match signatures, and metric snapshots, healthy and under
  transport faults alike;
* **determinism** — a multi-shard, rate-limited, traced fleet replays to
  the exact same results *and the exact same trace* every run, and the
  provenance replayer re-derives every ``serving`` decision;
* **eager validation** — every malformed spec (duplicate names, bad
  placement, zero rates, quotas without a shedding policy, backends
  lacking a required capability) fails at build time with the offending
  field, never mid-dispatch;
* **admission mechanics** — the virtual-time token bucket refills, caps,
  and counts exactly as the trace records claim.
"""

from __future__ import annotations

import pytest

from repro.backends.base import BackendCapabilityError
from repro.core.config import EiresConfig
from repro.obs.provenance import replay_trace, verify_serving_record
from repro.obs.slo import SloSpec
from repro.obs.trace import CAT_SERVING, MemorySink, Tracer
from repro.remote.transport import TRANSPORT_COUNTER_KEYS, FixedLatency, UniformLatency
from repro.runtime.builder import RuntimeBuilder
from repro.serving import (
    PLACE_HASH,
    PLACE_PINNED,
    FleetBuilder,
    TenantSpec,
    TokenBucket,
    assign_shards,
    stable_hash,
)
from repro.serving.ratelimit import US_PER_SECOND
from repro.workloads.synthetic import (
    SyntheticConfig,
    make_store,
    make_stream,
    q1_query,
    q2_query,
)

from tests.helpers import make_abc_scenario, random_stream


SYNTH = SyntheticConfig(n_events=2_000, seed=11)


def synth_latency(sc: SyntheticConfig) -> UniformLatency:
    return UniformLatency(sc.latency_low_us, sc.latency_high_us)


def plain_run(sc: SyntheticConfig, **config_kwargs):
    """The reference: q1+q2 through a plain RuntimeBuilder."""
    runtime = (
        RuntimeBuilder(make_store(sc), synth_latency(sc),
                       config=EiresConfig(**config_kwargs))
        .add_query(q1_query(sc))
        .add_query(q2_query(sc))
        .build()
    )
    return runtime.run(make_stream(sc))


def fleet_run(sc: SyntheticConfig, **config_kwargs):
    """The same q1+q2 run as one tenant on a one-shard fleet."""
    fleet = (
        FleetBuilder(make_store(sc), synth_latency(sc),
                     config=EiresConfig(**config_kwargs))
        .add_tenant(TenantSpec("solo", [q1_query(sc), q2_query(sc)]))
        .build()
    )
    return fleet.dispatch(make_stream(sc))


def build_abc_fleet(tenant_kwargs_by_name, n_shards=1, placement="round_robin",
                    pins=None, tracer=None, **config_kwargs):
    """A fleet of renamed copies of the ABC query, one per tenant."""
    import copy

    base_query, store = make_abc_scenario()
    builder = FleetBuilder(
        store, FixedLatency(20.0), n_shards=n_shards, placement=placement,
        pins=pins, config=EiresConfig(cache_capacity=50, **config_kwargs),
        tracer=tracer,
    )
    for name, kwargs in tenant_kwargs_by_name.items():
        query = copy.copy(base_query)
        query.name = f"abc_{name}"
        builder.add_tenant(TenantSpec(name, query, **kwargs))
    return builder.build()


class TestByteIdentity:
    """A trivial fleet must be byte-identical to a plain runtime run."""

    def assert_identical(self, plain, fleet_result):
        tenant = fleet_result.tenant_result("solo")
        assert set(plain) == set(tenant)
        for name in plain:
            assert plain[name].match_signatures() == tenant[name].match_signatures()
            assert plain[name].summary() == tenant[name].summary()
            assert plain[name].metrics == tenant[name].metrics
            assert plain[name].transport_stats == tenant[name].transport_stats

    def test_healthy_run_is_identical(self):
        plain = plain_run(SYNTH)
        fleet_result = fleet_run(SYNTH)
        self.assert_identical(plain, fleet_result)

    def test_faulty_run_is_identical(self):
        plain = plain_run(SYNTH, fault_profile="drop:0.05", seed=11)
        fleet_result = fleet_run(SYNTH, fault_profile="drop:0.05", seed=11)
        self.assert_identical(plain, fleet_result)

    def test_fleet_level_accounting_matches(self):
        fleet_result = fleet_run(SYNTH)
        assert fleet_result.n_shards == 1
        assert fleet_result.events_total == SYNTH.n_events
        # No rate limit: every event is admitted, none throttled.
        assert fleet_result.admitted == {"solo": SYNTH.n_events}
        assert fleet_result.throttled == {"solo": 0}
        assert fleet_result.delivered == [SYNTH.n_events]
        assert fleet_result.skew == 0
        assert set(fleet_result.transport_stats) == set(TRANSPORT_COUNTER_KEYS)


def traced_three_shard_fleet():
    tenants = {
        "alpha": dict(rate_limit=30_000.0, burst=16.0),
        "beta": dict(rate_limit=30_000.0, burst=16.0),
        "gamma": {},
        "delta": {},
    }
    sink = MemorySink()
    fleet = build_abc_fleet(
        tenants, n_shards=3, placement=PLACE_HASH, tracer=Tracer(sink, track="F"),
    )
    result = fleet.dispatch(random_stream(600, seed=9))
    return result, sink


class TestDeterminism:
    def test_three_shard_replay_is_deterministic(self):
        first, first_sink = traced_three_shard_fleet()
        second, second_sink = traced_three_shard_fleet()
        assert first.summary() == second.summary()
        assert first_sink.records == second_sink.records
        for tenant in first.results:
            ours, theirs = first.results[tenant], second.results[tenant]
            for name in ours:
                assert ours[name].match_signatures() == theirs[name].match_signatures()

    def test_serving_records_replay_clean(self):
        result, sink = traced_three_shard_fleet()
        serving = sink.by_category(CAT_SERVING)
        names = {record["name"] for record in serving}
        assert "route" in names and "admit" in names and "throttle" in names
        replay = replay_trace(sink.records)
        assert replay["problems"] == []
        assert replay["checked_serving"] == len(serving) > 0

    def test_throttling_shows_up_everywhere(self):
        result, sink = traced_three_shard_fleet()
        throttles = [r for r in sink.by_category(CAT_SERVING) if r["name"] == "throttle"]
        assert throttles, "burst=16 over 600 events must throttle"
        throttled_tenants = {record["tenant"] for record in throttles}
        assert throttled_tenants <= {"alpha", "beta"}
        for tenant in ("alpha", "beta"):
            assert result.throttled[tenant] > 0
            assert result.admitted[tenant] + result.throttled[tenant] == 600
        for tenant in ("gamma", "delta"):
            assert result.throttled[tenant] == 0
            assert result.admitted[tenant] == 600

    def test_hash_placement_matches_stable_hash(self):
        result, _ = traced_three_shard_fleet()
        for tenant, shard in result.placement.items():
            assert shard == stable_hash(tenant) % 3

    def test_tracing_does_not_change_results(self):
        tenants = {"alpha": dict(rate_limit=30_000.0, burst=16.0), "beta": {}}
        stream_seed = 9

        def run(tracer):
            fleet = build_abc_fleet(tenants, n_shards=2, tracer=tracer)
            return fleet.dispatch(random_stream(400, seed=stream_seed))

        plain = run(None)
        traced = run(Tracer(MemorySink(), track="F"))
        assert plain.summary() == traced.summary()
        for tenant in plain.results:
            for name in plain.results[tenant]:
                assert (
                    plain.results[tenant][name].match_signatures()
                    == traced.results[tenant][name].match_signatures()
                )


class TestTenantScoping:
    def test_multi_tenant_metrics_are_tenant_scoped(self):
        fleet = build_abc_fleet({"alpha": {}, "beta": {}})
        result = fleet.dispatch(random_stream(300, seed=5))
        run_result = result.tenant_result("alpha")["abc_alpha"]
        names = set(run_result.metrics)
        assert any(n.startswith("tenant.alpha.query.abc_alpha.") for n in names)
        assert any(n.startswith("tenant.beta.query.abc_beta.") for n in names)

    def test_tenant_slo_lands_on_scoped_gauges(self):
        fleet = build_abc_fleet({
            "alpha": dict(slo=SloSpec(latency_bound=50_000.0)),
            "beta": {},
        })
        result = fleet.dispatch(random_stream(300, seed=5))
        names = set(result.tenant_result("alpha")["abc_alpha"].metrics)
        assert any(n.startswith("tenant.alpha.slo.") for n in names)
        assert not any(n.startswith("tenant.beta.slo.") for n in names)

    def test_tenant_result_rejects_unknown_tenant(self):
        fleet = build_abc_fleet({"alpha": {}})
        result = fleet.dispatch(random_stream(50, seed=5))
        with pytest.raises(KeyError, match="nobody"):
            result.tenant_result("nobody")


class TestBuildValidation:
    def test_no_tenants(self):
        _, store = make_abc_scenario()
        with pytest.raises(ValueError, match="at least one tenant"):
            FleetBuilder(store, FixedLatency(20.0)).build()

    def test_duplicate_tenant_names(self):
        query, store = make_abc_scenario()
        builder = (
            FleetBuilder(store, FixedLatency(20.0))
            .add_tenant(TenantSpec("alpha", query))
            .add_tenant(TenantSpec("alpha", query))
        )
        with pytest.raises(ValueError, match="tenant names must be unique"):
            builder.build()

    def test_duplicate_query_names_across_tenants(self):
        query, store = make_abc_scenario()
        builder = (
            FleetBuilder(store, FixedLatency(20.0))
            .add_tenant(TenantSpec("alpha", query))
            .add_tenant(TenantSpec("beta", query))
        )
        with pytest.raises(ValueError, match="query names must be unique"):
            builder.build()

    def test_unknown_placement_policy(self):
        with pytest.raises(ValueError, match="unknown placement policy"):
            build_abc_fleet({"alpha": {}}, placement="astrology")

    def test_pins_must_cover_every_tenant(self):
        with pytest.raises(ValueError, match="misses tenants"):
            build_abc_fleet(
                {"alpha": {}, "beta": {}}, n_shards=2,
                placement=PLACE_PINNED, pins={"alpha": 0},
            )

    def test_pins_must_be_in_range(self):
        with pytest.raises(ValueError, match="outside"):
            build_abc_fleet(
                {"alpha": {}}, n_shards=2,
                placement=PLACE_PINNED, pins={"alpha": 7},
            )

    def test_pins_illegal_without_pinned_policy(self):
        with pytest.raises(ValueError, match="only valid with"):
            build_abc_fleet({"alpha": {}}, pins={"alpha": 0})

    def test_empty_shard_fails_the_build(self):
        with pytest.raises(ValueError, match="received no tenants"):
            build_abc_fleet({"alpha": {}, "beta": {}}, n_shards=3)

    def test_run_budget_requires_a_shedding_policy(self):
        with pytest.raises(ValueError, match="shedding policy"):
            build_abc_fleet({"alpha": dict(run_budget=10)})

    def test_run_budget_rides_the_shedding_plane(self):
        fleet = build_abc_fleet(
            {"alpha": dict(run_budget=5), "beta": {}},
            shed_policy="runs", run_budget=1_000,
        )
        result = fleet.dispatch(random_stream(300, seed=5))
        assert result.tenant_result("alpha")["abc_alpha"].match_count >= 0

    def test_backend_capability_refusal_surfaces_reason(self):
        # The tree backend has no shedding surface; asking it to enforce a
        # tenant quota must fail with the backend's own reason.
        with pytest.raises(BackendCapabilityError, match="'tree'.*load shedding"):
            build_abc_fleet(
                {"alpha": dict(run_budget=10, backend="tree")},
                shed_policy="runs", run_budget=1_000,
            )


class TestTenantSpecValidation:
    def query(self):
        query, _ = make_abc_scenario()
        return query

    def test_name_must_be_nonempty(self):
        with pytest.raises(ValueError, match="non-empty string"):
            TenantSpec("", self.query())

    def test_needs_at_least_one_query(self):
        with pytest.raises(ValueError, match="declares no queries"):
            TenantSpec("alpha", [])

    def test_rate_limit_must_be_positive(self):
        for bad in (0.0, -5.0):
            with pytest.raises(ValueError, match="rate limit must be positive"):
                TenantSpec("alpha", self.query(), rate_limit=bad)

    def test_burst_requires_a_rate_limit(self):
        with pytest.raises(ValueError, match="burst without a rate limit"):
            TenantSpec("alpha", self.query(), burst=4.0)

    def test_burst_must_hold_a_whole_token(self):
        with pytest.raises(ValueError, match="at least 1.0"):
            TenantSpec("alpha", self.query(), rate_limit=10.0, burst=0.5)

    def test_burst_defaults_to_rate(self):
        assert TenantSpec("a", self.query(), rate_limit=500.0).burst == 500.0
        assert TenantSpec("a", self.query(), rate_limit=0.25).burst == 1.0

    def test_run_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="run budget must be positive"):
            TenantSpec("alpha", self.query(), run_budget=0)

    def test_priority_must_be_positive(self):
        with pytest.raises(ValueError, match="priority must be positive"):
            TenantSpec("alpha", self.query(), priority=0.0)


class TestPlacement:
    def test_round_robin_wraps(self):
        assert assign_shards(["a", "b", "c"], 2) == {"a": 0, "b": 1, "c": 0}

    def test_hash_is_stable(self):
        first = assign_shards(["a", "b", "c"], 4, policy=PLACE_HASH)
        second = assign_shards(["a", "b", "c"], 4, policy=PLACE_HASH)
        assert first == second
        assert all(0 <= shard < 4 for shard in first.values())

    def test_stable_hash_known_value(self):
        # FNV-1a 64-bit test vector: hashing the empty string yields the
        # offset basis; "a" is a published vector.
        assert stable_hash("") == 0xCBF29CE484222325
        assert stable_hash("a") == 0xAF63DC4C8601EC8C

    def test_needs_a_shard(self):
        with pytest.raises(ValueError, match="at least one shard"):
            assign_shards(["a"], 0)


class TestTokenBucket:
    def test_starts_full_and_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=5.0)
        assert bucket.tokens == 5.0
        bucket.refill(10 * US_PER_SECOND)
        assert bucket.tokens == 5.0

    def test_drains_then_refills_with_virtual_time(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)  # 1 token per virtual second
        assert bucket.admit(0.0) and bucket.admit(0.0)
        assert not bucket.admit(0.0)
        # Half a second later: half a token — still short of one.
        assert not bucket.admit(0.5 * US_PER_SECOND)
        assert bucket.admit(1.5 * US_PER_SECOND)
        assert bucket.admitted == 3 and bucket.throttled == 2

    def test_decide_reports_post_refill_level(self):
        bucket = TokenBucket(rate=1.0, burst=4.0)
        admitted, tokens = bucket.decide(0.0)
        assert admitted and tokens == 4.0
        assert bucket.tokens == 3.0

    def test_validation(self):
        with pytest.raises(ValueError, match="rate must be positive"):
            TokenBucket(rate=0.0, burst=4.0)
        with pytest.raises(ValueError, match="at least 1.0"):
            TokenBucket(rate=10.0, burst=0.25)


class TestServingProvenance:
    """verify_serving_record catches tampered records of every kind."""

    def route(self, **overrides):
        record = {
            "cat": "serving", "name": "route", "seq": 1, "tenant": "alpha",
            "shard": 1, "policy": "round_robin", "index": 1, "n_shards": 2,
        }
        record.update(overrides)
        return record

    def admit(self, **overrides):
        record = {
            "cat": "serving", "name": "admit", "seq": 2, "tenant": "alpha",
            "seq_no": 7, "tokens": 3.5, "rate": 100.0, "burst": 8.0,
        }
        record.update(overrides)
        return record

    def test_clean_records_pass(self):
        assert verify_serving_record(self.route()) == []
        assert verify_serving_record(self.admit()) == []

    def test_round_robin_tamper_is_caught(self):
        problems = verify_serving_record(self.route(shard=0))
        assert problems and "implies shard 1" in problems[0]

    def test_hash_tamper_is_caught(self):
        good = stable_hash("alpha") % 2
        assert verify_serving_record(
            self.route(policy="hash", shard=good)
        ) == []
        problems = verify_serving_record(self.route(policy="hash", shard=1 - good))
        assert problems and "hash placement" in problems[0]

    def test_out_of_range_shard_is_caught(self):
        problems = verify_serving_record(self.route(policy="pinned", shard=9))
        assert problems and "outside" in problems[0]

    def test_unknown_policy_is_caught(self):
        problems = verify_serving_record(self.route(policy="astrology", shard=0))
        assert problems and "unknown placement" in problems[0]

    def test_admission_threshold_is_replayed(self):
        problems = verify_serving_record(self.admit(tokens=0.4))
        assert problems and "imply 'throttle'" in problems[0]
        assert verify_serving_record(
            self.admit(name="throttle", tokens=0.4)
        ) == []

    def test_token_level_outside_burst_is_caught(self):
        problems = verify_serving_record(self.admit(tokens=99.0))
        assert any("outside" in problem for problem in problems)

    def test_missing_fields_are_caught(self):
        record = self.route()
        del record["n_shards"]
        assert "missing fields" in verify_serving_record(record)[0]

    def test_unknown_record_name_is_caught(self):
        problems = verify_serving_record({"cat": "serving", "name": "mystery"})
        assert problems and "unknown record name" in problems[0]


class TestAmortization:
    def test_overlapping_tenants_share_the_wire(self):
        """Four tenants over the same remote keys beat four isolated runs."""
        base_query, _ = make_abc_scenario()
        stream_events = 500
        isolated_wire = 0
        for index in range(4):
            _, store = make_abc_scenario()
            result = (
                RuntimeBuilder(store, FixedLatency(20.0),
                               config=EiresConfig(cache_capacity=50))
                .add_query(base_query)
                .build()
                .run(random_stream(stream_events, seed=21))[base_query.name]
            )
            isolated_wire += result.transport_stats["wire_requests"]

        fleet = build_abc_fleet({f"t{i}": {} for i in range(4)})
        fleet_result = fleet.dispatch(random_stream(stream_events, seed=21))
        assert fleet_result.transport_stats["wire_requests"] < isolated_wire
        assert fleet_result.amortization >= 1.0
        # Sharing must not change what each tenant detects.
        match_counts = {
            name: result.match_count
            for tenant in fleet_result.results.values()
            for name, result in tenant.items()
        }
        assert len(set(match_counts.values())) == 1

    def test_summary_carries_fleet_level_keys(self):
        fleet = build_abc_fleet({"alpha": {}, "beta": {}}, n_shards=2)
        summary = fleet.dispatch(random_stream(200, seed=5)).summary()
        for key in ("n_shards", "n_tenants", "placement", "events", "admitted",
                    "throttled", "skew", "amortization",
                    "shard.0.delivered", "shard.1.delivered"):
            assert key in summary
        assert any(key.startswith("transport.") for key in summary)

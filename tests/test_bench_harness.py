"""Tests for the shared benchmark harness."""

import json
import os

import pytest

from repro.bench.harness import (
    ALL_STRATEGIES,
    ExperimentResult,
    results_dir,
    run_strategy,
    run_strategy_suite,
    save_results,
)
from repro.core.config import EiresConfig
from repro.workloads.synthetic import SyntheticConfig, q1_workload


@pytest.fixture()
def tiny_workload():
    return q1_workload(SyntheticConfig(n_events=400, id_domain=10, window_events=200))


class TestRunStrategy:
    def test_produces_run_result(self, tiny_workload):
        result = run_strategy(tiny_workload, "BL2", EiresConfig(cache_capacity=50))
        assert result.strategy_name == "BL2"
        assert result.engine_stats["events_processed"] == 400

    def test_all_strategies_registered(self):
        assert set(ALL_STRATEGIES) == {"BL1", "BL2", "BL3", "PFetch", "LzEval", "Hybrid"}


class TestRunStrategySuite:
    def test_suite_rows_per_strategy(self, tiny_workload):
        experiment = run_strategy_suite(
            "suite-test", tiny_workload, EiresConfig(cache_capacity=50),
            strategies=("BL2", "Hybrid"), extra_fields={"tag": "x"},
        )
        assert [row["strategy"] for row in experiment.rows] == ["BL2", "Hybrid"]
        assert all(row["tag"] == "x" for row in experiment.rows)

    def test_metric_and_row_access(self, tiny_workload):
        experiment = run_strategy_suite(
            "suite-test", tiny_workload, EiresConfig(cache_capacity=50),
            strategies=("BL2",),
        )
        assert experiment.metric("BL2", "matches") == experiment.rows[0]["matches"]
        with pytest.raises(KeyError):
            experiment.row_for("Hybrid")

    def test_table_renders(self, tiny_workload):
        experiment = run_strategy_suite(
            "render-test", tiny_workload, EiresConfig(cache_capacity=50),
            strategies=("BL2",),
        )
        table = experiment.table()
        assert "render-test" in table
        assert "BL2" in table


class TestSaveResults:
    def test_writes_json(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        experiment = ExperimentResult("unit test exp", [{"strategy": "BL2", "p50": 1.0}])
        path = save_results(experiment)
        assert os.path.dirname(path) == str(tmp_path)
        with open(path) as handle:
            data = json.load(handle)
        assert data["name"] == "unit test exp"
        assert data["rows"][0]["strategy"] == "BL2"

    def test_results_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "sub"))
        assert results_dir() == str(tmp_path / "sub")
        assert os.path.isdir(results_dir())

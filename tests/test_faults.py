"""Unit tests for fault injection, retry policy, and circuit breakers."""

import pytest

from repro.remote.faults import (
    DROP,
    ERROR,
    OK,
    SLOW,
    CompositeFaults,
    DropFaults,
    ErrorBurstFaults,
    FaultDecision,
    LatencySpikeFaults,
    NoFaults,
    PerSourceFaults,
    TransientErrorFaults,
    make_fault_model,
)
from repro.remote.monitor import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerBoard,
    CircuitBreaker,
    FailureWindow,
)
from repro.remote.retry import RetryPolicy
from repro.remote.store import RemoteStore
from repro.remote.transport import (
    MODE_BLOCKING,
    FetchRequest,
    FixedLatency,
    Transport,
)
from repro.sim.rng import make_rng


class TestFaultModels:
    def test_no_faults_always_ok(self):
        rng = make_rng(1)
        model = NoFaults()
        assert all(model.decide(("s", k), 0.0, 1, rng).kind == OK for k in range(50))

    def test_drop_rate_extremes(self):
        rng = make_rng(2)
        assert DropFaults(0.0).decide(("s", 1), 0.0, 1, rng).kind == OK
        assert DropFaults(1.0).decide(("s", 1), 0.0, 1, rng).kind == DROP

    def test_drop_rate_statistics(self):
        rng = make_rng(3)
        model = DropFaults(0.2)
        drops = sum(model.decide(("s", k), 0.0, 1, rng).failed for k in range(2000))
        assert 300 < drops < 500

    def test_transient_error_is_fast_failure(self):
        decision = TransientErrorFaults(1.0).decide(("s", 1), 0.0, 1, make_rng(4))
        assert decision.kind == ERROR
        assert decision.failed

    def test_latency_spike_scales_but_succeeds(self):
        decision = LatencySpikeFaults(1.0, scale=7.0).decide(("s", 1), 0.0, 1, make_rng(5))
        assert decision.kind == SLOW
        assert decision.latency_scale == 7.0
        assert not decision.failed

    def test_error_burst_windows(self):
        rng = make_rng(6)
        model = ErrorBurstFaults(mean_gap=100.0, duration=50.0)
        # Probe forward in time; some instants fall in bursts, some outside.
        kinds = {model.decide(("s", 1), t, 1, rng).kind for t in range(0, 2000, 10)}
        assert kinds == {OK, ERROR}

    def test_error_burst_independent_per_source(self):
        rng = make_rng(7)
        model = ErrorBurstFaults(mean_gap=100.0, duration=50.0)
        a = [model.decide(("a", 1), t, 1, rng).kind for t in range(0, 1000, 10)]
        b = [model.decide(("b", 1), t, 1, rng).kind for t in range(0, 1000, 10)]
        assert a != b

    def test_per_source_dispatch(self):
        rng = make_rng(8)
        model = PerSourceFaults({"bad": DropFaults(1.0)})
        assert model.decide(("bad", 1), 0.0, 1, rng).kind == DROP
        assert model.decide(("good", 1), 0.0, 1, rng).kind == OK

    def test_composite_first_non_ok_wins(self):
        rng = make_rng(9)
        model = CompositeFaults([DropFaults(0.0), TransientErrorFaults(1.0)])
        assert model.decide(("s", 1), 0.0, 1, rng).kind == ERROR

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DropFaults(1.5)
        with pytest.raises(ValueError):
            LatencySpikeFaults(0.5, scale=0.5)
        with pytest.raises(ValueError):
            ErrorBurstFaults(0.0, 10.0)
        with pytest.raises(ValueError):
            FaultDecision("unknown")
        with pytest.raises(ValueError):
            CompositeFaults([])


class TestMakeFaultModel:
    def test_none_and_empty_yield_no_model(self):
        assert make_fault_model("none") is None
        assert make_fault_model("") is None

    def test_named_profiles(self):
        assert isinstance(make_fault_model("lossy"), DropFaults)
        assert isinstance(make_fault_model("flaky"), CompositeFaults)
        assert isinstance(make_fault_model("burst"), ErrorBurstFaults)

    def test_term_specs(self):
        model = make_fault_model("drop:0.1")
        assert isinstance(model, DropFaults)
        assert model.rate == 0.1
        assert isinstance(make_fault_model("drop:0.05,slow:0.1:8"), CompositeFaults)
        slow = make_fault_model("slow:0.2")
        assert isinstance(slow, LatencySpikeFaults)
        assert slow.scale == 10.0

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown fault term"):
            make_fault_model("explode:0.5")
        with pytest.raises(ValueError, match="bad fault term"):
            make_fault_model("drop:not-a-number")


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base=10.0, backoff_factor=2.0, jitter=0.0)
        rng = make_rng(1)
        assert policy.backoff(1, rng) == 10.0
        assert policy.backoff(2, rng) == 20.0
        assert policy.backoff(3, rng) == 40.0

    def test_jitter_bounds(self):
        policy = RetryPolicy(backoff_base=100.0, backoff_factor=1.0, jitter=0.2)
        rng = make_rng(2)
        for _ in range(100):
            assert 80.0 <= policy.backoff(1, rng) <= 120.0

    def test_allows_caps_attempts_and_deadline(self):
        policy = RetryPolicy(max_attempts=3, deadline=1000.0)
        assert policy.allows(3, 0.0)
        assert not policy.allows(4, 0.0)
        assert not policy.allows(2, 1000.0)

    def test_expected_overhead_zero_without_failures(self):
        policy = RetryPolicy()
        assert policy.expected_overhead(0.0, 100.0) == 0.0

    def test_expected_overhead_monotone_in_failure_rate(self):
        policy = RetryPolicy()
        overheads = [policy.expected_overhead(p, 100.0) for p in (0.1, 0.3, 0.5, 0.8)]
        assert overheads == sorted(overheads)
        assert overheads[0] > 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(window_size=8, failure_threshold=0.5, min_samples=4)
        for _ in range(2):
            breaker.record(True, 0.0)
        for i in range(2):
            breaker.record(False, float(i))
        assert breaker.state(10.0) == BREAKER_OPEN
        assert breaker.opens == 1
        assert not breaker.allow(10.0)

    def test_needs_min_samples(self):
        breaker = CircuitBreaker(min_samples=8)
        for i in range(7):
            breaker.record(False, float(i))
        assert breaker.state(10.0) == BREAKER_CLOSED

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreaker(window_size=8, min_samples=4, cooldown=100.0)
        for i in range(4):
            breaker.record(False, float(i))
        assert breaker.state(50.0) == BREAKER_OPEN
        assert breaker.state(200.0) == BREAKER_HALF_OPEN
        assert breaker.allow(200.0)  # the probe
        breaker.record(True, 210.0)
        assert breaker.state(210.0) == BREAKER_CLOSED
        # The window was reset: old failures do not instantly re-open.
        breaker.record(False, 220.0)
        assert breaker.state(220.0) == BREAKER_CLOSED

    def test_half_open_probe_reopens_on_failure(self):
        breaker = CircuitBreaker(window_size=8, min_samples=4, cooldown=100.0)
        for i in range(4):
            breaker.record(False, float(i))
        assert breaker.allow(200.0)
        breaker.record(False, 210.0)
        assert breaker.state(250.0) == BREAKER_OPEN
        assert breaker.opens == 2

    def test_failure_window_slides(self):
        window = FailureWindow(size=4)
        for _ in range(4):
            window.record(False)
        assert window.failure_rate() == 1.0
        for _ in range(4):
            window.record(True)
        assert window.failure_rate() == 0.0


class TestBreakerBoard:
    def test_per_source_isolation(self):
        board = BreakerBoard(window_size=8, min_samples=4)
        for i in range(4):
            board.record("bad", False, float(i))
        assert not board.available("bad", 10.0)
        assert board.available("good", 10.0)
        assert board.opens == 1

    def test_available_is_pure(self):
        board = BreakerBoard(min_samples=4, cooldown=100.0)
        for i in range(4):
            board.record("s", False, float(i))
        # `available` during cooldown must not flip any state.
        assert not board.available("s", 50.0)
        assert board.state("s", 50.0) == BREAKER_OPEN
        # After cooldown the probe is reported available but state untouched.
        assert board.available("s", 200.0)
        assert board.failure_rate("s") == 1.0


class TestTransportFaultPaths:
    def _store(self):
        store = RemoteStore()
        store.put("t", 1, "one")
        return store

    def test_transient_error_retried_to_success(self):
        # Error on attempt 1 only; attempt 2 succeeds.
        class OneError(NoFaults):
            def decide(self, key, now, attempt, rng):
                return FaultDecision(ERROR) if attempt == 1 else FaultDecision(OK)

        transport = Transport(
            self._store(), FixedLatency(10.0), make_rng(1),
            fault_model=OneError(), fault_rng=make_rng(2),
            retry_policy=RetryPolicy(max_attempts=3, backoff_base=5.0, jitter=0.0),
        )
        request = transport.submit(FetchRequest(("t", 1), at=0.0, mode=MODE_BLOCKING))
        assert request.ok
        assert request.attempt == 2
        # error known at 10, backoff 5, reissue at 15, arrives at 25
        assert request.arrives_at == pytest.approx(25.0)
        assert transport.retries == 1
        assert transport.failed_fetches == 0

    def test_exhausted_retries_fail_terminally(self):
        transport = Transport(
            self._store(), FixedLatency(10.0), make_rng(1),
            fault_model=TransientErrorFaults(1.0), fault_rng=make_rng(2),
            retry_policy=RetryPolicy(max_attempts=3, backoff_base=5.0, jitter=0.0),
        )
        request = transport.submit(FetchRequest(("t", 1), at=0.0, mode=MODE_BLOCKING))
        assert not request.ok
        assert request.final
        assert request.attempt == 3
        assert transport.retries == 2
        assert transport.failed_fetches == 1

    def test_drop_known_only_at_attempt_timeout(self):
        transport = Transport(
            self._store(), FixedLatency(10.0), make_rng(1),
            fault_model=DropFaults(1.0), fault_rng=make_rng(2),
            retry_policy=RetryPolicy(max_attempts=1, attempt_timeout=300.0),
        )
        request = transport.submit(FetchRequest(("t", 1), at=0.0, mode=MODE_BLOCKING))
        assert not request.ok
        assert request.error == "timeout"
        assert request.arrives_at == pytest.approx(300.0)

    def test_async_retry_reenters_in_flight(self):
        class OneError(NoFaults):
            def decide(self, key, now, attempt, rng):
                return FaultDecision(ERROR) if attempt == 1 else FaultDecision(OK)

        transport = Transport(
            self._store(), FixedLatency(10.0), make_rng(1),
            fault_model=OneError(), fault_rng=make_rng(2),
            retry_policy=RetryPolicy(max_attempts=3, backoff_base=5.0, jitter=0.0),
        )
        transport.submit(FetchRequest(("t", 1), at=0.0))
        # Failure known at 10; nothing deliverable yet, the retry is pending.
        assert transport.deliver_due(12.0) == []
        assert transport.pending_count() == 1
        delivered = transport.deliver_due(30.0)
        assert len(delivered) == 1
        assert delivered[0].ok
        assert delivered[0].attempt == 2

    def test_retry_deadline_respected(self):
        transport = Transport(
            self._store(), FixedLatency(10.0), make_rng(1),
            fault_model=TransientErrorFaults(1.0), fault_rng=make_rng(2),
            retry_policy=RetryPolicy(
                max_attempts=100, backoff_base=50.0, backoff_factor=1.0,
                jitter=0.0, deadline=200.0,
            ),
        )
        request = transport.submit(FetchRequest(("t", 1), at=0.0, mode=MODE_BLOCKING))
        assert not request.ok
        # attempts at 0, 60, 120, 180; failure of the 4th known at 190;
        # elapsed 190 < 200 allows a 5th at 240 whose failure (250) stops it.
        assert request.attempt <= 5
        assert request.arrives_at - request.first_issued_at < 200.0 + 60.0 + 10.0

    def test_breaker_fastfails_block_wire_attempts(self):
        board = BreakerBoard(window_size=8, min_samples=2, failure_threshold=0.5,
                             cooldown=1_000.0)
        transport = Transport(
            self._store(), FixedLatency(10.0), make_rng(1),
            fault_model=TransientErrorFaults(1.0), fault_rng=make_rng(2),
            retry_policy=RetryPolicy(max_attempts=2, backoff_base=5.0, jitter=0.0),
            breakers=board,
        )
        first = transport.submit(FetchRequest(("t", 1), at=0.0, mode=MODE_BLOCKING))
        transport.complete(first)
        assert not first.ok
        assert not board.available("t", first.arrives_at)
        # While open: no latency draw, instant failure.
        request = transport.submit(FetchRequest(("t", 1), at=first.arrives_at + 1.0, mode=MODE_BLOCKING))
        transport.complete(request)
        assert request.error == "breaker_open"
        assert request.arrives_at == first.arrives_at + 1.0
        assert transport.breaker_fastfails >= 1

    def test_breaker_recovers_after_cooldown(self):
        board = BreakerBoard(window_size=8, min_samples=2, failure_threshold=0.5,
                             cooldown=100.0)

        class FailUntil(NoFaults):
            def decide(self, key, now, attempt, rng):
                return FaultDecision(ERROR) if now < 50.0 else FaultDecision(OK)

        transport = Transport(
            self._store(), FixedLatency(10.0), make_rng(1),
            fault_model=FailUntil(), fault_rng=make_rng(2),
            retry_policy=RetryPolicy(max_attempts=2, backoff_base=5.0, jitter=0.0),
            breakers=board,
        )
        first = transport.submit(FetchRequest(("t", 1), at=0.0, mode=MODE_BLOCKING))
        transport.complete(first)
        assert not first.ok
        # After cooldown the half-open probe succeeds and closes the breaker.
        probe = transport.submit(FetchRequest(("t", 1), at=200.0, mode=MODE_BLOCKING))
        transport.complete(probe)
        assert probe.ok
        assert board.state("t", 220.0) == BREAKER_CLOSED

    def test_effective_estimate_inflated_by_failures(self):
        board = BreakerBoard(window_size=8, min_samples=4)
        transport = Transport(
            self._store(), FixedLatency(10.0), make_rng(1),
            retry_policy=RetryPolicy(),
            breakers=board,
        )
        healthy = transport.effective_estimate(("t", 1))
        board.record("t", False, 0.0)
        board.record("t", True, 1.0)
        assert transport.effective_estimate(("t", 1)) > healthy

    def test_blocking_takes_over_doomed_async_chain(self):
        class OneError(NoFaults):
            def decide(self, key, now, attempt, rng):
                return FaultDecision(ERROR) if attempt == 1 else FaultDecision(OK)

        transport = Transport(
            self._store(), FixedLatency(10.0), make_rng(1),
            fault_model=OneError(), fault_rng=make_rng(2),
            retry_policy=RetryPolicy(max_attempts=3, backoff_base=5.0, jitter=0.0),
        )
        transport.submit(FetchRequest(("t", 1), at=0.0))
        # The async attempt will fail at 10; a blocking caller at 5 drives
        # the whole retry chain synchronously and gets the final success.
        request = transport.submit(FetchRequest(("t", 1), at=5.0, mode=MODE_BLOCKING))
        assert request.ok
        assert request.attempt == 2
        assert transport.blocking_fetches == 0
        assert transport.coalesced == 1

"""End-to-end tests of hierarchical remote data (the part-of relation rho)."""

import pytest

from repro.core.config import EiresConfig
from repro.core.framework import EIRES
from repro.events.event import Event
from repro.events.stream import Stream
from repro.query.parser import parse_query
from repro.remote.store import RemoteStore
from repro.remote.transport import FixedLatency
from repro.workloads.fraud import FraudConfig, fraud_workload


def hierarchy_scenario():
    """Query keyed per-card; remote data stored per-card under org containers."""
    query = parse_query(
        """
        SEQ(A a, B b)
        WHERE SAME[card] AND b.ben IN REMOTE<preauth>[a.card]
        WITHIN 100000
        """,
        name="hier",
    )
    store = RemoteStore()
    org = store.put("preauth", ("org", 0), frozenset({1, 2, 3}), size=0)
    for card in range(4):
        store.put("preauth", card, frozenset({1, 2, 3}), size=1, parent=org)
    return query, store


def card_events(pairs):
    events = []
    t = 0.0
    for card, ben in pairs:
        t += 10.0
        events.append(Event(t, {"type": "A", "card": card, "ben": 0}))
        t += 10.0
        events.append(Event(t, {"type": "B", "card": card, "ben": ben}))
    return Stream(events)


class TestContainerServesParts:
    def test_cached_container_answers_child_lookups(self):
        query, store = hierarchy_scenario()
        eires = EIRES(query, store, FixedLatency(50.0), strategy="BL2",
                      config=EiresConfig(cache_capacity=16))
        # Pre-warm the cache with the org container.
        eires.cache.put(store.lookup(("preauth", ("org", 0))), now=0.0)
        result = eires.run(card_events([(0, 1), (1, 2), (2, 3), (3, 1)]))
        assert result.match_count == 4
        # Every per-card lookup was served by the container: no fetches.
        assert result.strategy_stats["blocking_stalls"] == 0

    def test_without_container_each_card_fetches(self):
        query, store = hierarchy_scenario()
        eires = EIRES(query, store, FixedLatency(50.0), strategy="BL2",
                      config=EiresConfig(cache_capacity=16))
        result = eires.run(card_events([(0, 1), (1, 2), (2, 3), (3, 1)]))
        assert result.match_count == 4
        assert result.strategy_stats["blocking_stalls"] == 4

    def test_utility_propagates_from_parts_to_container(self):
        from repro.nfa.run import Run

        query, store = hierarchy_scenario()
        eires = EIRES(query, store, FixedLatency(50.0), strategy="Hybrid",
                      config=EiresConfig(cache_capacity=16))
        # A live partial match that has bound its A event requires the
        # per-card element; the org container accumulates that utility
        # through rho*.
        a_state = eires.automaton.states[1]
        run = Run.start(a_state, "a", Event(1.0, {"type": "A", "card": 2, "ben": 0}, seq=0), 1.0)
        eires.utility.on_run_created(run)
        assert eires.utility.urgent_utility(("preauth", 2)) > 0.0
        assert eires.utility.urgent_utility(("preauth", ("org", 0))) > 0.0
        eires.utility.on_run_dropped(run)
        assert eires.utility.urgent_utility(("preauth", ("org", 0))) == 0.0


class TestFraudWorkloadEndToEnd:
    @pytest.mark.parametrize("strategy", ("BL1", "BL3", "Hybrid"))
    def test_fraud_strategies_agree(self, strategy):
        workload = fraud_workload(FraudConfig(n_events=1_500))
        results = {}
        for name in ("BL2", strategy):
            eires = EIRES(workload.query, workload.store, workload.latency_model,
                          strategy=name,
                          config=EiresConfig(cache_capacity=workload.notes["cache_capacity"]))
            results[name] = eires.run(workload.stream)
        assert results[strategy].match_signatures() == results["BL2"].match_signatures()

    def test_fraud_produces_both_branch_kinds(self):
        workload = fraud_workload(FraudConfig(n_events=4_000))
        eires = EIRES(workload.query, workload.store, workload.latency_model,
                      strategy="Hybrid",
                      config=EiresConfig(cache_capacity=workload.notes["cache_capacity"]))
        result = eires.run(workload.stream)
        assert result.match_count > 0
        branch_bindings = {frozenset(match.events) for match in result.matches}
        assert frozenset({"t1", "d", "t2"}) in branch_bindings
        assert frozenset({"t1", "l", "t3"}) in branch_bindings

"""White-box tests of strategy internals: purposes, tiers, delivery, staging."""

import pytest

from repro.cache.cost_based import CostBasedCache
from repro.core.config import EiresConfig
from repro.core.framework import EIRES
from repro.engine.interface import POSTPONED
from repro.events.event import Event
from repro.query.parser import parse_query
from repro.remote.store import RemoteStore
from repro.remote.transport import FixedLatency


def build(strategy="Hybrid", latency=100.0, cache_policy="cost", capacity=16):
    query = parse_query(
        "SEQ(A a, B b, C c) WHERE SAME[id] AND b.v IN REMOTE[a.v] WITHIN 100000",
        name="t",
    )
    store = RemoteStore()
    store.register_source("v", lambda key: frozenset(range(10)))
    return EIRES(query, store, FixedLatency(latency), strategy=strategy,
                 config=EiresConfig(cache_capacity=capacity, cache_policy=cache_policy))


class TestAsyncDelivery:
    def test_prefetch_lands_in_speculative_tier(self):
        eires = build()
        strategy = eires.strategy
        strategy._fetch_async_prefetch(("v", 1))
        eires.clock.advance(200.0)
        strategy._deliver_due()
        cache = eires.cache
        assert isinstance(cache, CostBasedCache)
        assert ("v", 1) in cache._tiers[CostBasedCache.TIER_SPECULATIVE]

    def test_lazy_fetch_lands_in_certain_tier(self):
        eires = build()
        strategy = eires.strategy
        strategy._fetch_async_lazy([("v", 2)])
        eires.clock.advance(200.0)
        strategy._deliver_due()
        assert ("v", 2) in eires.cache._tiers[CostBasedCache.TIER_CERTAIN]

    def test_lazy_need_upgrades_inflight_prefetch(self):
        # A speculative prefetch followed by a lazy need for the same key
        # must deliver into the certain tier: its use became guaranteed.
        eires = build()
        strategy = eires.strategy
        strategy._fetch_async_prefetch(("v", 3))
        strategy._fetch_async_lazy([("v", 3)])
        assert eires.transport.async_fetches == 1  # coalesced on the wire
        eires.clock.advance(200.0)
        strategy._deliver_due()
        assert ("v", 3) in eires.cache._tiers[CostBasedCache.TIER_CERTAIN]

    def test_nothing_delivered_before_arrival(self):
        eires = build()
        strategy = eires.strategy
        strategy._fetch_async_prefetch(("v", 4))
        eires.clock.advance(50.0)  # latency is 100
        strategy._deliver_due()
        assert ("v", 4) not in eires.cache


class TestBlockingRounds:
    def test_block_for_waits_out_inflight_remainder(self):
        eires = build(latency=100.0)
        strategy = eires.strategy
        strategy._fetch_async_prefetch(("v", 5))  # arrives at t=100
        eires.clock.advance(80.0)
        values = strategy._block_for([("v", 5)])
        # Only the remaining 20us were waited, not a fresh 100.
        assert eires.clock.now == pytest.approx(100.0)
        assert values[("v", 5)] == frozenset(range(10))

    def test_concurrent_block_stall_is_max_not_sum(self):
        eires = build(latency=100.0)
        strategy = eires.strategy
        start = eires.clock.now
        strategy._block_for([("v", 6), ("v", 7), ("v", 8)])
        assert eires.clock.now - start == pytest.approx(100.0)

    def test_staged_values_survive_cache_eviction(self):
        eires = build(capacity=1)  # one-entry cache: everything evicts
        strategy = eires.strategy
        from repro.nfa.run import Obligation, Run

        automaton = eires.automaton
        a_event = Event(1.0, {"type": "A", "id": 1, "v": 1}, seq=0)
        b_event = Event(2.0, {"type": "B", "id": 1, "v": 2}, seq=1)
        run = Run.start(automaton.states[1], "a", a_event, 1.0)
        predicate = automaton.transitions[1].remote_predicates[0]
        env = {"a": a_event, "b": b_event}
        run.obligations = (
            Obligation((predicate,), negated=False, issued_at=0.0, env=env),
        )
        strategy.prepare_blocking(run)
        # Even with the one-entry cache thrashing, the staged snapshot
        # resolves the obligation without further fetches.
        outcome = strategy.resolve_obligation_predicate(predicate, env, blocking=False)
        assert outcome is not POSTPONED
        strategy.finish_blocking()
        assert strategy._staged == {}


class TestResolvePredicate:
    def _env_pair(self, eires):
        a_event = Event(1.0, {"type": "A", "id": 1, "v": 1}, seq=0)
        b_event = Event(2.0, {"type": "B", "id": 1, "v": 2}, seq=1)
        from repro.nfa.run import Run

        run = Run.start(eires.automaton.states[1], "a", a_event, 1.0)
        return run, {"a": a_event, "b": b_event}

    def test_bl2_blocks_and_answers(self):
        eires = build(strategy="BL2")
        run, env = self._env_pair(eires)
        transition = eires.automaton.transitions[1]
        predicate = transition.remote_predicates[0]
        outcome = eires.strategy.resolve_predicate(transition, predicate, run, env)
        assert outcome is True  # 2 in range(10)
        assert eires.strategy.stats.blocking_stalls == 1

    def test_bl3_postpones_without_fetching(self):
        eires = build(strategy="BL3")
        run, env = self._env_pair(eires)
        transition = eires.automaton.transitions[1]
        predicate = transition.remote_predicates[0]
        outcome = eires.strategy.resolve_predicate(transition, predicate, run, env)
        assert outcome is POSTPONED
        assert eires.transport.async_fetches == 0
        assert eires.transport.blocking_fetches == 0

    def test_lzeval_postpones_and_fetches(self):
        eires = build(strategy="LzEval")
        # Warm the rate estimator so the benefit model has data.
        for i in range(40):
            eires.rates.observe_event("ABC"[i % 3], i * 10.0)
        run, env = self._env_pair(eires)
        transition = eires.automaton.transitions[1]
        predicate = transition.remote_predicates[0]
        outcome = eires.strategy.resolve_predicate(transition, predicate, run, env)
        assert outcome is POSTPONED
        assert eires.transport.async_fetches == 1  # the fetch is in flight

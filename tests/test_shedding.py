"""Load-shedding plane: detector, policies, engine eviction, integration.

Five layers of coverage:

* golden regression: ``shed_policy="none"`` reproduces the pre-shedding
  seed numbers exactly on q1/q2 (all six strategies, healthy and lossy) —
  hard-coded from a build predating the plane, so the default path is
  provably byte-identical;
* unit tests for the :class:`~repro.shedding.detector.OverloadDetector`
  (bound validation, severity arithmetic, purity) and the policy registry;
* the utility functions' orderings (progress, residual life, obligation
  discount) without a live engine;
* engine-level batch eviction (:meth:`Engine.shed_lowest`) and the
  per-reason drop ledger (every created run drops exactly once);
* end-to-end overload runs on the bursty workload: determinism with
  tracing on/off, replay-verified ``shed_decision`` provenance, bounded
  latency, and end-of-stream flush consistency with open LzEval
  obligations and open batch windows while runs were shed mid-stream.
"""

from types import SimpleNamespace

import pytest

from repro.bench.harness import run_strategy
from repro.core.config import EiresConfig
from repro.core.framework import EIRES
from repro.obs.provenance import replay_trace, verify_shed_record
from repro.obs.trace import MemorySink, Tracer
from repro.query.ast import Window
from repro.shedding import (
    EventShedding,
    LoadShedder,
    NoShedding,
    Overload,
    OverloadDetector,
    RunShedding,
    ShedStats,
    make_shedding_policy,
    partial_match_utility,
)
from repro.workloads.bursty import BurstyConfig, bursty_workload, make_bursty_stream
from repro.workloads.synthetic import SyntheticConfig, q1_workload, q2_workload

from .helpers import make_abc_scenario, random_stream, run_eires

# ---------------------------------------------------------------------------
# Golden numbers captured from the build immediately before the shedding
# plane landed (same workloads, same seeds, default EiresConfig).  The
# ``none`` policy must reproduce every one of them exactly.
# ---------------------------------------------------------------------------

GOLDEN_KEYS = ("matches", "p50", "p95", "engine.runs_created",
               "engine.runs_expired", "fetch.total_stall_time")

GOLDEN = {
    "q1": {
        "BL1": (753, 337532.38, 526716.23, 28407, 27142, 668835.546),
        "BL2": (753, 179.82, 1008.52, 28407, 27142, 31922.238),
        "BL3": (753, 105607.43, 212778.06, 61741, 59738, 273322.063),
        "PFetch": (753, 8.33, 69.18, 28407, 27142, 408.792),
        "LzEval": (753, 56.7, 449.84, 29809, 27551, 4034.633),
        "Hybrid": (753, 8.23, 69.18, 28439, 27159, 139.453),
    },
    "q2": {
        "BL1": (517, 22564.08, 54972.16, 2193, 1910, 120481.728),
        "BL2": (517, 109.93, 908.05, 2193, 1910, 43954.592),
        "BL3": (517, 11992.62, 16968.21, 3590, 3165, 74028.067),
        "PFetch": (517, 0.48, 1.1, 2193, 1910, 763.932),
        "LzEval": (517, 0.56, 1.18, 2775, 2061, 143.77),
        "Hybrid": (517, 0.48, 1.1, 2210, 1911, 0.0),
    },
}

GOLDEN_FAULT_KEYS = ("matches", "p50", "p95", "fetch.fetch_failures", "fetch.retries")

GOLDEN_FAULTS = {  # q1 under fault_profile="lossy"
    "Hybrid": (753, 8.28, 46.83, 0, 33),
    "LzEval": (753, 93.93, 412.4, 0, 25),
}


def _workload(name: str):
    if name == "q1":
        return q1_workload(SyntheticConfig(n_events=2500, id_domain=20, window_events=400))
    return q2_workload(SyntheticConfig(n_events=2500, id_domain=40, window_events=400))


class TestPolicyNoneByteIdentity:
    @pytest.mark.parametrize("workload_name", ("q1", "q2"))
    @pytest.mark.parametrize(
        "strategy", ("BL1", "BL2", "BL3", "PFetch", "LzEval", "Hybrid")
    )
    def test_matches_pre_shedding_seed(self, workload_name, strategy):
        result = run_strategy(
            _workload(workload_name), strategy, EiresConfig(shed_policy="none")
        )
        summary = result.summary()
        assert tuple(summary[key] for key in GOLDEN_KEYS) == (
            GOLDEN[workload_name][strategy]
        )

    @pytest.mark.parametrize("strategy", sorted(GOLDEN_FAULTS))
    def test_faulted_runs_match_seed(self, strategy):
        result = run_strategy(
            _workload("q1"), strategy, EiresConfig(fault_profile="lossy")
        )
        summary = result.summary()
        assert tuple(summary[key] for key in GOLDEN_FAULT_KEYS) == (
            GOLDEN_FAULTS[strategy]
        )

    def test_default_summary_carries_no_shed_columns(self):
        query, store = make_abc_scenario()
        result = run_eires(query, store, random_stream(120, seed=3))
        assert not any(key.startswith("shed.") for key in result.summary())
        assert result.shed_stats is None


class TestOverloadDetector:
    def test_requires_at_least_one_bound(self):
        with pytest.raises(ValueError, match="at least one bound"):
            OverloadDetector()

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="latency_bound"):
            OverloadDetector(latency_bound=0.0)
        with pytest.raises(ValueError, match="run_budget"):
            OverloadDetector(run_budget=0)

    def test_within_bounds_is_none(self):
        detector = OverloadDetector(latency_bound=100.0, run_budget=50)
        assert detector.assess(lag=100.0, active=50) is None
        assert detector.assess(lag=0.0, active=0) is None

    def test_latency_trip(self):
        detector = OverloadDetector(latency_bound=100.0)
        overload = detector.assess(lag=250.0, active=10)
        assert overload.latency_exceeded and not overload.budget_exceeded
        assert overload.severity == pytest.approx(2.5)

    def test_budget_trip_and_both(self):
        detector = OverloadDetector(latency_bound=100.0, run_budget=50)
        overload = detector.assess(lag=10.0, active=200)
        assert overload.budget_exceeded and not overload.latency_exceeded
        assert overload.severity == pytest.approx(4.0)
        both = detector.assess(lag=300.0, active=100)
        assert both.both and both.severity == pytest.approx(3.0)

    def test_assess_is_pure(self):
        detector = OverloadDetector(latency_bound=100.0)
        assert detector.assess(150.0, 5) == detector.assess(150.0, 5)


def _overload(severity: float = 2.0) -> Overload:
    return Overload(lag=100.0, active=10, latency_exceeded=True,
                    budget_exceeded=False, severity=severity)


class FakeShedEngine:
    """Just enough engine surface for the policy unit tests."""

    def __init__(self, active: int, utilities=()):
        self.active_runs = active
        self.clock = SimpleNamespace(now=1_000.0)
        self.stats = SimpleNamespace(events_processed=500)
        self.shed_calls = []
        self._utilities = list(utilities)

    def shed_lowest(self, count, score, strategy, reason="shed"):
        self.shed_calls.append(count)
        return count

    def extendable_runs(self, event):
        return list(self._utilities)


class TestPolicies:
    def test_registry_round_trip(self):
        assert isinstance(make_shedding_policy("none"), NoShedding)
        assert isinstance(make_shedding_policy("events", automaton=None), EventShedding)
        assert isinstance(make_shedding_policy("runs", automaton=None), RunShedding)
        with pytest.raises(ValueError, match="unknown shedding policy"):
            make_shedding_policy("bogus")

    def test_none_never_sheds(self):
        policy = NoShedding()
        assert policy.on_overload_event(_overload(), None, None) is None
        assert policy.on_overload_post(_overload(), None, None) is None

    def test_event_shedding_drops_zero_utility(self):
        automaton = SimpleNamespace(n_states=4)
        policy = EventShedding(automaton)
        engine = FakeShedEngine(active=10, utilities=[])  # extends nothing
        event = SimpleNamespace(seq=7)
        decision = policy.on_overload_event(_overload(1.5), event, engine)
        assert decision is not None and decision.action == "drop_event"
        assert decision.fields["event_seq"] == 7
        assert decision.fields["utility"] == 0.0

    def test_event_shedding_keeps_useful_events_then_adapts(self):
        automaton = SimpleNamespace(n_states=4)
        policy = EventShedding(automaton)
        useful = FakeShedEngine(active=10, utilities=[(2, 5)])  # 5 runs at depth 2
        event = SimpleNamespace(seq=1)
        # Mild overload, empty average: a useful event survives ...
        assert policy.on_overload_event(_overload(1.1), event, useful) is None
        # ... and raised the running average, so deep overload now sheds it.
        decision = policy.on_overload_event(_overload(50.0), event, useful)
        assert decision is not None
        assert decision.fields["utility"] <= decision.fields["cutoff"]

    def test_run_shedding_target_population(self):
        policy = RunShedding(None, omega=0.5, run_budget=100)
        assert policy.target_population(1_000) == 100
        halving = RunShedding(None, omega=0.5)
        assert halving.target_population(1_000) == 500

    def test_run_shedding_evicts_down_to_target(self):
        policy = RunShedding(SimpleNamespace(n_states=4), omega=0.5, run_budget=10)
        engine = FakeShedEngine(active=25)
        decision = policy.on_overload_post(_overload(), engine, strategy=None)
        assert engine.shed_calls == [15]
        assert decision.fields == {"victims": 15, "target": 10, "before": 25}

    def test_run_shedding_idles_below_target(self):
        policy = RunShedding(SimpleNamespace(n_states=4), omega=0.5, run_budget=100)
        engine = FakeShedEngine(active=40)
        assert policy.on_overload_post(_overload(), engine, strategy=None) is None
        assert engine.shed_calls == []

    def test_run_shedding_rejects_bad_omega(self):
        with pytest.raises(ValueError, match="omega"):
            RunShedding(None, omega=1.5)


class TestPartialMatchUtility:
    AUTOMATON = SimpleNamespace(n_states=9, window=Window("count", 400))

    def _run(self, bound=2, obligations=0, first_seq=0):
        return SimpleNamespace(
            env={f"b{i}": None for i in range(bound)},
            obligations=tuple(range(obligations)),
            first_seq=first_seq,
            first_t=0.0,
        )

    def _score(self, run, events_seen=100, omega=0.5):
        return partial_match_utility(run, self.AUTOMATON, 0.0, events_seen, omega)

    def test_progress_raises_utility(self):
        assert self._score(self._run(bound=6)) > self._score(self._run(bound=1))

    def test_residual_life_raises_utility(self):
        fresh = self._run(first_seq=90)   # window barely used
        stale = self._run(first_seq=-200)  # window mostly consumed
        assert self._score(fresh) > self._score(stale)

    def test_obligations_discount(self):
        clean = self._run(obligations=0)
        burdened = self._run(obligations=3)
        assert self._score(clean) > self._score(burdened)

    def test_omega_weighs_progress_against_life(self):
        invested = self._run(bound=7, first_seq=-350)  # far along, almost out of window
        fresh = self._run(bound=1, first_seq=99)
        assert self._score(invested, omega=1.0) > self._score(fresh, omega=1.0)
        assert self._score(invested, omega=0.0) < self._score(fresh, omega=0.0)

    def test_time_window_uses_virtual_time(self):
        automaton = SimpleNamespace(n_states=9, window=Window("time", 1_000.0))
        young = SimpleNamespace(env={}, obligations=(), first_seq=0, first_t=900.0)
        old = SimpleNamespace(env={}, obligations=(), first_seq=0, first_t=100.0)
        assert partial_match_utility(young, automaton, 1_000.0, 0, 0.5) > (
            partial_match_utility(old, automaton, 1_000.0, 0, 0.5)
        )


class TestEngineShedLowest:
    def test_cap_still_enforced_by_batch_eviction(self):
        query, store = make_abc_scenario()
        stream = random_stream(300, seed=23)
        capped = run_eires(query, store, stream, max_partial_matches=20)
        assert capped.engine_stats["peak_active_runs"] <= 21
        assert capped.engine_stats["shed_runs"] > 0
        assert capped.engine_stats["dropped.shed"] == capped.engine_stats["shed_runs"]

    def test_every_created_run_drops_exactly_once(self):
        query, store = make_abc_scenario()
        result = run_eires(query, store, random_stream(300, seed=23),
                           max_partial_matches=20)
        stats = result.engine_stats
        dropped = sum(v for k, v in stats.items() if k.startswith("dropped."))
        assert dropped == stats["runs_created"]

    def test_shed_lowest_direct(self):
        eires = EIRES(*_abc_pieces(), config=EiresConfig(cache_capacity=100))
        engine = eires.runtime.sessions[0].engine
        strategy = eires.runtime.sessions[0].strategy
        for event in random_stream(60, seed=5):
            eires.clock.advance_to(event.t)
            strategy.on_event_start(event, event.seq)
            engine.process_event(event, strategy)
        live = sorted(run.run_id for run in engine.iter_runs())
        before = len(live)
        assert before > 10
        shed = engine.shed_lowest(7, lambda run: float(run.run_id), strategy)
        assert shed == 7
        assert engine.active_runs == before - 7
        assert engine.stats.shed_runs == 7
        # Scoring by creation id makes the victims the 7 oldest live runs.
        survivors = sorted(run.run_id for run in engine.iter_runs())
        assert survivors == live[7:]

    def test_shed_lowest_noop_on_empty_or_zero(self):
        eires = EIRES(*_abc_pieces(), config=EiresConfig(cache_capacity=100))
        engine = eires.runtime.sessions[0].engine
        strategy = eires.runtime.sessions[0].strategy
        assert engine.shed_lowest(5, lambda run: 0.0, strategy) == 0
        for event in random_stream(30, seed=5):
            eires.clock.advance_to(event.t)
            engine.process_event(event, strategy)
        assert engine.shed_lowest(0, lambda run: 0.0, strategy) == 0


def _abc_pieces():
    from repro.remote.transport import FixedLatency

    query, store = make_abc_scenario()
    return query, store, FixedLatency(50.0)


# ---------------------------------------------------------------------------
# Configuration and composition-root wiring
# ---------------------------------------------------------------------------


class TestConfigValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown shedding policy"):
            EiresConfig(shed_policy="bogus")

    def test_active_policy_needs_a_bound(self):
        with pytest.raises(ValueError, match="latency-bound"):
            EiresConfig(shed_policy="runs")

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError, match="latency_bound"):
            EiresConfig(shed_policy="events", latency_bound=-1.0)
        with pytest.raises(ValueError, match="run_budget"):
            EiresConfig(shed_policy="runs", run_budget=0)

    def test_tree_backend_refuses_shedding(self):
        query, store = make_abc_scenario()
        from repro.remote.transport import FixedLatency

        with pytest.raises(ValueError, match="does not support load shedding"):
            EIRES(query, store, FixedLatency(50.0), backend="tree",
                  config=EiresConfig(shed_policy="runs", run_budget=10))

    def test_policy_none_builds_no_shedder(self):
        eires = EIRES(*_abc_pieces(), config=EiresConfig())
        assert eires.runtime.sessions[0].shedder is None

    def test_active_policy_builds_shedder(self):
        eires = EIRES(*_abc_pieces(),
                      config=EiresConfig(shed_policy="runs", run_budget=500))
        shedder = eires.runtime.sessions[0].shedder
        assert isinstance(shedder, LoadShedder)
        assert isinstance(shedder.policy, RunShedding)
        assert shedder.stats.as_dict() == {
            "overloads": 0, "events_dropped": 0, "runs_shed": 0
        }

    def test_shed_counters_registered_on_session_registry(self):
        eires = EIRES(*_abc_pieces(),
                      config=EiresConfig(shed_policy="runs", run_budget=500))
        assert "shed.overloads" in eires.metrics.snapshot()


# ---------------------------------------------------------------------------
# End-to-end overload behaviour on the bursty workload
# ---------------------------------------------------------------------------

BURSTY = BurstyConfig(n_events=1_200)


def _bursty_run(policy: str, strategy: str = "Hybrid", tracer=None, **config):
    workload = bursty_workload(BURSTY)
    cfg = EiresConfig(
        cache_capacity=workload.notes["cache_capacity"],
        shed_policy=policy,
        **config,
    )
    return run_strategy(workload, strategy, cfg, tracer=tracer)


class TestBurstyWorkload:
    def test_stream_is_deterministic(self):
        first = make_bursty_stream(BURSTY)
        second = make_bursty_stream(BURSTY)
        assert [e.t for e in first] == [e.t for e in second]
        assert [e.attrs for e in first] == [e.attrs for e in second]

    def test_bursts_are_denser_and_hotter(self):
        events = list(make_bursty_stream(BURSTY))
        calm = events[: BURSTY.calm_events]
        burst = events[BURSTY.calm_events : BURSTY.calm_events + BURSTY.burst_events]
        calm_span = calm[-1].t - calm[0].t
        burst_span = burst[-1].t - burst[0].t
        assert burst_span < calm_span / 2.0
        hot = sum(1 for e in burst if e.attrs["id"] <= BURSTY.hot_ids)
        assert hot / len(burst) > 0.5

    def test_overload_factor_validation(self):
        with pytest.raises(ValueError, match="overload_factor"):
            BurstyConfig(overload_factor=0.5)
        with pytest.raises(ValueError, match="hot_ids"):
            BurstyConfig(hot_ids=0)


class TestOverloadRuns:
    @pytest.mark.parametrize("policy,bound_kw", [
        ("events", {"latency_bound": 300.0}),
        ("runs", {"latency_bound": 300.0}),
        ("runs", {"run_budget": 2_000}),
    ])
    def test_shedding_bounds_latency_and_accounts_drops(self, policy, bound_kw):
        base = _bursty_run("none")
        shed = _bursty_run(policy, **bound_kw)
        summary = shed.summary()
        assert summary["shed.overloads"] > 0
        if policy == "events":
            assert summary["shed.events_dropped"] > 0
            assert summary["engine.dropped.shed"] == 0
        else:
            assert summary["shed.runs_shed"] > 0
            assert summary["shed.runs_shed"] == summary["engine.dropped.shed"]
        assert shed.latency_percentiles()[95] < base.latency_percentiles()[95]
        assert 0 < shed.match_count <= base.match_count

    def test_shedding_is_deterministic(self):
        first = _bursty_run("runs", latency_bound=300.0)
        second = _bursty_run("runs", latency_bound=300.0)
        assert first.match_signatures() == second.match_signatures()
        assert first.summary() == second.summary()

    @pytest.mark.parametrize("policy,bound_kw", [
        ("events", {"latency_bound": 300.0}),
        ("runs", {"latency_bound": 300.0}),
    ])
    def test_tracing_does_not_perturb_and_replays(self, policy, bound_kw):
        untraced = _bursty_run(policy, **bound_kw)
        sink = MemorySink()
        traced = _bursty_run(policy, tracer=Tracer(sink, track="Hybrid"), **bound_kw)
        assert traced.match_signatures() == untraced.match_signatures()
        assert traced.summary() == untraced.summary()
        replay = replay_trace(sink.records)
        assert replay["checked_shed"] > 0
        assert replay["problems"] == []
        sheds = [r for r in sink.records if r["cat"] == "shed"]
        assert all(r["name"] == "shed_decision" for r in sheds)
        assert all(r["policy"] == policy for r in sheds)

    def test_shed_record_verifier_catches_lies(self):
        sink = MemorySink()
        _bursty_run("runs", latency_bound=300.0, tracer=Tracer(sink, track="x"))
        record = dict(next(r for r in sink.records if r["cat"] == "shed"))
        assert verify_shed_record(record) == []
        tampered = dict(record, victims=record["victims"] + 1)
        assert verify_shed_record(tampered)
        becalmed = dict(record, lag=0.0, active=0)
        assert verify_shed_record(becalmed)

    def test_flush_consistency_with_obligations_and_batching(self):
        """End-of-stream flush x open LzEval obligations x open batch windows
        x mid-stream sheds: no orphaned runs, every drop attributed."""
        workload = bursty_workload(BURSTY)
        cfg = EiresConfig(
            cache_capacity=workload.notes["cache_capacity"],
            shed_policy="runs",
            latency_bound=300.0,
            batch_window=50.0,
            batch_max_keys=8,
        )
        eires = EIRES(workload.query, workload.store, workload.latency_model,
                      strategy="LzEval", config=cfg)
        result = eires.run(workload.stream)
        engine = eires.runtime.sessions[0].engine
        stats = result.summary()
        # The engine is fully drained: the flush left no live runs behind.
        assert engine.active_runs == 0
        # Every created run was dropped exactly once, under a known reason.
        dropped = sum(v for k, v in stats.items() if k.startswith("engine.dropped."))
        assert dropped == stats["engine.runs_created"]
        assert stats["engine.dropped.shed"] == stats["shed.runs_shed"] > 0
        # Obligations shed mid-flight expired with their runs (the ledger
        # balances: nothing waits on data that will never be used).
        assert stats["fetch.obligations_expired"] >= 0
        assert stats["engine.dropped.flushed"] >= 0

    def test_shed_stats_view(self):
        stats = ShedStats()
        stats.inc("overloads")
        stats.inc("runs_shed", 5)
        assert stats["overloads"] == 1
        assert stats.as_dict() == {"overloads": 1, "events_dropped": 0, "runs_shed": 5}

"""Cross-backend conformance: every backend honours the reference semantics.

The backend contract has two tiers:

* ``exact_replay`` backends (``vectorized``) must be **byte-identical** to
  ``reference`` — same match signatures, same virtual-time percentiles,
  same engine counters, same metrics, same trace stream, same shed
  decisions — across queries, selection policies, all fetch strategies,
  faults, batching, and shedding;
* approximate backends (``tree``) must produce the same *match set* on the
  configurations their declared capabilities admit.

Scenarios are deliberately small (hundreds of events) so the whole matrix
stays tier-1 fast; the full-size regime lives in
``benchmarks/bench_backends.py``.
"""

from __future__ import annotations

import pytest

from repro.backends import backend_unavailable_reason, get_backend
from repro.bench.harness import ALL_STRATEGIES, run_strategy
from repro.core.config import EiresConfig
from repro.core.framework import EIRES
from repro.obs.trace import MemorySink, Tracer
from repro.workloads.bursty import BurstyConfig, bursty_workload
from repro.workloads.synthetic import SyntheticConfig, q1_workload, q2_workload

needs_vectorized = pytest.mark.skipif(
    backend_unavailable_reason("vectorized") is not None,
    reason=str(backend_unavailable_reason("vectorized")),
)

Q1_SMALL = SyntheticConfig(n_events=700, id_domain=20, window_events=200)
Q2_SMALL = SyntheticConfig(n_events=700, id_domain=40, window_events=200)


def _observables(result, sink: MemorySink | None = None):
    """Everything a run makes observable, minus the backend's own label."""
    metrics = dict(result.metrics or {})
    metrics.pop("engine.backend", None)
    data = {
        "summary": result.summary(),
        "signatures": [match.signature() for match in result.matches],
        "engine_stats": result.engine_stats,
        "metrics": metrics,
    }
    if sink is not None:
        data["trace"] = sink.records
    return data


def _run(workload, strategy, config, backend, traced=False):
    sink = MemorySink() if traced else None
    tracer = Tracer(sink) if traced else None
    result = run_strategy(workload, strategy, config, tracer=tracer, backend=backend)
    return _observables(result, sink)


class TestVectorizedByteIdentity:
    """``vectorized`` replays ``reference`` exactly, observably everywhere."""

    @needs_vectorized
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_q1_all_strategies_greedy(self, strategy):
        workload = q1_workload(Q1_SMALL)
        config = EiresConfig()
        assert _run(workload, strategy, config, "reference") == _run(
            workload, strategy, config, "vectorized"
        )

    @needs_vectorized
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_q1_all_strategies_non_greedy(self, strategy):
        workload = q1_workload(Q1_SMALL)
        config = EiresConfig(policy="non_greedy")
        assert _run(workload, strategy, config, "reference") == _run(
            workload, strategy, config, "vectorized"
        )

    @needs_vectorized
    @pytest.mark.parametrize("policy", ["greedy", "non_greedy"])
    def test_q2_both_policies(self, policy):
        workload = q2_workload(Q2_SMALL)
        config = EiresConfig(policy=policy)
        assert _run(workload, "Hybrid", config, "reference") == _run(
            workload, "Hybrid", config, "vectorized"
        )

    @needs_vectorized
    def test_faulted_transport(self):
        workload = q1_workload(Q1_SMALL)
        config = EiresConfig(fault_profile="drop:0.2")
        assert _run(workload, "Hybrid", config, "reference") == _run(
            workload, "Hybrid", config, "vectorized"
        )

    @needs_vectorized
    def test_batched_fetches(self):
        workload = q1_workload(Q1_SMALL)
        config = EiresConfig(batch_window=50.0, batch_max_keys=8)
        assert _run(workload, "PFetch", config, "reference") == _run(
            workload, "PFetch", config, "vectorized"
        )

    @needs_vectorized
    @pytest.mark.parametrize("shed_policy", ["events", "runs"])
    def test_shedding_decisions(self, shed_policy):
        workload = bursty_workload(BurstyConfig(n_events=800))
        config = EiresConfig(shed_policy=shed_policy, latency_bound=1_000.0)
        reference = _run(workload, "Hybrid", config, "reference")
        assert reference == _run(workload, "Hybrid", config, "vectorized")

    @needs_vectorized
    def test_run_cap_shedding(self):
        workload = q1_workload(Q1_SMALL)
        config = EiresConfig(max_partial_matches=200)
        assert _run(workload, "Hybrid", config, "reference") == _run(
            workload, "Hybrid", config, "vectorized"
        )

    @needs_vectorized
    def test_traced_run_streams_identical_records(self):
        workload = q1_workload(Q1_SMALL)
        config = EiresConfig()
        reference = _run(workload, "LzEval", config, "reference", traced=True)
        vectorized = _run(workload, "LzEval", config, "vectorized", traced=True)
        assert reference["trace"], "the traced scenario produced no records"
        assert reference == vectorized


class TestVectorizedEngagement:
    """Identity must come from the batch path actually running, not from
    silently falling back to scalar evaluation."""

    @needs_vectorized
    def test_batch_path_engages_on_q1(self):
        workload = q1_workload(Q1_SMALL)
        eires = EIRES(
            workload.query,
            workload.store,
            workload.latency_model,
            strategy="Hybrid",
            backend="vectorized",
        )
        eires.run(workload.stream)
        stats = eires.engine.vector_stats
        assert stats["batches"] > 0
        assert stats["vector_predicate_evals"] > 0
        # Q1's local guards are plain attribute comparisons: all columnable.
        assert stats["scalar_fallback_evals"] == 0

    @needs_vectorized
    def test_scalar_fallback_parity(self):
        """A guard NumPy cannot express falls back per-run, identically."""
        from repro.query.parser import parse_query
        from repro.query.predicates import Comparison, FunctionPredicate
        from repro.remote.transport import UniformLatency
        from repro.workloads.synthetic import make_store, make_stream

        # Two partition keys only, so the ``SAME[id]`` partitions are wide
        # enough for the batch planner to engage (and hence to fall back).
        wide = SyntheticConfig(n_events=700, id_domain=2, window_events=200)

        def build(backend):
            query = parse_query(
                """
                SEQ(A a, B b, C c, D d)
                WHERE SAME[id] AND a.v1 <= b.v1 AND b.v2 <= c.v2
                WITHIN 200 EVENTS
                """,
                name="QF",
            )
            # Replace one early local comparison with an equivalent opaque
            # function predicate: same verdicts, same eval_cost, but not
            # vectorizable.
            conditions = []
            replaced = 0
            for condition in query.conditions:
                if (isinstance(condition, Comparison) and condition.op == "<="
                        and not replaced):
                    condition = FunctionPredicate(
                        lambda lhs, rhs: lhs <= rhs,
                        (condition.left, condition.right),
                        name="opaque_le",
                        eval_cost=condition.eval_cost,
                    )
                    replaced += 1
                conditions.append(condition)
            assert replaced == 1
            query.conditions = tuple(conditions)
            eires = EIRES(
                query,
                make_store(wide),
                UniformLatency(wide.latency_low_us, wide.latency_high_us),
                strategy="Hybrid",
                backend=backend,
            )
            result = eires.run(make_stream(wide))
            return eires, _observables(result)

        ref_engine, reference = build("reference")
        vec_engine, vectorized = build("vectorized")
        assert reference == vectorized
        assert vec_engine.engine.vector_stats["scalar_fallback_evals"] > 0


class TestTreeBackendConformance:
    """The tree backend matches the reference match set where its declared
    capabilities apply (greedy, no shedding)."""

    @pytest.mark.parametrize("strategy", ["BL1", "Hybrid"])
    def test_q1_match_set(self, strategy):
        workload = q1_workload(Q1_SMALL)
        config = EiresConfig()
        reference = run_strategy(workload, strategy, config, backend="reference")
        tree = run_strategy(workload, strategy, config, backend="tree")
        assert sorted(m.signature() for m in tree.matches) == sorted(
            m.signature() for m in reference.matches
        )

    def test_capabilities_declare_the_gaps(self):
        capabilities = get_backend("tree").capabilities
        assert capabilities.policies == ("greedy",)
        assert not capabilities.shedding
        assert not capabilities.obligations
        assert not capabilities.exact_replay

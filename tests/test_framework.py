"""Tests for configuration validation and framework assembly."""

import pytest

from repro.cache.cost_based import CostBasedCache
from repro.cache.lru import LRUCache
from repro.core.config import CACHE_COST, CACHE_LRU, EiresConfig
from repro.core.framework import EIRES
from repro.remote.transport import FixedLatency

from tests.helpers import make_abc_scenario, random_stream


class TestEiresConfig:
    def test_defaults_are_paper_values(self):
        config = EiresConfig()
        assert config.omega_fetch == 0.7  # Fig. 9a optimum
        assert config.omega_cache == 0.5  # Fig. 9b optimum
        assert config.cache_capacity == 10_000  # 10% of the synthetic key range

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"policy": "sometimes"},
            {"cache_policy": "fifo"},
            {"cache_capacity": 0},
            {"omega_fetch": 1.2},
            {"omega_cache": -0.1},
            {"noise_ratio": 2.0},
            {"utility_tick_interval": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EiresConfig(**kwargs)

    def test_with_creates_modified_copy(self):
        base = EiresConfig()
        tweaked = base.with_(omega_fetch=0.3)
        assert tweaked.omega_fetch == 0.3
        assert base.omega_fetch == 0.7
        assert tweaked.cache_capacity == base.cache_capacity


class TestFrameworkAssembly:
    def _eires(self, **kwargs):
        query, store = make_abc_scenario()
        strategy = kwargs.pop("strategy", "Hybrid")
        config = EiresConfig(cache_capacity=32, **kwargs)
        return EIRES(query, store, FixedLatency(10.0), strategy=strategy, config=config)

    def test_cost_cache_selected(self):
        eires = self._eires(cache_policy=CACHE_COST)
        assert isinstance(eires.cache, CostBasedCache)

    def test_lru_cache_selected(self):
        eires = self._eires(cache_policy=CACHE_LRU)
        assert isinstance(eires.cache, LRUCache)

    def test_cacheless_strategy_gets_no_cache(self):
        eires = self._eires(strategy="BL1")
        assert eires.cache is None

    def test_strategy_instance_accepted(self):
        from repro.strategies import PFetchStrategy

        query, store = make_abc_scenario()
        eires = EIRES(query, store, FixedLatency(10.0), strategy=PFetchStrategy(),
                      config=EiresConfig(cache_capacity=8))
        assert eires.strategy.name == "PFetch"

    def test_cost_cache_utility_fn_wired_to_model(self):
        eires = self._eires(cache_policy=CACHE_COST)
        # The utility closure must consult the live model: a never-seen key
        # has zero utility.
        assert eires.cache._utility_fn(("v", 12345)) == 0.0

    def test_run_returns_complete_result(self):
        eires = self._eires()
        result = eires.run(random_stream(80, seed=6))
        assert result.strategy_name == "Hybrid"
        assert result.engine_stats["events_processed"] == 80
        assert result.duration_us > 0
        assert result.throughput.events == 80

    def test_seed_makes_runs_reproducible(self):
        query, store = make_abc_scenario()
        stream = random_stream(120, seed=14)

        def once():
            eires = EIRES(query, store, FixedLatency(10.0), strategy="Hybrid",
                          config=EiresConfig(cache_capacity=32, seed=123))
            result = eires.run(stream)
            return (result.match_count, result.latency.percentiles()[50])

        assert once() == once()

    def test_repr_mentions_strategy(self):
        assert "Hybrid" in repr(self._eires())

"""Unit tests for engine internals: runs, obligations, policies, shedding."""

import pytest

from repro.engine.engine import Engine, GREEDY, NON_GREEDY
from repro.engine.interface import CostModel
from repro.events.event import Event
from repro.events.stream import Stream
from repro.nfa.compiler import compile_query
from repro.nfa.run import Obligation, Run
from repro.query.parser import parse_query
from repro.query.predicates import Comparison, Const
from repro.sim.clock import VirtualClock

from tests.helpers import make_abc_scenario, random_stream, run_eires


class TestCostModel:
    def test_defaults_valid(self):
        model = CostModel()
        assert model.per_guard_cost > 0

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            CostModel(base_event_cost=-1.0)

    def test_engine_charges_base_cost_per_event(self):
        query, store = make_abc_scenario()
        cheap = run_eires(query, store, random_stream(50, seed=1), strategy="BL2")
        assert cheap.engine_stats["events_processed"] == 50


class TestRunStructure:
    def _automaton(self):
        return compile_query(parse_query("SEQ(A a, B b) WITHIN 100", name="t"))

    def test_start_and_extend(self):
        automaton = self._automaton()
        first = Event(5.0, {"type": "A"}, seq=0)
        run = Run.start(automaton.states[1], "a", first, created_at=5.0)
        assert run.first_t == 5.0
        assert run.env["a"] is first

        second = Event(9.0, {"type": "B"}, seq=1)
        transition = automaton.states[1].transitions[0]
        extended = run.extend(transition, second, (), created_at=9.5)
        assert extended.state.is_final
        assert extended.env["b"] is second
        # The original run is untouched (greedy split keeps it alive).
        assert "b" not in run.env
        assert extended.run_id != run.run_id

    def test_obligation_requires_predicates(self):
        with pytest.raises(ValueError):
            Obligation((), negated=False, issued_at=0.0, env={})

    def test_add_obligations(self):
        automaton = self._automaton()
        run = Run.start(automaton.states[1], "a", Event(1.0, {"type": "A"}, seq=0), 1.0)
        predicate = Comparison("=", Const(1), Const(1))
        run.add_obligations((Obligation((predicate,), False, 0.0, env={}),))
        assert run.has_obligations
        assert len(run.obligations) == 1


class TestSelectionPolicies:
    def test_invalid_policy_rejected(self):
        automaton = compile_query(parse_query("SEQ(A a, B b) WITHIN 10", name="t"))
        with pytest.raises(ValueError):
            Engine(automaton, VirtualClock(), policy="eager")

    def test_greedy_splits_on_every_match(self):
        query, store = make_abc_scenario()
        events = Stream(
            [Event(10.0 * (i + 1), {"type": "ABC"[i % 3], "id": 1, "v": 1}) for i in range(9)]
        )
        greedy = run_eires(query, store, events, policy=GREEDY)
        non_greedy = run_eires(query, store, events, policy=NON_GREEDY)
        assert greedy.match_count > non_greedy.match_count

    def test_runs_consumed_only_non_greedy(self):
        query, store = make_abc_scenario()
        stream = random_stream(100, seed=9)
        greedy = run_eires(query, store, stream, policy=GREEDY)
        non_greedy = run_eires(query, store, stream, policy=NON_GREEDY)
        assert greedy.engine_stats["runs_consumed"] == 0
        assert non_greedy.engine_stats["runs_consumed"] > 0


class TestWindowExpiry:
    def test_time_window_expires_runs(self):
        query = parse_query("SEQ(A a, B b) WHERE SAME[id] WITHIN 50 us", name="t")
        _, store = make_abc_scenario()
        events = Stream(
            [Event(float(i) * 40.0, {"type": "A", "id": i, "v": 1}) for i in range(1, 40)]
        )
        result = run_eires(query, store, events)
        assert result.engine_stats["runs_expired"] > 0
        # No runs linger at the end beyond the flush.
        assert result.match_count == 0

    def test_count_window_expires_runs(self):
        query = parse_query("SEQ(A a, B b) WHERE SAME[id] WITHIN 3 EVENTS", name="t")
        _, store = make_abc_scenario()
        events = [Event(float(i), {"type": "A", "id": 1, "v": 1}, seq=i) for i in range(10)]
        events.append(Event(11.0, {"type": "B", "id": 1, "v": 1}))
        result = run_eires(query, store, Stream(events))
        # Only the last three A's are within 3 events of the B.
        assert result.match_count == 3


class TestLoadShedding:
    def test_shedding_caps_active_runs(self):
        query, store = make_abc_scenario()
        stream = random_stream(300, seed=23)
        capped = run_eires(query, store, stream, max_partial_matches=20)
        assert capped.engine_stats["peak_active_runs"] <= 21
        assert capped.engine_stats["shed_runs"] > 0

    def test_default_has_no_shedding(self):
        query, store = make_abc_scenario()
        stream = random_stream(300, seed=23)
        result = run_eires(query, store, stream)
        assert result.engine_stats["shed_runs"] == 0


class TestMatchRecord:
    def test_latency_and_signature(self):
        from repro.engine.interface import MatchRecord

        events = {
            "a": Event(10.0, {"type": "A"}, seq=0),
            "b": Event(30.0, {"type": "B"}, seq=4),
        }
        record = MatchRecord(events, last_event_t=30.0, detected_at=42.5)
        assert record.latency == 12.5
        assert record.signature() == (("a", 0), ("b", 4))

    def test_matches_record_positive_latency(self):
        query, store = make_abc_scenario()
        result = run_eires(query, store, random_stream(120, seed=3))
        assert result.match_count > 0
        for match in result.matches:
            assert match.latency > 0.0


class TestEngineAccounting:
    def test_stats_are_consistent(self):
        query, store = make_abc_scenario()
        result = run_eires(query, store, random_stream(200, seed=8))
        stats = result.engine_stats
        assert stats["events_processed"] == 200
        assert stats["guard_evaluations"] >= stats["runs_created"]
        assert stats["matches_emitted"] == result.match_count

    def test_flush_reports_all_runs_dropped(self):
        # After a run, utility bookkeeping must return to zero: every created
        # run was dropped through some path (extension consumption, expiry,
        # failure, or the final flush).
        query, store = make_abc_scenario()
        from repro.core.framework import EIRES
        from repro.core.config import EiresConfig
        from repro.remote.transport import FixedLatency

        eires = EIRES(query, store, FixedLatency(10.0), strategy="Hybrid",
                      config=EiresConfig(cache_capacity=50))
        eires.run(random_stream(150, seed=4))
        assert eires.utility._uu_runs == {}

"""Unit tests for the event model, streams, and arrival processes."""

import pytest

from repro.events.event import Event, EventSchema
from repro.events.generators import (
    FixedArrivals,
    PoissonArrivals,
    UniformArrivals,
    generate_stream,
)
from repro.events.stream import Stream, merge_streams
from repro.sim.rng import make_rng


class TestEventSchema:
    def test_attribute_names_preserved_in_order(self):
        schema = EventSchema([("type", "str"), ("id", "int")])
        assert schema.attribute_names == ("type", "id")

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            EventSchema([])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError):
            EventSchema([("a", "int"), ("a", "str")])

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            EventSchema([("a", "complex")])

    def test_validate_accepts_conforming_payload(self):
        schema = EventSchema([("type", "str"), ("v", "float")])
        schema.validate({"type": "A", "v": 1.5})

    def test_validate_accepts_int_where_float_declared(self):
        schema = EventSchema([("v", "float")])
        schema.validate({"v": 3})

    def test_validate_rejects_missing_attribute(self):
        schema = EventSchema([("v", "int")])
        with pytest.raises(ValueError, match="missing"):
            schema.validate({})

    def test_validate_rejects_wrong_type(self):
        schema = EventSchema([("v", "int")])
        with pytest.raises(ValueError, match="expected int"):
            schema.validate({"v": "seven"})

    def test_validate_rejects_extra_attributes(self):
        schema = EventSchema([("v", "int")])
        with pytest.raises(ValueError, match="outside the schema"):
            schema.validate({"v": 1, "w": 2})

    def test_schema_equality_and_hash(self):
        a = EventSchema([("x", "int")])
        b = EventSchema([("x", "int")])
        assert a == b
        assert hash(a) == hash(b)


class TestEvent:
    def test_attribute_access(self):
        event = Event(1.0, {"type": "A", "v": 7})
        assert event["v"] == 7
        assert event.event_type == "A"

    def test_missing_attribute_raises_informative_keyerror(self):
        event = Event(1.0, {"v": 7})
        with pytest.raises(KeyError, match="no attribute 'w'"):
            event["w"]

    def test_get_with_default(self):
        event = Event(1.0, {"v": 7})
        assert event.get("w", 0) == 0

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            Event(-1.0, {"v": 1})

    def test_equality(self):
        a = Event(1.0, {"v": 1}, seq=0)
        b = Event(1.0, {"v": 1}, seq=0)
        assert a == b


class TestStream:
    def test_assigns_sequence_numbers(self):
        stream = Stream([Event(1.0, {}), Event(2.0, {})])
        assert [event.seq for event in stream] == [0, 1]

    def test_out_of_order_rejected(self):
        with pytest.raises(ValueError, match="out of order"):
            Stream([Event(2.0, {}), Event(1.0, {})])

    def test_equal_timestamps_allowed(self):
        stream = Stream([Event(1.0, {}), Event(1.0, {})])
        assert len(stream) == 2

    def test_prefix(self):
        stream = Stream([Event(float(i), {}) for i in range(5)])
        assert len(stream.prefix(3)) == 3
        with pytest.raises(ValueError):
            stream.prefix(-1)

    def test_duration(self):
        stream = Stream([Event(1.0, {}), Event(11.0, {})])
        assert stream.duration() == 10.0
        assert Stream([]).duration() == 0.0

    def test_merge_streams_orders_by_time(self):
        left = Stream([Event(1.0, {"s": "l"}), Event(5.0, {"s": "l"})])
        right = Stream([Event(2.0, {"s": "r"})])
        merged = merge_streams(left, right)
        assert [event.t for event in merged] == [1.0, 2.0, 5.0]
        assert [event.seq for event in merged] == [0, 1, 2]


class TestArrivalProcesses:
    def test_fixed_gaps(self):
        arrivals = FixedArrivals(gap=10.0)
        assert list(arrivals.timestamps(3)) == [10.0, 20.0, 30.0]

    def test_fixed_gap_must_be_positive(self):
        with pytest.raises(ValueError):
            FixedArrivals(0.0)

    def test_poisson_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0, make_rng(1))

    def test_poisson_mean_gap_close_to_inverse_rate(self):
        arrivals = PoissonArrivals(rate=0.1, rng=make_rng(7))
        gaps = [arrivals.next_gap() for _ in range(5000)]
        mean = sum(gaps) / len(gaps)
        assert 8.0 < mean < 12.0  # expectation 10

    def test_uniform_bounds(self):
        arrivals = UniformArrivals(5.0, 6.0, make_rng(3))
        for _ in range(100):
            assert 5.0 <= arrivals.next_gap() <= 6.0

    def test_uniform_invalid_range(self):
        with pytest.raises(ValueError):
            UniformArrivals(5.0, 4.0, make_rng(3))

    def test_generate_stream(self):
        stream = generate_stream(4, FixedArrivals(1.0), lambda i: {"n": i})
        assert len(stream) == 4
        assert stream[2]["n"] == 2
        assert stream[3].t == 4.0

    def test_generate_stream_negative_count(self):
        with pytest.raises(ValueError):
            generate_stream(-1, FixedArrivals(1.0), lambda i: {})

"""End-to-end fault-tolerance behaviour of the assembled framework.

Three properties anchor the fault substrate:

1. **Zero-fault identity** — with ``fault_profile="none"`` the fault
   machinery is provably inert: a run with breakers+retry constructed equals
   a run with them disabled, match-for-match and stat-for-stat.
2. **Fault transparency** — with a lossy network *and* enough retry budget,
   the match set is exactly what the zero-latency oracle computes: faults
   change *when* data arrives, never *what* is detected.
3. **Graceful degradation** — when data is terminally unavailable the
   outcome is deterministic and configurable (fail-open / fail-closed /
   stale serve), never an exception out of the engine.
"""

import pytest

from repro.core.config import EiresConfig
from repro.core.framework import EIRES
from repro.engine.reference import reference_match_signatures
from repro.nfa.compiler import compile_query
from repro.query.parser import parse_query
from repro.remote.store import RemoteStore
from repro.remote.transport import FixedLatency
from repro.strategies.base import FAIL_CLOSED, FAIL_OPEN

from .helpers import make_abc_scenario, random_stream, run_eires

ALL = ["BL1", "BL2", "BL3", "PFetch", "LzEval", "Hybrid"]


class TestZeroFaultIdentity:
    """fault_profile="none" must be byte-identical to no fault machinery."""

    @pytest.mark.parametrize("strategy", ALL)
    def test_machinery_is_inert_when_disabled(self, strategy):
        query, store = make_abc_scenario()
        stream = random_stream(300, seed=11)
        armed = run_eires(query, store, stream, strategy=strategy)
        query2, store2 = make_abc_scenario()
        disarmed = run_eires(query2, store2, stream, strategy=strategy,
                             breaker_enabled=False, stale_serve_enabled=False)
        assert armed.match_signatures() == disarmed.match_signatures()
        assert armed.summary() == disarmed.summary()

    def test_zero_rate_profile_equals_none(self):
        # An *armed* fault model with rate 0 never trips, and its decisions
        # draw from a separate RNG stream — the trace stays identical.
        query, store = make_abc_scenario()
        stream = random_stream(300, seed=12)
        baseline = run_eires(query, store, stream, strategy="Hybrid")
        query2, store2 = make_abc_scenario()
        zero_rate = run_eires(query2, store2, stream, strategy="Hybrid",
                              fault_profile="drop:0.0")
        assert baseline.match_signatures() == zero_rate.match_signatures()
        assert baseline.summary() == zero_rate.summary()

    def test_no_fault_counters_on_healthy_network(self):
        query, store = make_abc_scenario()
        result = run_eires(query, store, random_stream(300, seed=13), strategy="Hybrid")
        summary = result.summary()
        assert summary["fetch.fetch_failures"] == 0
        assert summary["fetch.retries"] == 0
        assert summary["fetch.breaker_opens"] == 0
        assert summary["fetch.stale_serves"] == 0
        assert summary["transport.failed_fetches"] == 0
        assert summary["transport.breaker_fastfails"] == 0


class TestFaultTransparency:
    """With retries, faults delay matches but never change them."""

    @pytest.mark.parametrize("strategy", ["BL1", "BL3", "Hybrid"])
    @pytest.mark.parametrize("policy", ["greedy", "non_greedy"])
    def test_lossy_network_matches_oracle(self, strategy, policy):
        query, store = make_abc_scenario()
        stream = random_stream(300, seed=21)
        expected = reference_match_signatures(compile_query(query), stream, store, policy)
        result = run_eires(
            query, store, stream, strategy=strategy, policy=policy,
            fault_profile="drop:0.1",
            retry_max_attempts=8, retry_deadline=1e9, retry_attempt_timeout=200.0,
        )
        assert result.match_signatures() == expected
        assert result.summary()["fetch.retries"] > 0

    def test_transient_errors_matches_oracle(self):
        query, store = make_abc_scenario()
        stream = random_stream(300, seed=22)
        expected = reference_match_signatures(compile_query(query), stream, store, "greedy")
        result = run_eires(
            query, store, stream, strategy="Hybrid",
            fault_profile="error:0.15",
            retry_max_attempts=8, retry_deadline=1e9,
        )
        assert result.match_signatures() == expected

    def test_latency_spikes_never_fail(self):
        # SLOW is not a failure: no retries, no failures, matches intact.
        query, store = make_abc_scenario()
        stream = random_stream(300, seed=23)
        expected = reference_match_signatures(compile_query(query), stream, store, "greedy")
        result = run_eires(query, store, stream, strategy="Hybrid",
                           fault_profile="slow:0.3:5")
        assert result.match_signatures() == expected
        assert result.summary()["fetch.fetch_failures"] == 0

    def test_faulted_latency_not_cheaper(self):
        query, store = make_abc_scenario()
        stream = random_stream(300, seed=24)
        healthy = run_eires(query, store, stream, strategy="BL1")
        query2, store2 = make_abc_scenario()
        # Breaker off: an open breaker fail-fasts (zero stall), which would
        # muddy the pure retry-cost comparison below.
        faulted = run_eires(query2, store2, stream, strategy="BL1",
                            fault_profile="drop:0.2",
                            retry_max_attempts=8, retry_deadline=1e9,
                            retry_attempt_timeout=200.0, breaker_enabled=False)
        # Retried fetches strictly lengthen the engine's blocking stalls.
        assert (faulted.summary()["fetch.total_stall_time"]
                > healthy.summary()["fetch.total_stall_time"])
        assert faulted.summary()["fetch.fetch_failures"] == 0


class TestGracefulDegradation:
    def _dead_network_run(self, failure_mode, strategy="Hybrid"):
        query, store = make_abc_scenario()
        stream = random_stream(240, seed=31)
        result = run_eires(
            query, store, stream, strategy=strategy,
            fault_profile="drop:1.0",
            retry_max_attempts=2, retry_attempt_timeout=50.0,
            failure_mode=failure_mode, stale_serve_enabled=False,
        )
        return query, store, stream, result

    def test_fail_closed_suppresses_unverifiable_matches(self):
        _, _, _, result = self._dead_network_run(FAIL_CLOSED)
        assert result.match_count == 0
        assert result.summary()["fetch.fetch_failures"] > 0

    def test_fail_open_admits_unverifiable_matches(self):
        # With every remote predicate unverifiable, fail-open degrades to
        # the query without its remote predicate.
        _, _, stream, result = self._dead_network_run(FAIL_OPEN)
        local_query = parse_query(
            "SEQ(A a, B b, C c) WHERE SAME[id] WITHIN 2000", name="abc_local"
        )
        expected = reference_match_signatures(
            compile_query(local_query), stream, RemoteStore(), "greedy"
        )
        assert result.match_signatures() == expected
        assert result.match_count > 0

    def test_dead_network_never_raises(self):
        for strategy in ALL:
            _, _, _, result = self._dead_network_run(FAIL_CLOSED, strategy=strategy)
            assert result.match_count == 0

    def test_stale_serve_bridges_outages(self):
        # A tiny cache forces refetches; bursts make some of them fail
        # terminally; the last known value bridges the gap.
        query, store = make_abc_scenario()
        stream = random_stream(500, seed=32)
        result = run_eires(
            query, store, stream, strategy="BL1",
            cache_capacity=1,
            fault_profile="burst:1500:600",
            retry_max_attempts=2, retry_backoff_base=10.0,
            failure_mode=FAIL_CLOSED, stale_serve_enabled=True,
            latency=FixedLatency(20.0),
        )
        summary = result.summary()
        assert summary["fetch.fetch_failures"] > 0
        assert summary["fetch.stale_serves"] > 0

    def test_breaker_opens_under_sustained_failure(self):
        query, store = make_abc_scenario()
        stream = random_stream(400, seed=33)
        result = run_eires(
            query, store, stream, strategy="Hybrid",
            fault_profile="error:1.0",
            retry_max_attempts=2, retry_backoff_base=10.0,
            breaker_min_samples=4, breaker_cooldown=500.0,
            failure_mode=FAIL_CLOSED,
        )
        summary = result.summary()
        assert summary["fetch.breaker_opens"] > 0
        assert summary["transport.breaker_fastfails"] > 0

    def test_obligations_expire_deterministically(self):
        # Runs whose postponed predicates never get resolvable data drop at
        # the window bound, identically on repeat runs.
        query, store = make_abc_scenario()
        stream = random_stream(400, seed=34)
        first = run_eires(
            query, store, stream, strategy="LzEval", policy="non_greedy",
            fault_profile="drop:1.0",
            retry_max_attempts=1, retry_attempt_timeout=50.0,
            failure_mode=FAIL_CLOSED, stale_serve_enabled=False,
        )
        query2, store2 = make_abc_scenario()
        second = run_eires(
            query2, store2, stream, strategy="LzEval", policy="non_greedy",
            fault_profile="drop:1.0",
            retry_max_attempts=1, retry_attempt_timeout=50.0,
            failure_mode=FAIL_CLOSED, stale_serve_enabled=False,
        )
        assert first.summary() == second.summary()
        assert first.match_count == 0

    def test_dropped_fetch_not_evaluated_as_empty_set(self):
        # The remote set contains every stream value, so *any* successful
        # fetch satisfies the predicate; MISSING_VALUE (the empty set) would
        # too — but only for absent keys.  Under fail-open a failed fetch
        # counts true by policy; under fail-closed it counts false; in
        # neither case is the failure silently evaluated as the empty set
        # (which would make fail-open and a store miss indistinguishable).
        query, store = make_abc_scenario(set_members=frozenset(range(10)))
        stream = random_stream(240, seed=35)
        closed = run_eires(
            query, store, stream, strategy="BL1",
            fault_profile="drop:1.0", retry_max_attempts=1,
            retry_attempt_timeout=50.0, failure_mode=FAIL_CLOSED,
            stale_serve_enabled=False,
        )
        # Every predicate would pass against the real data (or even against
        # the empty-set reading it would fail) — fail-closed drops them all,
        # proving the failure was not evaluated as data.
        expected = reference_match_signatures(
            compile_query(query), stream, store, "greedy"
        )
        assert expected  # the oracle does find matches on this trace
        assert closed.match_count == 0


class TestConfigValidation:
    def test_bad_failure_mode_rejected(self):
        with pytest.raises(ValueError, match="failure mode"):
            EiresConfig(failure_mode="explode")

    def test_bad_retry_attempts_rejected(self):
        with pytest.raises(ValueError, match="retry_max_attempts"):
            EiresConfig(retry_max_attempts=0)

    def test_bad_breaker_threshold_rejected(self):
        with pytest.raises(ValueError, match="breaker_failure_threshold"):
            EiresConfig(breaker_failure_threshold=0.0)

    def test_bad_fault_profile_fails_at_assembly(self):
        query, store = make_abc_scenario()
        config = EiresConfig(fault_profile="explode:0.5")
        with pytest.raises(ValueError, match="unknown fault term"):
            EIRES(query, store, FixedLatency(10.0), strategy="BL1", config=config)

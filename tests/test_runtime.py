"""Tests for the unified runtime layer (builder, sessions, dispatch).

Single- and multi-query evaluation share one composition root
(:class:`repro.runtime.RuntimeBuilder`) and one dispatch loop
(:func:`repro.runtime.dispatch.dispatch`); these tests pin down the parity
that refactor promises: multi-query runs get the full fault-tolerance,
tracing, and metrics plumbing of single-query runs, and observability never
changes results.
"""

import pytest

from repro.core.config import EiresConfig
from repro.core.framework import EIRES
from repro.core.multi import MultiQueryEIRES, QuerySpec
from repro.obs.export import write_chrome_trace
from repro.obs.trace import MemorySink, Tracer
from repro.obs.validate import validate_chrome_trace
from repro.query.parser import parse_query
from repro.remote.store import RemoteStore
from repro.remote.transport import TRANSPORT_COUNTER_KEYS, FixedLatency, UniformLatency
from repro.runtime.builder import CACHE_ALWAYS, RuntimeBuilder
from repro.runtime.session import QuerySpec as RuntimeQuerySpec

from tests.helpers import random_stream


def two_queries():
    q_ab = parse_query(
        "SEQ(A a, B b) WHERE SAME[id] AND b.v IN REMOTE[a.v] WITHIN 2000",
        name="ab",
    )
    q_ac = parse_query(
        "SEQ(A a, C c) WHERE SAME[id] AND c.v IN REMOTE[a.v] WITHIN 2000",
        name="ac",
    )
    store = RemoteStore()
    store.register_source("v", lambda key: frozenset(range(5)))
    return q_ab, q_ac, store


def build_multi(config=None, tracer=None, strategies=("Hybrid", "Hybrid")):
    q_ab, q_ac, store = two_queries()
    return MultiQueryEIRES(
        [QuerySpec(q_ab, strategy=strategies[0]),
         QuerySpec(q_ac, strategy=strategies[1])],
        store, FixedLatency(20.0),
        config=config if config is not None else EiresConfig(cache_capacity=50),
        tracer=tracer,
    )


class TestBuilder:
    def test_builder_is_the_facade_path(self):
        # Both facades expose the Runtime the builder assembled.
        q_ab, _, store = two_queries()
        single = EIRES(q_ab, store, FixedLatency(20.0))
        multi = build_multi()
        for facade in (single, multi):
            assert facade.runtime.transport is facade.transport
            assert facade.runtime.clock is facade.clock
            assert facade.runtime.metrics is facade.metrics

    def test_direct_builder_matches_facade(self):
        q_ab, _, store = two_queries()
        stream = random_stream(200, seed=3)
        config = EiresConfig(cache_capacity=50)
        direct = (
            RuntimeBuilder(store, FixedLatency(20.0), config=config)
            .add_query(q_ab, strategy="Hybrid")
            .build()
            .run(stream)["ab"]
        )
        facade = EIRES(q_ab, store, FixedLatency(20.0), config=config).run(stream)
        assert direct.match_signatures() == facade.match_signatures()
        assert direct.summary() == facade.summary()

    def test_requires_queries(self):
        _, _, store = two_queries()
        with pytest.raises(ValueError, match="at least one"):
            RuntimeBuilder(store, FixedLatency(10.0)).build()

    def test_rejects_unknown_cache_mode(self):
        _, _, store = two_queries()
        with pytest.raises(ValueError, match="cache mode"):
            RuntimeBuilder(store, FixedLatency(10.0), cache_mode="sometimes")

    def test_rejects_unknown_backend(self):
        q_ab, _, _ = two_queries()
        with pytest.raises(ValueError, match="unknown backend"):
            RuntimeQuerySpec(q_ab, backend="quantum")

    def test_strategy_instance_accepted(self):
        from repro.strategies import make_strategy

        q_ab, _, store = two_queries()
        strategy = make_strategy("LzEval")
        runtime = (
            RuntimeBuilder(store, FixedLatency(20.0))
            .add_query(q_ab, strategy=strategy)
            .build()
        )
        assert runtime.sessions[0].strategy is strategy

    def test_sessions_sorted_by_priority(self):
        q_ab, q_ac, store = two_queries()
        runtime = (
            RuntimeBuilder(store, FixedLatency(20.0), cache_mode=CACHE_ALWAYS)
            .add_query(q_ab, priority=1.0)
            .add_query(q_ac, priority=5.0)
            .build()
        )
        assert [session.name for session in runtime.sessions] == ["ac", "ab"]
        assert runtime.session("ab").priority == 1.0
        with pytest.raises(KeyError):
            runtime.session("missing")


class TestMultiQueryFaultParity:
    """Multi-query runs ride the same fault substrate as single-query runs."""

    def test_transport_stats_cover_all_counters(self):
        results = build_multi().run(random_stream(150, seed=3))
        for result in results.values():
            assert set(result.transport_stats) == set(TRANSPORT_COUNTER_KEYS)

    def test_fault_profile_degrades_gracefully(self):
        config = EiresConfig(cache_capacity=50, fault_profile="drop:0.3", seed=11)
        results = build_multi(config=config).run(random_stream(300, seed=5))
        stats = [result.transport_stats for result in results.values()]
        # The shared transport saw faults: retries happened (and are shared
        # across the per-query views of the same transport) ...
        assert all(s["retries"] > 0 for s in stats)
        # ... and every query still completed its replay with results.
        assert sum(r.match_count for r in results.values()) > 0

    def test_retry_policy_honored(self):
        # With max_attempts=1 the transport may fail but can never retry.
        stream = random_stream(300, seed=5)
        no_retry = EiresConfig(
            cache_capacity=50, fault_profile="drop:0.3",
            retry_max_attempts=1, breaker_enabled=False, seed=11,
        )
        results = build_multi(config=no_retry).run(stream)
        first = next(iter(results.values()))
        assert first.transport_stats["retries"] == 0
        assert first.transport_stats["failed_fetches"] > 0

        retrying = EiresConfig(
            cache_capacity=50, fault_profile="drop:0.3",
            retry_max_attempts=5, breaker_enabled=False, seed=11,
        )
        results = build_multi(config=retrying).run(stream)
        first = next(iter(results.values()))
        assert first.transport_stats["retries"] > 0


class TestMultiQueryTracing:
    """Multi-query runs are traceable and observability never changes results."""

    def test_traced_multi_run_produces_valid_trace(self, tmp_path):
        sink = MemorySink()
        runtime = build_multi(tracer=Tracer(sink, track="multi"))
        results = runtime.run(random_stream(250, seed=9))
        assert all(result.match_count > 0 for result in results.values())

        path = tmp_path / "multi.trace.json"
        write_chrome_trace(sink.records, str(path))
        counts = validate_chrome_trace(str(path), require_categories=False)
        for category in ("event", "fetch", "match", "cache", "run"):
            assert counts[category] > 0, f"no {category} records in multi-query trace"

    def test_match_records_name_their_query(self):
        sink = MemorySink()
        runtime = build_multi(tracer=Tracer(sink, track="multi"))
        runtime.run(random_stream(250, seed=9))
        emitted = {record["query"] for record in sink.by_category("match")}
        assert emitted == {"ab", "ac"}

    def test_results_identical_with_tracing_on_and_off(self):
        stream = random_stream(250, seed=9)
        config = EiresConfig(cache_capacity=50, fault_profile="drop:0.1", seed=7)
        plain = build_multi(config=config).run(stream)
        traced = build_multi(config=config, tracer=Tracer(MemorySink(), track="T")).run(stream)
        assert set(plain) == set(traced)
        for name in plain:
            assert plain[name].match_signatures() == traced[name].match_signatures()
            assert plain[name].latency_percentiles() == traced[name].latency_percentiles()
            assert plain[name].transport_stats == traced[name].transport_stats
            assert plain[name].strategy_stats == traced[name].strategy_stats

    def test_metrics_snapshot_covers_every_query(self):
        results = build_multi().run(random_stream(200, seed=3))
        for result in results.values():
            assert result.metrics is not None
            names = set(result.metrics)
            # Per-session counters are namespaced on the shared registry and
            # every result carries the full shared snapshot.
            assert any(name.startswith("query.ab.fetch.") for name in names)
            assert any(name.startswith("query.ac.fetch.") for name in names)
            assert any(name.startswith("transport.") for name in names)


class TestThroughputScope:
    def test_multi_query_meter_is_shared_and_labelled(self):
        results = build_multi().run(random_stream(200, seed=3))
        meters = [result.throughput for result in results.values()]
        assert meters[0] is meters[1]
        for result in results.values():
            assert result.throughput_scope == "shared"
            assert result.summary()["throughput_scope"] == "shared"

    def test_single_query_meter_is_run_scoped(self):
        q_ab, _, store = two_queries()
        result = EIRES(q_ab, store, FixedLatency(20.0)).run(random_stream(150, seed=3))
        assert result.throughput_scope == "run"
        assert "throughput_scope" not in result.summary()


class TestSingleMultiParity:
    def test_multi_with_one_query_equals_single(self):
        # A one-query MultiQueryEIRES and EIRES are the same assembly modulo
        # the always-on shared cache, so results must coincide exactly.
        q_ab, _, store = two_queries()
        stream = random_stream(250, seed=9)
        config = EiresConfig(cache_capacity=50)
        single = EIRES(q_ab, store, UniformLatency(10.0, 80.0), config=config).run(stream)
        multi = MultiQueryEIRES(
            [QuerySpec(q_ab)], store, UniformLatency(10.0, 80.0), config=config
        ).run(stream)["ab"]
        assert single.match_signatures() == multi.match_signatures()
        assert single.latency_percentiles() == multi.latency_percentiles()
        assert single.transport_stats == multi.transport_stats

"""Unit tests for the future-completion scheduler."""

import pytest

from repro.sim.scheduler import FutureScheduler


class TestFutureScheduler:
    def test_empty_scheduler(self):
        scheduler = FutureScheduler()
        assert len(scheduler) == 0
        assert not scheduler
        assert scheduler.peek_due() is None
        assert list(scheduler.pop_due(100.0)) == []

    def test_negative_due_time_rejected(self):
        with pytest.raises(ValueError):
            FutureScheduler().schedule(-1.0, "x")

    def test_pop_due_returns_only_ripe_items(self):
        scheduler = FutureScheduler()
        scheduler.schedule(10.0, "early")
        scheduler.schedule(20.0, "late")
        assert list(scheduler.pop_due(15.0)) == ["early"]
        assert len(scheduler) == 1

    def test_pop_due_inclusive_boundary(self):
        scheduler = FutureScheduler()
        scheduler.schedule(10.0, "exact")
        assert list(scheduler.pop_due(10.0)) == ["exact"]

    def test_ordering_by_due_time(self):
        scheduler = FutureScheduler()
        scheduler.schedule(30.0, "c")
        scheduler.schedule(10.0, "a")
        scheduler.schedule(20.0, "b")
        assert list(scheduler.pop_due(100.0)) == ["a", "b", "c"]

    def test_fifo_tie_break_for_equal_due_times(self):
        scheduler = FutureScheduler()
        for label in ("first", "second", "third"):
            scheduler.schedule(5.0, label)
        assert list(scheduler.pop_due(5.0)) == ["first", "second", "third"]

    def test_peek_due_smallest(self):
        scheduler = FutureScheduler()
        scheduler.schedule(50.0, "x")
        scheduler.schedule(7.0, "y")
        assert scheduler.peek_due() == 7.0

    def test_partial_consumption_keeps_heap_consistent(self):
        scheduler = FutureScheduler()
        scheduler.schedule(1.0, "a")
        scheduler.schedule(2.0, "b")
        iterator = scheduler.pop_due(10.0)
        assert next(iterator) == "a"
        del iterator
        assert list(scheduler.pop_due(10.0)) == ["b"]

    def test_drain_empties_in_order(self):
        scheduler = FutureScheduler()
        scheduler.schedule(2.0, "b")
        scheduler.schedule(1.0, "a")
        assert list(scheduler.drain()) == ["a", "b"]
        assert not scheduler

    def test_clear(self):
        scheduler = FutureScheduler()
        scheduler.schedule(1.0, "a")
        scheduler.clear()
        assert not scheduler

"""Tests for multi-query evaluation with a shared cache (§4.1)."""

import pytest

from repro.core.config import EiresConfig
from repro.core.framework import EIRES
from repro.core.multi import MultiQueryEIRES, QuerySpec
from repro.query.parser import parse_query
from repro.remote.store import RemoteStore
from repro.remote.transport import FixedLatency

from tests.helpers import random_stream


def two_queries():
    """Two queries over the same stream, sharing the remote source ``v``."""
    q_ab = parse_query(
        "SEQ(A a, B b) WHERE SAME[id] AND b.v IN REMOTE[a.v] WITHIN 2000",
        name="ab",
    )
    q_ac = parse_query(
        "SEQ(A a, C c) WHERE SAME[id] AND c.v IN REMOTE[a.v] WITHIN 2000",
        name="ac",
    )
    store = RemoteStore()
    store.register_source("v", lambda key: frozenset(range(5)))
    return q_ab, q_ac, store


class TestMultiQueryBasics:
    def test_requires_queries(self):
        _, _, store = two_queries()
        with pytest.raises(ValueError):
            MultiQueryEIRES([], store, FixedLatency(10.0))

    def test_duplicate_names_rejected(self):
        q_ab, _, store = two_queries()
        with pytest.raises(ValueError, match="unique"):
            MultiQueryEIRES([QuerySpec(q_ab), QuerySpec(q_ab)], store, FixedLatency(10.0))

    def test_invalid_priority(self):
        q_ab, _, store = two_queries()
        with pytest.raises(ValueError):
            QuerySpec(q_ab, priority=0.0)

    def test_results_keyed_by_query(self):
        q_ab, q_ac, store = two_queries()
        runtime = MultiQueryEIRES(
            [QuerySpec(q_ab), QuerySpec(q_ac)], store, FixedLatency(20.0),
            config=EiresConfig(cache_capacity=50),
        )
        results = runtime.run(random_stream(200, seed=3))
        assert set(results) == {"ab", "ac"}
        assert all(result.match_count > 0 for result in results.values())


class TestEquivalenceWithSingleQuery:
    def test_same_matches_as_isolated_runs(self):
        q_ab, q_ac, store = two_queries()
        stream = random_stream(250, seed=9)
        shared = MultiQueryEIRES(
            [QuerySpec(q_ab), QuerySpec(q_ac)], store, FixedLatency(20.0),
            config=EiresConfig(cache_capacity=50),
        ).run(stream)
        for query in (q_ab, q_ac):
            isolated = EIRES(query, store, FixedLatency(20.0), strategy="Hybrid",
                             config=EiresConfig(cache_capacity=50)).run(stream)
            assert shared[query.name].match_signatures() == isolated.match_signatures()


class TestSharing:
    def test_shared_elements_fetched_once(self):
        # Both queries need the same a.v elements; the shared cache lets the
        # second query reuse what the first fetched.
        q_ab, q_ac, store = two_queries()
        stream = random_stream(300, seed=5)
        runtime = MultiQueryEIRES(
            [QuerySpec(q_ab, strategy="BL2"), QuerySpec(q_ac, strategy="BL2")],
            store, FixedLatency(50.0), config=EiresConfig(cache_capacity=100),
        )
        results = runtime.run(stream)
        shared_stalls = sum(r.strategy_stats["blocking_stalls"] for r in results.values())

        isolated_stalls = 0
        for query in (q_ab, q_ac):
            isolated = EIRES(query, store, FixedLatency(50.0), strategy="BL2",
                             config=EiresConfig(cache_capacity=100)).run(stream)
            isolated_stalls += isolated.strategy_stats["blocking_stalls"]
        assert shared_stalls < isolated_stalls

    def test_priority_weights_shared_utility(self):
        q_ab, q_ac, store = two_queries()
        runtime = MultiQueryEIRES(
            [QuerySpec(q_ab, priority=3.0), QuerySpec(q_ac, priority=1.0)],
            store, FixedLatency(20.0), config=EiresConfig(cache_capacity=50),
        )
        # Seed one live partial match for the high-priority query.
        from repro.events.event import Event
        from repro.nfa.run import Run

        ab_runtime = runtime._runtimes[0]
        assert ab_runtime.spec.priority == 3.0
        a_state = ab_runtime.automaton.states[1]
        run = Run.start(a_state, "a", Event(1.0, {"type": "A", "id": 1, "v": 7}, seq=0), 1.0)
        ab_runtime.utility.on_run_created(run)
        weighted = runtime._shared_utility(("v", 7))
        single = ab_runtime.utility.value(("v", 7), runtime.config.omega_cache)
        assert weighted == pytest.approx(3.0 * single)

"""Unit tests for the evaluation-backend registry (``repro.backends``).

Covers the registry mechanics (registration, aliases, duplicates, the
unavailable-backend channel), the declarative capability checks the
builder relies on, and the public exports.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.backends import (
    BackendCapabilities,
    BackendCapabilityError,
    BackendUnavailableError,
    EvalBackend,
    ReferenceBackend,
    backend_names,
    backend_unavailable_reason,
    get_backend,
    list_backends,
    make_backend,
    register_backend,
    resolve_backend,
)
from repro.core.config import EiresConfig
from repro.core.framework import EIRES
from repro.workloads.synthetic import SyntheticConfig, q1_workload

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture
def scratch_registry(monkeypatch):
    """A throwaway copy of the registry state for mutation tests."""
    from repro.backends import base

    monkeypatch.setattr(base, "_BACKENDS", dict(base._BACKENDS))
    monkeypatch.setattr(base, "_ALIASES", dict(base._ALIASES))
    monkeypatch.setattr(base, "_UNAVAILABLE", dict(base._UNAVAILABLE))
    return base


class TestRegistry:
    def test_unknown_backend_lists_registered_names(self):
        with pytest.raises(ValueError, match="unknown backend 'nope'"):
            resolve_backend("nope")
        with pytest.raises(ValueError, match="reference"):
            get_backend("nope")

    def test_alias_resolves_to_canonical_name(self):
        assert resolve_backend("automaton") == "reference"
        assert get_backend("automaton") is ReferenceBackend

    def test_known_backends_are_registered(self):
        names = backend_names()
        for name in ("reference", "tree", "vectorized"):
            assert name in names

    def test_duplicate_registration_refused(self, scratch_registry):
        with pytest.raises(ValueError, match="already registered"):

            @register_backend(
                "reference",
                capabilities=BackendCapabilities(
                    policies=("greedy",), shedding=False,
                    obligations=False, exact_replay=False,
                ),
            )
            class Clone(ReferenceBackend):
                pass

    def test_duplicate_alias_refused(self, scratch_registry):
        with pytest.raises(ValueError, match="already registered"):

            @register_backend(
                "fresh-name",
                aliases=("automaton",),
                capabilities=BackendCapabilities(
                    policies=("greedy",), shedding=False,
                    obligations=False, exact_replay=False,
                ),
            )
            class Clone(ReferenceBackend):
                pass

    def test_non_backend_class_refused(self, scratch_registry):
        with pytest.raises(TypeError):
            register_backend(
                "not-a-backend",
                capabilities=BackendCapabilities(
                    policies=("greedy",), shedding=False,
                    obligations=False, exact_replay=False,
                ),
            )(object)

    def test_unavailable_backend_carries_its_reason(self, scratch_registry):
        scratch_registry.mark_backend_unavailable("ghost", "no such accelerator")
        assert "ghost" in scratch_registry.backend_names()
        assert "ghost" not in scratch_registry.backend_names(include_unavailable=False)
        assert scratch_registry.backend_unavailable_reason("ghost") == "no such accelerator"
        with pytest.raises(BackendUnavailableError, match="no such accelerator"):
            scratch_registry.get_backend("ghost")

    def test_unavailable_reason_for_loaded_backend_is_none(self):
        assert backend_unavailable_reason("reference") is None

    def test_unavailable_reason_for_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            backend_unavailable_reason("nope")

    def test_list_backends_rows(self):
        rows = {listing.name: listing for listing in list_backends()}
        assert rows["reference"].available
        assert "automaton" in rows["reference"].aliases
        assert rows["reference"].capabilities.exact_replay
        assert not rows["tree"].capabilities.shedding
        if rows["vectorized"].available:
            assert rows["vectorized"].unavailable_reason is None
        else:
            assert rows["vectorized"].unavailable_reason


class TestCapabilities:
    def test_refusal_collects_every_mismatch(self):
        tree = get_backend("tree")
        with pytest.raises(BackendCapabilityError) as excinfo:
            tree.require(policy="non_greedy", shedding=True, obligations=True)
        message = str(excinfo.value)
        assert "selection policy 'non_greedy'" in message
        assert "load shedding" in message
        assert "run obligations" in message

    def test_supported_configuration_passes(self):
        get_backend("tree").require(policy="greedy")
        get_backend("reference").require(
            policy="non_greedy", shedding=True, obligations=True
        )

    def test_builder_refuses_through_the_registry(self):
        workload = q1_workload(SyntheticConfig(n_events=10))
        with pytest.raises(BackendCapabilityError, match="does not support"):
            EIRES(
                workload.query,
                workload.store,
                workload.latency_model,
                config=EiresConfig(policy="non_greedy"),
                backend="tree",
            )

    def test_make_backend_builds_a_working_engine(self):
        from repro.nfa.compiler import compile_query
        from repro.sim.clock import VirtualClock

        workload = q1_workload(SyntheticConfig(n_events=10))
        engine = make_backend(
            "reference", compile_query(workload.query), VirtualClock()
        )
        assert isinstance(engine, EvalBackend)
        assert engine.active_runs == 0


class TestExports:
    def test_package_exports(self):
        assert repro.EvalBackend is EvalBackend
        assert callable(repro.list_backends)
        assert "EvalBackend" in repro.__all__
        assert "list_backends" in repro.__all__


class TestNumpyGating:
    def test_disable_flag_marks_vectorized_unavailable(self):
        script = (
            "from repro.backends import backend_unavailable_reason, backend_names\n"
            "reason = backend_unavailable_reason('vectorized')\n"
            "assert reason and 'vector' in reason, reason\n"
            "assert 'vectorized' not in backend_names(include_unavailable=False)\n"
            "print('gated')\n"
        )
        env = dict(os.environ, REPRO_DISABLE_NUMPY="1",
                   PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stderr
        assert "gated" in proc.stdout

    def test_reference_backend_works_without_numpy(self):
        script = (
            "from repro.bench.harness import run_strategy\n"
            "from repro.core.config import EiresConfig\n"
            "from repro.workloads.synthetic import SyntheticConfig, q1_workload\n"
            "wl = q1_workload(SyntheticConfig(n_events=200))\n"
            "result = run_strategy(wl, 'Hybrid', EiresConfig())\n"
            "print('ok', result.match_count)\n"
        )
        env = dict(os.environ, REPRO_DISABLE_NUMPY="1",
                   PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.startswith("ok")

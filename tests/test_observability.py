"""Tests for the observability layer: trace bus, registry, exporters, provenance.

The heavyweight guarantees live here too:

* every gated Eq. 7 / Eq. 8 decision record carries the numeric inputs that
  reproduce the decision, verified by replaying a real traced run;
* tracing is inert — enabling it changes no summary, match set, or RNG
  outcome, on healthy and faulted runs alike (the determinism regression).
"""

import json

import pytest

from repro.bench.harness import run_strategy
from repro.core.config import EiresConfig
from repro.metrics.reporting import FAULT_COLUMNS
from repro.obs.export import chrome_trace, write_chrome_trace, write_jsonl
from repro.obs.provenance import (
    EQ7_FIELDS,
    EQ8_FIELDS,
    replay_trace,
    verify_eq7_record,
    verify_eq8_record,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    CATEGORIES,
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    Tracer,
)
from repro.obs.validate import validate_chrome_trace
from repro.remote.transport import (
    TRANSPORT_COUNTER_KEYS,
    TRANSPORT_FAULT_COUNTER_KEYS,
)
from repro.strategies.base import (
    DEGRADATION_COUNTER_KEYS,
    STRATEGY_COUNTER_KEYS,
    StrategyStats,
)
from repro.workloads.synthetic import SyntheticConfig, q1_workload


def small_q1():
    return q1_workload(SyntheticConfig(n_events=1500, id_domain=20, window_events=400))


def traced_run(strategy="Hybrid", config=None):
    sink = MemorySink()
    result = run_strategy(
        small_q1(),
        strategy,
        config if config is not None else EiresConfig(),
        tracer=Tracer(sink, track=strategy),
    )
    return result, sink


class TestTracer:
    def test_null_tracer_is_disabled_and_silent(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.emit("fetch", "issue", 1.0, key=["s", 1])  # must not raise

    def test_records_carry_schema_fields(self):
        sink = MemorySink()
        tracer = Tracer(sink, track="T")
        tracer.emit("fetch", "issue", 10.0, key=["v", 3])
        tracer.emit("cache", "hit", 11.0)
        assert [r["seq"] for r in sink.records] == [0, 1]
        assert sink.records[0] == {
            "seq": 0, "t": 10.0, "cat": "fetch", "name": "issue",
            "track": "T", "key": ["v", 3],
        }
        assert sink.by_category("cache") == [sink.records[1]]

    def test_category_filter(self):
        sink = MemorySink()
        tracer = Tracer(sink, categories=("match",))
        tracer.emit("fetch", "issue", 1.0)
        tracer.emit("match", "emit", 2.0)
        assert [r["cat"] for r in sink.records] == ["match"]

    def test_jsonl_sink_round_trips(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        tracer = Tracer(sink, track="T")
        tracer.emit("run", "create", 5.0, run_id=7)
        tracer.close()
        lines = [json.loads(line) for line in open(path)]
        assert lines == [{"seq": 0, "t": 5.0, "cat": "run", "name": "create",
                          "track": "T", "run_id": 7}]


class TestMetricsRegistry:
    def test_counters_are_idempotent_cells(self):
        registry = MetricsRegistry()
        a = registry.counter("x.hits")
        b = registry.counter("x.hits")
        assert a is b
        a.inc()
        a.inc(2)
        assert registry.snapshot()["x.hits"] == 3

    def test_type_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("dual")
        with pytest.raises(ValueError):
            registry.gauge("dual")

    def test_histogram_windowing_drops_old_samples(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", window=100.0)
        hist.observe(10.0, t=0.0)
        hist.observe(20.0, t=50.0)
        hist.observe(30.0, t=200.0)  # evicts both earlier samples
        assert hist.windowed_values() == [30.0]
        assert hist.count == 3  # totals still cover the whole run
        assert hist.total == 60.0

    def test_histogram_empty_percentiles_are_zero(self):
        hist = MetricsRegistry().histogram("empty")
        assert hist.percentiles((50, 95)) == {50: 0.0, 95: 0.0}
        assert hist.snapshot()["count"] == 0

    def test_snapshot_is_sorted_and_flat(self):
        registry = MetricsRegistry()
        registry.counter("b.n").inc()
        registry.gauge("a.g").set(1.5)
        snap = registry.snapshot()
        assert list(snap) == ["a.g", "b.n"]


class TestStatsFacades:
    def test_strategy_stats_are_registry_views(self):
        registry = MetricsRegistry()
        stats = StrategyStats(registry)
        stats.retries += 2
        stats.total_stall_time += 1.5
        assert registry.snapshot()["fetch.retries"] == 2
        assert registry.snapshot()["fetch.total_stall_time"] == 1.5
        assert stats.retries == 2

    def test_strategy_stats_as_dict_order_and_types(self):
        data = StrategyStats().as_dict()
        assert list(data) == list(STRATEGY_COUNTER_KEYS)
        assert data["total_stall_time"] == 0.0
        assert isinstance(data["total_stall_time"], float)
        assert data["blocking_stalls"] == 0

    def test_degradation_keys_are_a_subset(self):
        assert set(DEGRADATION_COUNTER_KEYS) <= set(STRATEGY_COUNTER_KEYS)

    def test_fault_columns_derive_from_counter_tuples(self):
        assert FAULT_COLUMNS == (
            "strategy",
            *(f"fetch.{key}" for key in DEGRADATION_COUNTER_KEYS),
            *(f"transport.{key}" for key in TRANSPORT_FAULT_COUNTER_KEYS),
        )
        assert set(TRANSPORT_FAULT_COUNTER_KEYS) <= set(TRANSPORT_COUNTER_KEYS)

    def test_run_metrics_snapshot_matches_facades(self):
        result, _ = traced_run()
        assert result.metrics is not None
        for key in STRATEGY_COUNTER_KEYS:
            assert result.metrics[f"fetch.{key}"] == result.strategy_stats[key]
        for key in TRANSPORT_COUNTER_KEYS:
            assert result.metrics[f"transport.{key}"] == result.transport_stats[key]
        for key in ("hits", "misses", "insertions", "evictions", "rejected"):
            assert result.metrics[f"cache.{key}"] == result.cache_stats[key]


class TestTracedRun:
    def test_all_lifecycle_categories_emitted(self):
        _, sink = traced_run()
        seen = {record["cat"] for record in sink.records}
        assert seen == set(CATEGORIES)

    def test_records_are_sequenced_and_tracked(self):
        _, sink = traced_run()
        assert [r["seq"] for r in sink.records] == list(range(len(sink.records)))
        assert {r["track"] for r in sink.records} == {"Hybrid"}

    def test_traces_are_deterministic(self):
        _, first = traced_run()
        _, second = traced_run()
        assert first.records == second.records


class TestDecisionProvenance:
    """Every Eq. 7 / Eq. 8 decision must be reproducible from its record."""

    GATING_CONFIG = dict(cache_capacity=24)  # force the Eq. 7 utility gate

    def test_gated_eq7_records_carry_all_inputs(self):
        _, sink = traced_run(config=EiresConfig(**self.GATING_CONFIG))
        gated = [r for r in sink.by_category("prefetch") if r.get("gated")]
        assert len(gated) > 100
        assert {r["decision"] for r in gated} == {"issued", "suppressed"}
        for record in gated:
            assert all(field in record for field in EQ7_FIELDS)

    def test_eq8_records_carry_all_inputs(self):
        _, sink = traced_run("LzEval")
        gates = [r for r in sink.by_category("obligation") if r["name"] == "eq8_gate"]
        assert len(gates) > 100
        for record in gates:
            assert all(field in record for field in EQ8_FIELDS)

    @pytest.mark.parametrize("strategy", ["PFetch", "LzEval", "Hybrid"])
    def test_replay_confirms_every_decision(self, strategy):
        _, sink = traced_run(strategy, config=EiresConfig(**self.GATING_CONFIG))
        replay = replay_trace(sink.records)
        assert replay["problems"] == []
        if strategy in ("PFetch", "Hybrid"):
            assert replay["checked_eq7"] > 0
        if strategy in ("LzEval", "Hybrid"):
            assert replay["checked_eq8"] > 0

    def test_tampered_eq7_decision_is_caught(self):
        record = {
            "seq": 1, "gated": True, "decision": "issued",
            "uu": 2.0, "fu": 1.0, "omega": 0.5,
            "ell_estimate": 4.0, "candidate_utility": 0.5 * 2.0 + 0.5 * 1.0 + 0.5 * 4.0,
            "cache_min": 10.0,  # inputs imply "suppressed"
        }
        assert verify_eq7_record(record)
        record["cache_min"] = 0.0
        assert verify_eq7_record(record) == []

    def test_tampered_eq8_branch_is_caught(self):
        record = {
            "seq": 2, "gated": True, "branch": "block", "ell": 100.0,
            "succ": [3], "deltas": [
                {"state": 3, "delta_minus": 50.0, "delta_plus": 1.0, "beneficial": True},
            ],
        }
        assert verify_eq8_record(record)  # non-empty succ implies "postpone"
        record["branch"] = "postpone"
        assert verify_eq8_record(record) == []

    def test_missing_inputs_reported(self):
        assert verify_eq7_record({"gated": True, "decision": "issued"})
        assert verify_eq8_record({"branch": "postpone"})


class TestExporters:
    def test_chrome_trace_structure(self):
        trace = chrome_trace([
            {"seq": 0, "t": 1.0, "cat": "fetch", "name": "issue", "track": "S"},
            {"seq": 1, "t": 2.0, "cat": "fetch", "name": "stall", "track": "S",
             "dur": 5.0},
        ])
        events = trace["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" and e["args"]["name"] == "S" for e in metas)
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["name"] == "fetch.issue" and instant["ts"] == 1.0
        complete = next(e for e in events if e["ph"] == "X")
        assert complete["dur"] == 5.0

    def test_real_trace_validates(self, tmp_path):
        _, sink = traced_run()
        path = str(tmp_path / "run.trace.json")
        write_chrome_trace(sink.records, path)
        counts = validate_chrome_trace(path)
        assert set(counts) == set(CATEGORIES)
        assert all(count > 0 for count in counts.values())

    def test_validator_rejects_missing_category(self, tmp_path):
        path = str(tmp_path / "partial.trace.json")
        write_chrome_trace([{"seq": 0, "t": 0.0, "cat": "event", "name": "arrival"}], path)
        with pytest.raises(ValueError, match="no records for"):
            validate_chrome_trace(path)
        counts = validate_chrome_trace(path, require_categories=False)
        assert counts["event"] == 1

    def test_validator_rejects_garbage(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            handle.write("not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            validate_chrome_trace(path)

    def test_write_jsonl(self, tmp_path):
        path = str(tmp_path / "records.jsonl")
        count = write_jsonl([{"a": 1}, {"b": 2}], path)
        assert count == 2
        assert [json.loads(line) for line in open(path)] == [{"a": 1}, {"b": 2}]


class TestDeterminismRegression:
    """Tracing must not perturb results: same summary, same matches, same RNG."""

    @pytest.mark.parametrize("fault_profile", ["none", "drop:0.05"])
    @pytest.mark.parametrize("strategy", ["PFetch", "Hybrid"])
    def test_summary_and_matches_identical_with_tracing(self, strategy, fault_profile):
        config = dict(fault_profile=fault_profile, cache_capacity=24)
        plain = run_strategy(small_q1(), strategy, EiresConfig(**config))
        traced = run_strategy(
            small_q1(), strategy, EiresConfig(**config),
            tracer=Tracer(MemorySink(), track=strategy),
        )
        plain_summary = json.dumps(plain.summary(), sort_keys=True)
        traced_summary = json.dumps(traced.summary(), sort_keys=True)
        assert plain_summary == traced_summary
        assert plain.match_signatures() == traced.match_signatures()

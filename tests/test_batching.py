"""Batched fetch plane: policy, queues, transport semantics, and parity.

Three layers of coverage:

* unit tests for :mod:`repro.remote.batching` (policy validation, the
  amortized latency model, utility-ranked assembly, stats arithmetic);
* transport-level tests for window/flush semantics, blocking promotion,
  split-on-failure retries, and breaker interaction;
* runtime-level parity and determinism: a disabled batch plane is
  byte-identical to the classic single-key substrate, and an enabled one
  is deterministic with tracing on or off, faults or not.
"""

import pytest

from repro.bench.harness import run_strategy
from repro.cli import WORKLOADS
from repro.core.config import EiresConfig
from repro.obs.trace import MemorySink, Tracer, trace_key
from repro.remote.batching import DISABLED_BATCHING, BatchPolicy, BatchQueue, BatchStats
from repro.remote.faults import DROP, ERROR, OK, FaultDecision, NoFaults
from repro.remote.monitor import BreakerBoard
from repro.remote.retry import RetryPolicy
from repro.remote.store import RemoteStore
from repro.remote.transport import (
    MODE_BLOCKING,
    FetchRequest,
    FetchTicket,
    FixedLatency,
    Transport,
)
from repro.sim.rng import make_rng


def _store(*sources: str) -> RemoteStore:
    store = RemoteStore()
    for source in sources or ("s",):
        store.register_source(source, lambda key: f"v{key}")
    return store


def _transport(policy: BatchPolicy | None = None, **kwargs) -> Transport:
    return Transport(
        _store("s", "t"), FixedLatency(10.0), make_rng(1), batch_policy=policy, **kwargs
    )


BATCHING = BatchPolicy(window=50.0, max_keys=4, fixed_latency=40.0, per_key_latency=8.0)


class TestBatchPolicy:
    def test_defaults_disable_batching(self):
        assert not BatchPolicy().enabled
        assert not DISABLED_BATCHING.enabled

    def test_window_alone_does_not_enable(self):
        assert not BatchPolicy(window=50.0, max_keys=1).enabled
        assert not BatchPolicy(window=0.0, max_keys=8).enabled
        assert BatchPolicy(window=50.0, max_keys=8).enabled

    def test_amortized_latency_model(self):
        policy = BatchPolicy(window=50.0, max_keys=8, fixed_latency=40.0, per_key_latency=8.0)
        assert policy.batch_latency(1) == 48.0
        assert policy.batch_latency(5) == 80.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(window=-1.0)
        with pytest.raises(ValueError):
            BatchPolicy(max_keys=0)
        with pytest.raises(ValueError):
            BatchPolicy(fixed_latency=-1.0)
        with pytest.raises(ValueError):
            BatchPolicy(per_key_latency=-0.5)
        with pytest.raises(ValueError):
            BatchPolicy().batch_latency(0)


class TestBatchQueue:
    def _ticket(self, key) -> FetchTicket:
        return FetchTicket(key, issued_at=0.0, arrives_at=float("inf"), element=None,
                           ok=False, final=False)

    def test_ranked_orders_by_descending_utility(self):
        queue = BatchQueue("s", opened_at=0.0, window=50.0)
        queue.add(self._ticket(("s", 1)), utility=2.0)
        queue.add(self._ticket(("s", 2)), utility=float("inf"))
        queue.add(self._ticket(("s", 3)), utility=5.0)
        assert [t.key for t in queue.ranked()] == [("s", 2), ("s", 3), ("s", 1)]

    def test_equal_utility_breaks_ties_by_key_repr(self):
        queue = BatchQueue("s", opened_at=0.0, window=50.0)
        queue.add(self._ticket(("s", 9)), utility=1.0)
        queue.add(self._ticket(("s", 2)), utility=1.0)
        assert [t.key for t in queue.ranked()] == [("s", 2), ("s", 9)]

    def test_duplicate_key_rejected(self):
        queue = BatchQueue("s", opened_at=0.0, window=50.0)
        queue.add(self._ticket(("s", 1)), utility=0.0)
        with pytest.raises(ValueError, match="already queued"):
            queue.add(self._ticket(("s", 1)), utility=9.0)


class TestBatchStats:
    def test_arithmetic(self):
        stats = BatchStats(wire_requests=10, batches=3, batched_keys=12, batch_splits=1)
        assert stats.single_key_requests == 7
        assert stats.mean_keys_per_batch == 4.0
        assert stats.round_trips_saved == 9
        as_dict = stats.as_dict()
        assert as_dict["wire_requests"] == 10
        assert as_dict["mean_keys_per_batch"] == 4.0

    def test_no_batches(self):
        stats = BatchStats(wire_requests=5, batches=0, batched_keys=0, batch_splits=0)
        assert stats.mean_keys_per_batch == 0.0
        assert stats.round_trips_saved == 0


class TestTransportBatching:
    def test_requests_coalesce_into_one_wire_request(self):
        transport = _transport(BATCHING)
        t1 = transport.submit(FetchRequest(("s", 1), at=0.0))
        t2 = transport.submit(FetchRequest(("s", 2), at=10.0))
        assert t1.queued and t2.queued
        assert transport.wire_requests == 0
        assert transport.open_batch_count() == 1
        # Nothing arrives before the window closes at its deadline (50).
        assert transport.deliver_due(40.0) == []
        # Closing at 50 puts both on the wire: arrival 50 + 40 + 2*8 = 106.
        assert transport.deliver_due(60.0) == []
        delivered = transport.deliver_due(106.0)
        assert {t.key for t in delivered} == {("s", 1), ("s", 2)}
        assert all(t.ok and not t.queued for t in delivered)
        assert all(t.arrives_at == 106.0 for t in delivered)
        assert transport.wire_requests == 1
        assert transport.batches == 1
        assert transport.batched_keys == 2

    def test_max_keys_flushes_immediately(self):
        policy = BatchPolicy(window=1_000.0, max_keys=2, fixed_latency=40.0,
                             per_key_latency=8.0)
        transport = _transport(policy)
        transport.submit(FetchRequest(("s", 1), at=0.0))
        assert transport.open_batch_count() == 1
        ticket = transport.submit(FetchRequest(("s", 2), at=5.0))
        assert transport.open_batch_count() == 0
        assert transport.wire_requests == 1
        # Flushed at the second submit (5), not the window deadline.
        assert ticket.arrives_at == 5.0 + 40.0 + 2 * 8.0

    def test_sources_get_separate_windows(self):
        transport = _transport(BATCHING)
        transport.submit(FetchRequest(("s", 1), at=0.0))
        transport.submit(FetchRequest(("t", 1), at=0.0))
        assert transport.open_batch_count() == 2
        transport.flush_batches(0.0)
        assert transport.open_batch_count() == 0
        assert transport.wire_requests == 2

    def test_duplicate_key_coalesces_onto_queued_ticket(self):
        transport = _transport(BATCHING)
        first = transport.submit(FetchRequest(("s", 1), at=0.0))
        second = transport.submit(FetchRequest(("s", 1), at=10.0))
        assert second is first
        assert transport.coalesced == 1
        assert transport.async_fetches == 1

    def test_single_key_batch_pays_batch_latency(self):
        transport = _transport(BATCHING)
        ticket = transport.submit(FetchRequest(("s", 1), at=0.0))
        transport.flush_batches(20.0)
        # A lone key still flushes as one wire request at l_batch(1) = 48.
        assert ticket.arrives_at == 20.0 + 48.0
        assert transport.batches == 0  # not a multi-key batch

    def test_utility_ranks_the_wire_order(self):
        sink = MemorySink()
        transport = _transport(BATCHING)
        transport.bind_observability(None, Tracer(sink))
        transport.submit(FetchRequest(("s", 1), at=0.0, utility=1.0))
        transport.submit(FetchRequest(("s", 2), at=1.0, utility=float("inf")))
        transport.submit(FetchRequest(("s", 3), at=2.0, utility=7.0))
        transport.flush_batches(10.0)
        (record,) = [r for r in sink.records if r["name"] == "batch_issue"]
        assert record["keys"] == [trace_key(("s", 2)), trace_key(("s", 3)),
                                  trace_key(("s", 1))]

    def test_unbatchable_request_bypasses_the_window(self):
        transport = _transport(BATCHING)
        ticket = transport.submit(FetchRequest(("s", 1), at=0.0, batchable=False))
        assert not ticket.queued
        assert transport.open_batch_count() == 0
        assert transport.wire_requests == 1

    def test_disabled_policy_routes_single_key(self):
        transport = _transport(None)
        ticket = transport.submit(FetchRequest(("s", 1), at=0.0))
        assert not ticket.queued
        assert ticket.arrives_at == 10.0  # the plain latency model, no batch costs
        assert transport.open_batch_count() == 0
        assert transport.wire_requests == 1

    def test_blocking_need_closes_the_open_window(self):
        transport = _transport(BATCHING)
        queued = transport.submit(FetchRequest(("s", 1), at=0.0))
        assert queued.queued
        ticket = transport.submit(FetchRequest(("s", 1), at=10.0, mode=MODE_BLOCKING))
        assert ticket is queued
        assert not ticket.queued and ticket.ok
        # Window closed at the blocking submit, not its deadline.
        assert ticket.arrives_at == 10.0 + 48.0
        assert transport.coalesced == 1
        assert transport.wire_requests == 1
        assert transport.open_batch_count() == 0

    def test_blocking_other_key_leaves_foreign_window_open(self):
        transport = _transport(BATCHING)
        transport.submit(FetchRequest(("s", 1), at=0.0))
        transport.submit(FetchRequest(("t", 7), at=0.0, mode=MODE_BLOCKING))
        assert transport.open_batch_count() == 1

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fetch mode"):
            FetchRequest(("s", 1), at=0.0, mode="psychic")

    def test_mean_amortized_latency_feeds_the_monitor(self):
        transport = _transport(BATCHING)
        transport.submit(FetchRequest(("s", 1), at=0.0))
        transport.submit(FetchRequest(("s", 2), at=0.0))
        transport.flush_batches(0.0)
        # Each key's recorded share is l_batch(2)/2 = 28, not the full 56.
        assert transport.monitor.estimate(("s", 1)) < 56.0

    def test_batch_stats_snapshot(self):
        transport = _transport(BATCHING)
        transport.submit(FetchRequest(("s", 1), at=0.0))
        transport.submit(FetchRequest(("s", 2), at=0.0))
        transport.flush_batches(0.0)
        stats = transport.batch_stats()
        assert stats.wire_requests == 1
        assert stats.batches == 1
        assert stats.batched_keys == 2
        assert stats.round_trips_saved == 1


class _FailFirstWire(NoFaults):
    """Fails every attempt-1 wire request; retries succeed."""

    def decide(self, key, now, attempt, rng):
        return FaultDecision(ERROR if attempt == 1 else OK)


class _PoisonedKey(NoFaults):
    """One key fails terminally; everything else succeeds after the split."""

    def __init__(self, poisoned):
        self.poisoned = poisoned

    def decide(self, key, now, attempt, rng):
        if attempt == 1 or key == self.poisoned:
            return FaultDecision(ERROR)
        return FaultDecision(OK)


class TestBatchFailureSemantics:
    RETRY = RetryPolicy(max_attempts=3, backoff_base=5.0, backoff_factor=1.0,
                        jitter=0.0, attempt_timeout=400.0, deadline=4_000.0)

    def _failing_transport(self, fault_model) -> Transport:
        return Transport(
            _store("s"), FixedLatency(10.0), make_rng(1),
            fault_model=fault_model, fault_rng=make_rng(2),
            retry_policy=self.RETRY, batch_policy=BATCHING,
        )

    def test_failed_batch_splits_into_per_key_retries(self):
        transport = self._failing_transport(_FailFirstWire())
        for ident in (1, 2, 3):
            transport.submit(FetchRequest(("s", ident), at=0.0))
        transport.flush_batches(0.0)
        assert transport.wire_requests == 1
        assert transport.batch_splits == 1
        delivered = transport.deliver_due(10_000.0)
        assert {t.key for t in delivered} == {("s", 1), ("s", 2), ("s", 3)}
        assert all(t.ok for t in delivered)
        assert all(t.attempt == 2 for t in delivered)
        # The split re-issued each key individually: 1 batch + 3 singles.
        assert transport.wire_requests == 4
        assert transport.retries == 3
        assert transport.failed_fetches == 0

    def test_poisoned_key_cannot_fail_its_cohort(self):
        transport = self._failing_transport(_PoisonedKey(("s", 2)))
        for ident in (1, 2, 3):
            transport.submit(FetchRequest(("s", ident), at=0.0))
        transport.flush_batches(0.0)
        delivered = transport.deliver_due(100_000.0)
        outcomes = {t.key: t.ok for t in delivered}
        assert outcomes == {("s", 1): True, ("s", 2): False, ("s", 3): True}
        assert transport.failed_fetches == 1

    def test_drop_failure_known_at_attempt_timeout(self):
        class DropWire(NoFaults):
            def decide(self, key, now, attempt, rng):
                return FaultDecision(DROP if attempt == 1 else OK)

        transport = self._failing_transport(DropWire())
        ticket = transport.submit(FetchRequest(("s", 1), at=0.0))
        transport.submit(FetchRequest(("s", 2), at=0.0))
        transport.flush_batches(0.0)
        # The batch was dropped silently: known only at the attempt timeout.
        assert ticket.arrives_at == self.RETRY.attempt_timeout
        assert ticket.error == "timeout"

    def test_blocking_takeover_of_failed_batch_ticket(self):
        transport = self._failing_transport(_FailFirstWire())
        transport.submit(FetchRequest(("s", 1), at=0.0))
        transport.submit(FetchRequest(("s", 2), at=0.0))
        transport.flush_batches(0.0)
        # Before the failure is even delivered, an urgent need takes over the
        # doomed ticket and drives its retry chain to completion.
        ticket = transport.submit(FetchRequest(("s", 1), at=10.0, mode=MODE_BLOCKING))
        assert ticket.ok and ticket.final
        assert ticket.attempt == 2

    def test_breaker_observes_one_outcome_per_wire_request(self):
        breakers = BreakerBoard(window_size=8, failure_threshold=0.99,
                                min_samples=8, cooldown=1_000.0)
        transport = Transport(
            _store("s"), FixedLatency(10.0), make_rng(1),
            fault_model=_FailFirstWire(), fault_rng=make_rng(2),
            retry_policy=self.RETRY, breakers=breakers, batch_policy=BATCHING,
        )
        for ident in (1, 2, 3):
            transport.submit(FetchRequest(("s", ident), at=0.0))
        transport.flush_batches(0.0)
        # One failed wire request = one breaker sample, not three.
        assert breakers.failure_rate("s") == 1.0
        transport.deliver_due(10_000.0)
        # The three split retries succeeded: 1 failure in 4 samples.
        assert breakers.failure_rate("s") == 0.25

    def test_open_breaker_fastfails_instead_of_enqueueing(self):
        class AlwaysDown(NoFaults):
            def decide(self, key, now, attempt, rng):
                return FaultDecision(ERROR)

        breakers = BreakerBoard(window_size=4, failure_threshold=0.5,
                                min_samples=2, cooldown=100_000.0)
        transport = Transport(
            _store("s"), FixedLatency(10.0), make_rng(1),
            fault_model=AlwaysDown(), fault_rng=make_rng(2),
            retry_policy=RetryPolicy(max_attempts=1), breakers=breakers,
            batch_policy=BATCHING,
        )
        now = 0.0
        while breakers.available("s", now):
            transport.submit(FetchRequest(("s", int(now)), at=now))
            transport.flush_batches(now)
            transport.deliver_due(now + 1_000.0)
            now += 1_000.0
        before = transport.breaker_fastfails
        ticket = transport.submit(FetchRequest(("s", 999), at=now))
        assert ticket.error == "breaker_open"
        assert not ticket.queued
        assert transport.open_batch_count() == 0
        assert transport.breaker_fastfails == before + 1


class TestEndOfStreamFlush:
    def test_flush_drains_all_sources_sorted(self):
        transport = _transport(BATCHING)
        transport.submit(FetchRequest(("t", 1), at=0.0))
        transport.submit(FetchRequest(("s", 1), at=0.0))
        transport.submit(FetchRequest(("s", 2), at=0.0))
        assert transport.flush_batches(5.0) == 3
        assert transport.open_batch_count() == 0
        assert transport.wire_requests == 2

    def test_flush_past_deadline_uses_the_deadline(self):
        transport = _transport(BATCHING)
        ticket = transport.submit(FetchRequest(("s", 1), at=0.0))
        transport.flush_batches(10_000.0)
        # The window's deadline (50) was long past: flush as if it had
        # closed on time, not at the (arbitrary) flush call time.
        assert ticket.arrives_at == 50.0 + 48.0

    def test_flush_on_empty_transport_is_a_noop(self):
        transport = _transport(BATCHING)
        assert transport.flush_batches(100.0) == 0


def _run(workload_name, strategy, config, events=2_000, tracer=None):
    workload = WORKLOADS[workload_name](events)
    return run_strategy(
        workload,
        strategy,
        config.with_(cache_capacity=workload.notes["cache_capacity"]),
        tracer=tracer,
    )


BATCH_ON = dict(batch_window=50.0, batch_max_keys=8)


class TestDisabledBatchingParity:
    """`batch_window=0` / `batch_max_keys=1` must be byte-identical to the
    classic single-key substrate (the pre-batching defaults)."""

    @pytest.mark.parametrize("workload", ["q1", "q2"])
    @pytest.mark.parametrize("strategy", ["Hybrid", "PFetch", "LzEval"])
    def test_explicit_disable_matches_default(self, workload, strategy):
        default = _run(workload, strategy, EiresConfig())
        explicit = _run(
            workload, strategy, EiresConfig(batch_window=0.0, batch_max_keys=1)
        )
        assert explicit.summary() == default.summary()
        assert explicit.match_signatures() == default.match_signatures()

    def test_window_without_max_keys_stays_disabled(self):
        # A window alone (max_keys=1) must not change anything either.
        default = _run("q1", "Hybrid", EiresConfig())
        windowed = _run("q1", "Hybrid", EiresConfig(batch_window=50.0, batch_max_keys=1))
        assert windowed.summary() == default.summary()

    def test_fault_run_parity(self):
        default = _run("q1", "Hybrid", EiresConfig(fault_profile="drop:0.05"))
        explicit = _run(
            "q1", "Hybrid",
            EiresConfig(fault_profile="drop:0.05", batch_window=0.0, batch_max_keys=1),
        )
        assert explicit.summary() == default.summary()
        assert explicit.match_signatures() == default.match_signatures()


class TestBatchingDeterminism:
    def test_two_runs_are_identical(self):
        first = _run("q1", "Hybrid", EiresConfig(**BATCH_ON))
        second = _run("q1", "Hybrid", EiresConfig(**BATCH_ON))
        assert first.summary() == second.summary()
        assert first.match_signatures() == second.match_signatures()

    @pytest.mark.parametrize("fault_profile", ["none", "drop:0.05"])
    def test_tracing_does_not_change_results(self, fault_profile):
        config = EiresConfig(fault_profile=fault_profile, **BATCH_ON)
        untraced = _run("q1", "Hybrid", config)
        traced = _run("q1", "Hybrid", config, tracer=Tracer(MemorySink()))
        assert traced.summary() == untraced.summary()
        assert traced.match_signatures() == untraced.match_signatures()

    def test_batching_reduces_wire_requests_at_equal_recall(self):
        off = _run("q1", "Hybrid", EiresConfig())
        on = _run("q1", "Hybrid", EiresConfig(**BATCH_ON))
        assert on.match_signatures() == off.match_signatures()
        assert on.transport_stats["wire_requests"] < off.transport_stats["wire_requests"]
        assert on.transport_stats["batches"] > 0

    def test_run_result_surfaces_batch_counters(self):
        result = _run("q1", "Hybrid", EiresConfig(**BATCH_ON))
        summary = result.summary()
        for column in ("transport.wire_requests", "transport.batches",
                       "transport.batched_keys", "transport.batch_splits"):
            assert column in summary

"""Unit tests for latency/throughput metrics and report tables."""

import pytest

from repro.metrics.latency import LatencyCollector, percentile
from repro.metrics.reporting import format_comparison, format_table, speedups
from repro.metrics.throughput import ThroughputMeter


class TestPercentile:
    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0

    def test_median_of_two(self):
        assert percentile([0.0, 10.0], 50) == 5.0

    def test_endpoints(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0

    def test_interpolation_matches_numpy_convention(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 25) == pytest.approx(17.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestLatencyCollector:
    def test_records_and_reports(self):
        collector = LatencyCollector()
        collector.record_all([5.0, 1.0, 3.0])
        assert len(collector) == 3
        assert collector.median() == 3.0

    def test_default_percentile_set(self):
        collector = LatencyCollector()
        collector.record_all(float(i) for i in range(1, 101))
        summary = collector.percentiles()
        assert set(summary) == {5, 25, 50, 75, 95, 99}
        assert (
            summary[5] < summary[25] < summary[50] < summary[75] < summary[95] < summary[99]
        )

    def test_empty_reports_zeroes(self):
        assert LatencyCollector().percentiles() == {
            5: 0.0, 25: 0.0, 50: 0.0, 75: 0.0, 95: 0.0, 99: 0.0,
        }

    def test_configurable_quantile_set(self):
        collector = LatencyCollector(qs=(50, 90))
        collector.record_all(float(i) for i in range(1, 101))
        assert set(collector.percentiles()) == {50, 90}

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            LatencyCollector(qs=(50, 101))

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyCollector().record(-0.1)

    def test_mean(self):
        collector = LatencyCollector()
        collector.record_all([2.0, 4.0])
        assert collector.mean() == 3.0
        assert LatencyCollector().mean() == 0.0

    def test_smoothing_damps_spikes(self):
        raw = LatencyCollector(smoothing_window=1)
        smooth = LatencyCollector(smoothing_window=10)
        samples = [1.0] * 50 + [1000.0] + [1.0] * 49
        raw.record_all(samples)
        smooth.record_all(samples)
        # The isolated spike survives untouched in the raw view but is
        # averaged down by the sliding window.
        assert raw.percentiles((100,))[100] == 1000.0
        assert smooth.percentiles((100,))[100] < 150.0

    def test_invalid_smoothing_window(self):
        with pytest.raises(ValueError):
            LatencyCollector(smoothing_window=0)


class TestLatencyEdgeCases:
    def test_extreme_percentiles_equal_min_max(self):
        collector = LatencyCollector()
        collector.record_all([9.0, 3.0, 7.0, 1.0])
        summary = collector.percentiles((0, 100))
        assert summary[0] == 1.0
        assert summary[100] == 9.0

    def test_extreme_percentiles_single_sample(self):
        collector = LatencyCollector()
        collector.record(42.0)
        assert collector.percentiles((0, 100)) == {0: 42.0, 100: 42.0}

    def test_interpolation_exact_between_equal_neighbours(self):
        # lo*(1-f) + hi*f rounds to lo + 1ulp even when lo == hi, which broke
        # monotonicity in q (hypothesis-found: q=7.375 beat q=57.375 here).
        values = [59.0, 59.0, 59.0, 60.0]
        assert percentile(values, 7.375) == 59.0
        assert percentile(values, 57.375) >= percentile(values, 7.375)

    def test_smoothing_window_larger_than_sample_count(self):
        # With w > n the window never slides: sample i is averaged over all
        # i+1 samples seen so far (a pure expanding mean).
        collector = LatencyCollector(smoothing_window=100)
        collector.record_all([10.0, 20.0, 30.0])
        smoothed = sorted(collector._effective_samples())
        assert smoothed == pytest.approx([10.0, 15.0, 20.0])

    def test_smoothing_single_sample_passthrough(self):
        collector = LatencyCollector(smoothing_window=50)
        collector.record(8.0)
        assert collector.percentiles((50,))[50] == 8.0

    def test_empty_collector_any_percentile_set(self):
        collector = LatencyCollector(smoothing_window=10)
        assert collector.percentiles((0, 50, 100)) == {0: 0.0, 50: 0.0, 100: 0.0}
        assert collector.samples == []
        assert collector.median() == 0.0


class TestThroughputMeter:
    def test_needs_two_events(self):
        meter = ThroughputMeter()
        assert meter.events_per_second() == 0.0
        meter.record_event(0.0)
        assert meter.events_per_second() == 0.0

    def test_events_per_virtual_second(self):
        meter = ThroughputMeter()
        for i in range(11):
            meter.record_event(i * 10.0)  # 10 us apart -> 100k events/s
        assert meter.events_per_second() == pytest.approx(100_000.0)
        assert meter.events == 11
        assert meter.elapsed_us == 100.0

    def test_simultaneous_events_report_zero(self):
        # All events at the same virtual instant: elapsed is 0, and the
        # meter must report 0 instead of dividing by zero.
        meter = ThroughputMeter()
        meter.record_event(5.0)
        meter.record_event(5.0)
        meter.record_event(5.0)
        assert meter.elapsed_us == 0.0
        assert meter.events_per_second() == 0.0

    def test_empty_meter_snapshot(self):
        meter = ThroughputMeter()
        assert meter.events == 0
        assert meter.elapsed_us == 0.0
        assert meter.events_per_second() == 0.0
        assert "0 events" in repr(meter)


class TestReporting:
    ROWS = [
        {"strategy": "BL1", "p50": 100.0, "matches": 5},
        {"strategy": "Hybrid", "p50": 4.0, "matches": 5},
    ]

    def test_format_table_contains_cells(self):
        table = format_table("Fig X", self.ROWS, ("strategy", "p50"))
        assert "Fig X" in table
        assert "BL1" in table and "Hybrid" in table
        assert "100.00" in table

    def test_speedups(self):
        factors = speedups(self.ROWS, "p50")
        assert factors == {"BL1": pytest.approx(25.0)}

    def test_speedups_missing_subject(self):
        assert speedups([{"strategy": "BL1", "p50": 1.0}], "p50") == {}

    def test_format_comparison(self):
        line = format_comparison(self.ROWS)
        assert "BL1: 25.0x" in line

    def test_format_comparison_no_data(self):
        assert "no p50" in format_comparison([])

"""Tests of the engine's SAME-partition run indexing."""

from repro.events.event import Event
from repro.events.stream import Stream
from repro.nfa.compiler import compile_query
from repro.query.parser import parse_query

from tests.helpers import make_abc_scenario, random_stream, run_eires


class TestPartitionDispatch:
    def test_same_query_gets_partition_attr(self):
        automaton = compile_query(
            parse_query("SEQ(A a, B b) WHERE SAME[id] WITHIN 10", name="t")
        )
        assert automaton.partition_attr == "id"

    def test_query_without_same_has_none(self):
        automaton = compile_query(parse_query("SEQ(A a, B b) WITHIN 10", name="t"))
        assert automaton.partition_attr is None

    def test_guard_evaluations_skip_other_partitions(self):
        # 1000 events over 100 ids: each B event must only visit the runs of
        # its own id.  Without partition indexing guard evaluations would be
        # ~100x higher.
        query, store = make_abc_scenario()
        stream = random_stream(1000, seed=3, id_domain=100, types="AB")
        result = run_eires(query, store, stream)
        # Each B event touches at most the handful of same-id A-runs.
        assert result.engine_stats["guard_evaluations"] < 4_000

    def test_unpartitioned_query_still_correct(self):
        query = parse_query("SEQ(A a, B b) WITHIN 10000", name="t")
        _, store = make_abc_scenario()
        events = Stream([
            Event(10.0, {"type": "A", "id": 1, "v": 1}),
            Event(20.0, {"type": "B", "id": 2, "v": 1}),  # different id: still matches
        ])
        result = run_eires(query, store, events)
        assert result.match_count == 1

    def test_partitioned_matches_equal_unpartitioned_semantics(self):
        # SAME[id] via partition index must agree with the same correlation
        # expressed as explicit equality predicates (no partition index).
        _, store = make_abc_scenario()
        stream = random_stream(300, seed=8, id_domain=4)
        partitioned = parse_query(
            "SEQ(A a, B b, C c) WHERE SAME[id] WITHIN 2000", name="p"
        )
        explicit = parse_query(
            "SEQ(A a, B b, C c) WHERE b.id = a.id AND c.id = b.id WITHIN 2000",
            name="e",
        )
        first = run_eires(partitioned, store, stream)
        second = run_eires(explicit, store, stream)
        assert first.match_signatures() == second.match_signatures()

    def test_missing_partition_attribute_fails_loudly(self):
        # The model assumes a uniform schema (§2.1): an event lacking the
        # SAME attribute is malformed input, and the correlation guard
        # surfaces it rather than matching silently.
        import pytest

        query = parse_query("SEQ(A a, B b) WHERE SAME[id] WITHIN 10000", name="t")
        _, store = make_abc_scenario()
        events = Stream([
            Event(10.0, {"type": "A", "v": 1}),
            Event(20.0, {"type": "B", "v": 1}),
        ])
        with pytest.raises(KeyError, match="no attribute 'id'"):
            run_eires(query, store, events)

"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cost_based import CostBasedCache
from repro.cache.lru import LRUCache
from repro.engine.reference import reference_match_signatures
from repro.metrics.latency import percentile
from repro.nfa.compiler import compile_query
from repro.remote.element import DataElement
from repro.sim.rng import stable_hash
from repro.sim.scheduler import FutureScheduler

from tests.helpers import make_abc_scenario, random_stream, run_eires

# -- caches ---------------------------------------------------------------

cache_ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "get"]),
        st.integers(min_value=0, max_value=30),  # key
        st.integers(min_value=1, max_value=4),  # size (put only)
        st.booleans(),  # certain (put only)
    ),
    max_size=120,
)


@given(capacity=st.integers(min_value=1, max_value=12), ops=cache_ops)
@settings(max_examples=150, deadline=None)
def test_lru_capacity_never_exceeded(capacity, ops):
    cache = LRUCache(capacity)
    for index, (op, key, size, _certain) in enumerate(ops):
        if op == "put":
            cache.put(DataElement(("s", key), key, size=size), float(index))
        else:
            cache.get(("s", key), float(index))
        assert cache.used <= capacity
        assert cache.used == sum(
            cache._entries[k].total_size() for k in cache.keys()
        )


@given(capacity=st.integers(min_value=1, max_value=12), ops=cache_ops)
@settings(max_examples=150, deadline=None)
def test_cost_cache_capacity_never_exceeded(capacity, ops):
    utilities = {}
    cache = CostBasedCache(capacity, utility_fn=lambda key: utilities.get(key, 0.0))
    for index, (op, key, size, certain) in enumerate(ops):
        utilities[("s", key)] = float((key * 7) % 13)
        if op == "put":
            cache.put(DataElement(("s", key), key, size=size), float(index), certain=certain)
        else:
            cache.get(("s", key), float(index))
        assert cache.used <= capacity


@given(ops=cache_ops)
@settings(max_examples=80, deadline=None)
def test_cache_get_returns_what_was_put(ops):
    cache = LRUCache(1000)  # big enough: no eviction
    stored = {}
    for index, (op, key, size, _certain) in enumerate(ops):
        if op == "put":
            element = DataElement(("s", key), f"value-{key}", size=size)
            cache.put(element, float(index))
            stored[("s", key)] = element
        else:
            hit = cache.get(("s", key), float(index))
            if ("s", key) in stored:
                assert hit is stored[("s", key)]
            else:
                assert hit is None


# -- scheduler -------------------------------------------------------------


@given(dues=st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=60))
@settings(max_examples=100, deadline=None)
def test_scheduler_pops_in_nondecreasing_due_order(dues):
    scheduler = FutureScheduler()
    for due in dues:
        scheduler.schedule(due, due)
    drained = list(scheduler.drain())
    assert drained == sorted(drained)


@given(
    dues=st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=40),
    horizon=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_scheduler_pop_due_boundary(dues, horizon):
    scheduler = FutureScheduler()
    for due in dues:
        scheduler.schedule(due, due)
    popped = list(scheduler.pop_due(horizon))
    assert all(value <= horizon for value in popped)
    assert len(popped) == sum(1 for due in dues if due <= horizon)


# -- percentiles -------------------------------------------------------------


@given(
    values=st.lists(st.floats(min_value=0.0, max_value=1e9, allow_nan=False), min_size=1, max_size=200),
    q=st.floats(min_value=0.0, max_value=100.0),
)
@settings(max_examples=200, deadline=None)
def test_percentile_bounded_and_monotone(values, q):
    ordered = sorted(values)
    result = percentile(ordered, q)
    assert ordered[0] <= result <= ordered[-1]
    if q >= 50:
        assert result >= percentile(ordered, q - 50)


# -- stable hashing -----------------------------------------------------------

hashable_parts = st.recursive(
    st.one_of(
        st.integers(min_value=-(2**63), max_value=2**63 - 1),
        st.text(max_size=12),
        st.booleans(),
        st.none(),
    ),
    lambda children: st.tuples(children, children),
    max_leaves=6,
)


@given(part=hashable_parts)
@settings(max_examples=200, deadline=None)
def test_stable_hash_deterministic_and_bounded(part):
    first = stable_hash(part)
    second = stable_hash(part)
    assert first == second
    assert 0 <= first < 2**64


@given(a=st.integers(min_value=0, max_value=10**6), b=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=200, deadline=None)
def test_stable_hash_order_sensitive(a, b):
    if a != b:
        assert stable_hash(a, b) != stable_hash(b, a)


# -- end-to-end: engine vs. oracle reference -----------------------------------


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    policy=st.sampled_from(["greedy", "non_greedy"]),
    strategy=st.sampled_from(["BL1", "BL3", "Hybrid"]),
)
@settings(max_examples=25, deadline=None)
def test_engine_matches_reference_on_random_streams(seed, policy, strategy):
    query, store = make_abc_scenario()
    stream = random_stream(60, seed=seed, id_domain=2, v_domain=6)
    automaton = compile_query(query)
    expected = reference_match_signatures(automaton, stream, store, policy)
    result = run_eires(query, store, stream, strategy=strategy, policy=policy)
    assert result.match_signatures() == expected


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_latencies_are_nonnegative_and_finite(seed):
    query, store = make_abc_scenario()
    stream = random_stream(80, seed=seed)
    result = run_eires(query, store, stream, strategy="Hybrid")
    for match in result.matches:
        assert 0.0 <= match.latency < 1e12


# -- virtual clock monotonicity under arbitrary strategy/workload mixes --------


@given(
    seed=st.integers(min_value=0, max_value=1000),
    strategy=st.sampled_from(["BL1", "BL2", "BL3", "PFetch", "LzEval", "Hybrid"]),
)
@settings(max_examples=20, deadline=None)
def test_detection_times_nondecreasing(seed, strategy):
    query, store = make_abc_scenario()
    stream = random_stream(80, seed=seed)
    result = run_eires(query, store, stream, strategy=strategy)
    detected = [match.detected_at for match in result.matches]
    assert detected == sorted(detected)

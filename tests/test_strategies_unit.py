"""Unit tests for strategy-specific machinery (planner, benefit model, tiers)."""

import pytest

from repro.core.config import EiresConfig
from repro.core.framework import EIRES
from repro.query.parser import parse_query
from repro.remote.store import RemoteStore
from repro.remote.transport import FixedLatency
from repro.strategies import STRATEGIES, make_strategy
from repro.strategies.lazy import LazyBenefitModel

from tests.helpers import make_abc_scenario, random_stream, run_eires


class TestStrategyRegistry:
    def test_all_paper_strategies_present(self):
        assert set(STRATEGIES) == {"BL1", "BL2", "BL3", "PFetch", "LzEval", "Hybrid"}

    def test_make_strategy(self):
        strategy = make_strategy("PFetch")
        assert strategy.name == "PFetch"

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("BL9")

    def test_cache_usage_flags(self):
        assert not STRATEGIES["BL1"].uses_cache
        assert not STRATEGIES["BL3"].uses_cache
        for name in ("BL2", "PFetch", "LzEval", "Hybrid"):
            assert STRATEGIES[name].uses_cache


class TestPrefetchPlanner:
    def _eires(self, text, strategy="PFetch", **config):
        query = parse_query(text, name="t")
        store = RemoteStore()
        store.register_source("r", lambda key: frozenset(range(5)))
        return EIRES(query, store, FixedLatency(20.0), strategy=strategy,
                     config=EiresConfig(cache_capacity=50, **config))

    def test_plans_closest_lookahead_class_first(self):
        eires = self._eires(
            "SEQ(A a, B b, C c) WHERE c.v IN REMOTE<r>[a.v] WITHIN 1000"
        )
        planner = eires.strategy.planner
        planner.refresh(0.0)
        (site,) = eires.automaton.sites
        plan = planner.plan_for(site.site_id)
        # Closest candidate to the need: the state reached after binding b.
        assert plan.trigger_state_index == 2
        assert plan.offset == 0.0

    def test_falls_back_after_recorded_misses(self):
        eires = self._eires(
            "SEQ(A a, B b, C c) WHERE c.v IN REMOTE<r>[a.v] WITHIN 1000"
        )
        planner = eires.strategy.planner
        (site,) = eires.automaton.sites
        for _ in range(5):
            eires.history.record_miss(site.site_id, 2, now=10.0)
        planner.refresh(10.0, interval=0.0)
        plan = planner.plan_for(site.site_id)
        # The b-state trigger is distrusted; the a-state (index 1) remains.
        assert plan.trigger_state_index == 1

    def test_offset_timing_when_every_class_distrusted(self):
        eires = self._eires(
            "SEQ(A a, B b, C c) WHERE c.v IN REMOTE<r>[a.v] WITHIN 1000"
        )
        planner = eires.strategy.planner
        (site,) = eires.automaton.sites
        for state_index in (1, 2):
            for _ in range(5):
                eires.history.record_miss(site.site_id, state_index, now=10.0)
        planner.refresh(10.0, interval=0.0)
        plan = planner.plan_for(site.site_id)
        # Estimated-arrival: anchored at the earliest key-bearing class.
        assert plan.trigger_state_index == 1
        assert plan.offset >= 0.0

    def test_lookahead_disabled_uses_offset_timing(self):
        eires = self._eires(
            "SEQ(A a, B b, C c) WHERE c.v IN REMOTE<r>[a.v] WITHIN 1000",
            lookahead_enabled=False,
        )
        planner = eires.strategy.planner
        planner.refresh(0.0)
        (site,) = eires.automaton.sites
        plan = planner.plan_for(site.site_id)
        assert plan.trigger_state_index == 1  # anchor, not closest

    def test_unprefetchable_site_has_no_plan(self):
        eires = self._eires(
            "SEQ(A a, B b) WHERE a.v IN REMOTE<r>[b.v] WITHIN 1000"
        )
        planner = eires.strategy.planner
        planner.refresh(0.0)
        (site,) = eires.automaton.sites
        assert planner.plan_for(site.site_id) is None


class TestPrefetchGate:
    def test_suppression_when_cache_full_of_valuable_data(self):
        # With a noise-free utility of zero for candidates and a full cache of
        # positive-utility elements, Eq. 7 must suppress prefetches.
        query, store = make_abc_scenario()
        result = run_eires(
            query, store, random_stream(300, seed=77, v_domain=500),
            strategy="PFetch", cache_capacity=3,
        )
        assert result.strategy_stats["prefetches_suppressed"] >= 0  # counter exists
        stats = result.strategy_stats
        assert stats["prefetches_issued"] + stats["prefetches_suppressed"] > 0


class TestLazyBenefitModel:
    def _eires(self, strategy="LzEval"):
        query = parse_query(
            "SEQ(A a, B b, C c, D d) WHERE SAME[id] AND b.v IN REMOTE[a.v] WITHIN 10000",
            name="t",
        )
        store = RemoteStore()
        store.register_source("v", lambda key: frozenset(range(10)))
        return EIRES(query, store, FixedLatency(100.0), strategy=strategy,
                     config=EiresConfig(cache_capacity=50))

    def test_latency_buckets_monotone(self):
        buckets = [LazyBenefitModel.latency_bucket(ell) for ell in (0, 1, 10, 100, 1000)]
        assert buckets == sorted(buckets)

    def test_succ_set_nonempty_for_cheap_postponement(self):
        eires = self._eires()
        model = eires.strategy.benefit
        # Warm up rates so expectations are meaningful.
        for i in range(50):
            eires.rates.observe_event("ABCD"[i % 4], i * 10.0)
        transition = eires.automaton.transitions[1]  # binds b, carries the site
        succ = model.succ_set(transition, ell=100.0)
        assert succ  # plenty of time to hide 100us across c and d arrivals

    def test_succ_cache_reused_within_interval(self):
        eires = self._eires()
        model = eires.strategy.benefit
        transition = eires.automaton.transitions[1]
        first = model.succ_set(transition, ell=100.0)
        assert model.succ_set(transition, ell=100.0) is first


class TestCacheTiering:
    def test_lazy_fetches_enter_certain_tier(self):
        from repro.cache.cost_based import CostBasedCache

        query = parse_query(
            "SEQ(A a, B b, C c) WHERE SAME[id] AND b.v IN REMOTE[a.v] WITHIN 10000",
            name="t",
        )
        store = RemoteStore()
        store.register_source("v", lambda key: frozenset(range(10)))
        eires = EIRES(query, store, FixedLatency(40.0), strategy="LzEval",
                      config=EiresConfig(cache_capacity=50, cache_policy="cost"))
        eires.run(random_stream(100, seed=55))
        cache = eires.cache
        assert isinstance(cache, CostBasedCache)
        # Everything this strategy fetched was needed by a partial match, so
        # entries entered T1 (possibly demoted to T2 after first access).
        assert cache.stats.insertions > 0


class TestStrategyStatsReporting:
    def test_describe_includes_counters(self):
        query, store = make_abc_scenario()
        result = run_eires(query, store, random_stream(100, seed=2), strategy="Hybrid")
        summary = result.summary()
        assert summary["strategy"] == "Hybrid"
        assert "fetch.prefetches_issued" in summary
        assert "cache.hit_rate" in summary
        assert "transport.async_fetches" in summary

    def test_bl1_has_no_cache_stats(self):
        query, store = make_abc_scenario()
        result = run_eires(query, store, random_stream(50, seed=2), strategy="BL1")
        assert result.cache_stats is None

"""Tests for the workload generators."""

import pytest

from repro.nfa.compiler import compile_query
from repro.workloads.base import PseudoRandomSet
from repro.workloads.bushfire import BushfireConfig, bushfire_workload
from repro.workloads.cluster import ClusterConfig, cluster_workload, _region_of
from repro.workloads.fraud import FraudConfig, fraud_workload
from repro.workloads.synthetic import (
    Q1_DEFAULTS,
    Q2_DEFAULTS,
    SyntheticConfig,
    q1_workload,
    q2_workload,
)


class TestPseudoRandomSet:
    def test_density_respected(self):
        members = PseudoRandomSet(seed=1, key=5, density=0.25)
        hits = sum(1 for item in range(10_000) if item in members)
        assert 0.22 < hits / 10_000 < 0.28

    def test_deterministic(self):
        a = PseudoRandomSet(1, 5, 0.5)
        b = PseudoRandomSet(1, 5, 0.5)
        assert [i in a for i in range(100)] == [i in b for i in range(100)]
        assert a == b

    def test_different_keys_differ(self):
        a = PseudoRandomSet(1, 5, 0.5)
        b = PseudoRandomSet(1, 6, 0.5)
        assert [i in a for i in range(100)] != [i in b for i in range(100)]

    def test_extreme_densities(self):
        assert all(i in PseudoRandomSet(1, 1, 1.0) for i in range(50))
        assert not any(i in PseudoRandomSet(1, 1, 0.0) for i in range(50))

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            PseudoRandomSet(1, 1, 1.5)


class TestSyntheticWorkload:
    def test_stream_shape(self):
        config = SyntheticConfig(n_events=500, seed=7)
        workload = q1_workload(config)
        assert len(workload.stream) == 500
        for event in workload.stream:
            assert event["type"] in "ABCD"
            assert 1 <= event["id"] <= config.id_domain
            assert 1 <= event["v1"] <= config.key_domain

    def test_queries_compile(self):
        for workload in (q1_workload(SyntheticConfig(n_events=0)),
                         q2_workload(SyntheticConfig(n_events=0))):
            automaton = compile_query(workload.query)
            assert automaton.sites, workload.name

    def test_q1_has_two_remote_states(self):
        automaton = compile_query(q1_workload(SyntheticConfig(n_events=0)).query)
        states_needing_remote = {site.transition.source.index for site in automaton.sites}
        assert len(states_needing_remote) == 2

    def test_q2_remote_per_branch(self):
        automaton = compile_query(q2_workload(SyntheticConfig(n_events=0)).query)
        assert len(automaton.final_states) == 2
        assert len(automaton.sites) == 2

    def test_default_configs_differ_per_query(self):
        assert Q1_DEFAULTS.id_domain != Q2_DEFAULTS.id_domain or (
            Q1_DEFAULTS.window_events != Q2_DEFAULTS.window_events
        )

    def test_cache_capacity_note_is_ten_percent_of_keyspace(self):
        workload = q1_workload(SyntheticConfig(n_events=0, key_domain=100_000))
        assert workload.notes["cache_capacity"] == 10_000

    def test_deterministic_stream(self):
        first = q1_workload(SyntheticConfig(n_events=100, seed=5)).stream
        second = q1_workload(SyntheticConfig(n_events=100, seed=5)).stream
        assert [e.attrs for e in first] == [e.attrs for e in second]

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_events=-1)
        with pytest.raises(ValueError):
            SyntheticConfig(remote_density=1.5)


class TestFraudWorkload:
    def test_hierarchy_present(self):
        workload = fraud_workload(FraudConfig(n_events=10))
        org = workload.store.lookup(("preauth", ("org", 0)))
        assert org.children  # users under the org
        assert org.children[0].children  # cards under the users
        assert org.total_size() > 0

    def test_event_mix(self):
        workload = fraud_workload(FraudConfig(n_events=2000))
        types = {event["type"] for event in workload.stream}
        assert types == {"T", "D", "L"}

    def test_query_uses_three_sources(self):
        workload = fraud_workload(FraudConfig(n_events=0))
        assert workload.query.remote_sources() == {"locations", "limits", "preauth"}


class TestBushfireWorkload:
    def test_hot_cells_produce_high_radiation(self):
        config = BushfireConfig(n_events=2000)
        workload = bushfire_workload(config)
        hot_cells = int(config.n_cells * config.hot_cell_fraction)
        hot = [e["rad"] for e in workload.stream if e["cell"] < hot_cells]
        cold = [e["rad"] for e in workload.stream if e["cell"] >= hot_cells]
        assert sum(hot) / len(hot) > sum(cold) / len(cold)

    def test_query_has_costly_predicates(self):
        workload = bushfire_workload(BushfireConfig(n_events=0))
        automaton = compile_query(workload.query)
        costs = [
            predicate.eval_cost
            for transition in automaton.transitions
            for predicate in transition.local_predicates
        ]
        assert max(costs) >= BushfireConfig().overlap_cost_us

    def test_ground_sensor_sources(self):
        workload = bushfire_workload(BushfireConfig(n_events=0))
        assert workload.query.remote_sources() == {"temp", "humidity"}


class TestClusterWorkload:
    def test_lifecycle_order_per_task(self):
        workload = cluster_workload(ClusterConfig(n_tasks=50))
        per_task: dict[int, list[str]] = {}
        for event in workload.stream:
            per_task.setdefault(event["task"], []).append(event["type"])
        for task, types in per_task.items():
            assert types[0] == "S", f"task {task} does not start with submit"

    def test_problematic_tasks_cross_regions(self):
        config = ClusterConfig(n_tasks=80)
        workload = cluster_workload(config)
        failing_tasks = {e["task"] for e in workload.stream if e["type"] == "F"}
        assert failing_tasks  # some candidates exist
        # At least one failing task visits machines in >= 2 regions.
        regions_by_task: dict[int, set[int]] = {}
        for event in workload.stream:
            if event["type"] == "C":
                regions_by_task.setdefault(event["task"], set()).add(
                    _region_of(event["machine"], config)
                )
        assert any(len(regions_by_task.get(task, set())) >= 3 for task in failing_tasks)

    def test_region_source_consistent_with_generator(self):
        config = ClusterConfig(n_tasks=1)
        workload = cluster_workload(config)
        for machine in range(20):
            assert workload.store.lookup(("region", machine)).value == _region_of(machine, config)

"""Edge-case and failure-injection tests across modules."""

from repro.core.config import EiresConfig
from repro.events.event import Event
from repro.events.stream import Stream
from repro.query.parser import parse_query
from repro.remote.store import RemoteStore
from repro.remote.transport import FixedLatency, UniformLatency

from tests.helpers import make_abc_scenario, random_stream, run_eires


class TestEmptyAndDegenerateStreams:
    def test_empty_stream(self):
        query, store = make_abc_scenario()
        result = run_eires(query, store, Stream([]))
        assert result.match_count == 0
        assert result.engine_stats["events_processed"] == 0
        assert result.throughput.events_per_second() == 0.0

    def test_stream_without_matching_types(self):
        query, store = make_abc_scenario()
        events = Stream([Event(float(i + 1), {"type": "Z", "id": 1, "v": 1}) for i in range(50)])
        result = run_eires(query, store, events)
        assert result.match_count == 0
        assert result.engine_stats["runs_created"] == 0

    def test_single_event_stream(self):
        query, store = make_abc_scenario()
        result = run_eires(query, store, Stream([Event(1.0, {"type": "A", "id": 1, "v": 1})]))
        assert result.match_count == 0
        assert result.engine_stats["runs_created"] == 1

    def test_simultaneous_timestamps(self):
        query, store = make_abc_scenario()
        events = Stream([
            Event(10.0, {"type": "A", "id": 1, "v": 1}),
            Event(10.0, {"type": "B", "id": 1, "v": 1}),
            Event(10.0, {"type": "C", "id": 1, "v": 1}),
        ])
        result = run_eires(query, store, events)
        assert result.match_count == 1


class TestMissingRemoteData:
    def test_lookup_of_unknown_key_behaves_as_empty_set(self):
        query = parse_query(
            "SEQ(A a, B b) WHERE SAME[id] AND b.v NOT IN REMOTE<ghost>[a.v] WITHIN 1000",
            name="t",
        )
        store = RemoteStore()  # source never registered
        events = Stream([
            Event(10.0, {"type": "A", "id": 1, "v": 1}),
            Event(20.0, {"type": "B", "id": 1, "v": 2}),
        ])
        result = run_eires(query, store, events)
        # NOT IN (empty) is vacuously true: the match goes through.
        assert result.match_count == 1

    def test_positive_membership_on_missing_data_fails(self):
        query = parse_query(
            "SEQ(A a, B b) WHERE SAME[id] AND b.v IN REMOTE<ghost>[a.v] WITHIN 1000",
            name="t",
        )
        store = RemoteStore()
        events = Stream([
            Event(10.0, {"type": "A", "id": 1, "v": 1}),
            Event(20.0, {"type": "B", "id": 1, "v": 2}),
        ])
        for strategy in ("BL1", "BL3", "Hybrid"):
            assert run_eires(query, store, events, strategy=strategy).match_count == 0


class TestExtremeLatencies:
    def test_zero_latency_remote(self):
        query, store = make_abc_scenario()
        stream = random_stream(100, seed=2)
        result = run_eires(query, store, stream, latency=FixedLatency(0.0))
        assert result.match_count > 0
        # With free fetches, even BL1 keeps up: match latencies stay tiny.
        bl1 = run_eires(query, store, stream, strategy="BL1", latency=FixedLatency(0.0))
        assert bl1.latency.median() < 5.0

    def test_enormous_latency_still_correct(self):
        query, store = make_abc_scenario()
        stream = random_stream(60, seed=3)
        slow = run_eires(query, store, stream, latency=FixedLatency(1e6))
        fast = run_eires(query, store, stream, latency=FixedLatency(1.0))
        assert slow.match_signatures() == fast.match_signatures()

    def test_latency_variance_does_not_change_matches(self):
        query, store = make_abc_scenario()
        stream = random_stream(150, seed=4)
        uniform = run_eires(query, store, stream, latency=UniformLatency(1.0, 5000.0))
        fixed = run_eires(query, store, stream, latency=FixedLatency(100.0))
        assert uniform.match_signatures() == fixed.match_signatures()


class TestNoiseInjectionBehaviour:
    def test_full_noise_degrades_pfetch_not_correctness(self):
        query, store = make_abc_scenario()
        stream = random_stream(300, seed=6, v_domain=50)
        clean = run_eires(query, store, stream, strategy="PFetch", noise_ratio=0.0,
                          latency=FixedLatency(100.0), cache_capacity=30)
        noisy = run_eires(query, store, stream, strategy="PFetch", noise_ratio=1.0,
                          latency=FixedLatency(100.0), cache_capacity=30)
        assert noisy.match_signatures() == clean.match_signatures()
        # Full noise sends every prefetch to a decoy key: stalls increase.
        assert noisy.strategy_stats["blocking_stalls"] >= clean.strategy_stats["blocking_stalls"]

    def test_decoy_fetches_hit_the_store_safely(self):
        # Decoy keys address non-existent elements; the store must serve
        # empty sentinels without polluting real entries' semantics.
        query, store = make_abc_scenario()
        stream = random_stream(200, seed=8)
        result = run_eires(query, store, stream, strategy="Hybrid", noise_ratio=0.7)
        assert result.match_count == run_eires(query, store, stream, strategy="BL2").match_count


class TestSmoothing:
    def test_pipeline_smoothing_window(self):
        query, store = make_abc_scenario()
        stream = random_stream(200, seed=5)
        from repro.remote.transport import FixedLatency as FL
        from repro.core.framework import EIRES as E

        eires = E(query, store, FL(50.0), strategy="BL2",
                  config=EiresConfig(cache_capacity=50))
        result = eires.run(stream, smoothing_window=8)
        assert result.match_count > 0
        # Smoothing narrows the spread between extreme percentiles.
        raw = run_eires(query, store, stream, strategy="BL2")
        raw_p = raw.latency_percentiles()
        smooth_p = result.latency_percentiles()
        assert smooth_p[95] - smooth_p[5] <= raw_p[95] - raw_p[5] + 1e-9


class TestPrefixFinalStates:
    def test_final_state_with_continuation(self):
        # One alternative is a prefix of the other: the shared state is both
        # final and extending.
        query = parse_query(
            "SEQ(A a, B b) OR SEQ(A a, B b, C c) WITHIN 1000", name="prefix"
        )
        store = RemoteStore()
        events = Stream([
            Event(10.0, {"type": "A"}),
            Event(20.0, {"type": "B"}),
            Event(30.0, {"type": "C"}),
        ])
        result = run_eires(query, store, events)
        signatures = result.match_signatures()
        assert (("a", 0), ("b", 1)) in signatures
        assert (("a", 0), ("b", 1), ("c", 2)) in signatures
        assert result.match_count == 2

"""Unit tests for the cache policies (§6)."""

import pytest

from repro.cache.cost_based import CostBasedCache
from repro.cache.history import HitHistory
from repro.cache.lru import LRUCache
from repro.remote.element import DataElement


def element(key, size=1, value="v"):
    return DataElement(("src", key), value, size=size)


class TestLRUCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_put_and_get(self):
        cache = LRUCache(4)
        cache.put(element(1), now=0.0)
        assert cache.get(("src", 1), now=1.0) is not None
        assert cache.stats.hits == 1

    def test_miss_counted(self):
        cache = LRUCache(4)
        assert cache.get(("src", 9), now=0.0) is None
        assert cache.stats.misses == 1

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put(element(1), 0.0)
        cache.put(element(2), 1.0)
        cache.get(("src", 1), 2.0)  # refresh 1
        cache.put(element(3), 3.0)  # evicts 2
        assert ("src", 1) in cache
        assert ("src", 2) not in cache
        assert ("src", 3) in cache
        assert cache.stats.evictions == 1

    def test_insert_refreshes_recency_of_existing(self):
        cache = LRUCache(2)
        cache.put(element(1), 0.0)
        cache.put(element(2), 1.0)
        cache.put(element(1), 2.0)  # re-insert: refresh, not duplicate
        cache.put(element(3), 3.0)
        assert ("src", 1) in cache
        assert ("src", 2) not in cache

    def test_size_aware_capacity(self):
        cache = LRUCache(10)
        cache.put(element(1, size=6), 0.0)
        cache.put(element(2, size=6), 1.0)  # cannot coexist with 1
        assert cache.used <= 10
        assert len(cache) == 1

    def test_oversized_element_rejected(self):
        cache = LRUCache(4)
        assert not cache.put(element(1, size=5), 0.0)
        assert cache.stats.rejected == 1

    def test_peek_does_not_count_stats(self):
        cache = LRUCache(4)
        cache.put(element(1), 0.0)
        cache.peek(("src", 1), 1.0)
        cache.peek(("src", 2), 1.0)
        assert cache.stats.lookups == 0

    def test_min_utility_is_zero_for_lru(self):
        assert LRUCache(4).min_utility() == 0.0


class TestHierarchicalLookup:
    def test_container_hit_serves_child(self):
        cache = LRUCache(10)
        container = DataElement(("src", "org"), "all", size=0)
        child = DataElement(("src", "card"), "one", size=1, parent=container)
        cache.put(container, 0.0)
        hit = cache.get(("src", "card"), 1.0)
        assert hit is container
        assert cache.stats.hits == 1

    def test_container_eviction_removes_child_index(self):
        cache = LRUCache(2)
        container = DataElement(("src", "org"), "all", size=1)
        DataElement(("src", "card"), "one", size=1, parent=container)
        cache.put(container, 0.0)
        cache.put(element("a"), 1.0)
        cache.put(element("b"), 2.0)  # evicts container
        assert cache.get(("src", "card"), 3.0) is None


class TestCostBasedCache:
    def test_evicts_lowest_utility_first(self):
        utilities = {("src", 1): 10.0, ("src", 2): 1.0, ("src", 3): 5.0}
        cache = CostBasedCache(2, utility_fn=lambda key: utilities.get(key, 0.0))
        cache.put(element(1), 0.0, certain=False)
        cache.put(element(2), 1.0, certain=False)
        cache.put(element(3), 2.0, certain=False)  # key 2 has lowest utility
        assert ("src", 2) not in cache
        assert ("src", 1) in cache and ("src", 3) in cache

    def test_speculative_tier_evicted_before_certain(self):
        cache = CostBasedCache(2, utility_fn=lambda key: 5.0)
        cache.put(element(1), 0.0, certain=True)  # T1
        cache.put(element(2), 1.0, certain=False)  # T2
        cache.put(element(3), 2.0, certain=True)  # must displace the T2 entry
        assert ("src", 1) in cache
        assert ("src", 2) not in cache

    def test_first_access_demotes_t1_to_t2(self):
        utilities = {("src", 1): 100.0, ("src", 2): 1.0}
        cache = CostBasedCache(2, utility_fn=lambda key: utilities.get(key, 50.0))
        cache.put(element(1), 0.0, certain=True)
        cache.get(("src", 1), 0.5)  # consume guaranteed use: demote to T2
        cache.put(element(2), 1.0, certain=True)
        # Next insertion must evict from T2 first, i.e. element 1 despite its
        # higher utility, because element 2 still sits in T1.
        cache.put(element(3), 2.0, certain=False)
        assert ("src", 2) in cache
        assert ("src", 1) not in cache

    def test_utility_per_size_ratio(self):
        utilities = {("src", "big"): 10.0, ("src", "small"): 4.0}
        cache = CostBasedCache(10, utility_fn=lambda key: utilities.get(key, 0.0))
        cache.put(element("big", size=8), 0.0, certain=False)  # ratio 1.25
        cache.put(element("small", size=2), 1.0, certain=False)  # ratio 2.0
        cache.put(element("new", size=4), 2.0, certain=False)  # must evict big
        assert ("src", "big") not in cache
        assert ("src", "small") in cache

    def test_min_utility_reflects_lowest_ratio(self):
        utilities = {("src", 1): 8.0, ("src", 2): 2.0}
        cache = CostBasedCache(4, utility_fn=lambda key: utilities.get(key, 0.0))
        cache.put(element(1), 0.0, certain=False)
        cache.put(element(2), 1.0, certain=False)
        assert cache.min_utility() == pytest.approx(2.0)

    def test_min_utility_empty_cache(self):
        cache = CostBasedCache(4, utility_fn=lambda key: 1.0)
        assert cache.min_utility() == 0.0

    def test_stale_heap_entries_are_skipped(self):
        utilities = {("src", 1): 1.0, ("src", 2): 2.0, ("src", 3): 3.0}
        cache = CostBasedCache(2, utility_fn=lambda key: utilities.get(key, 0.0))
        cache.put(element(1), 0.0, certain=False)
        cache.put(element(2), 1.0, certain=False)
        cache.put(element(3), 2.0, certain=False)  # evicts 1, leaves stale entries
        utilities[("src", 2)] = 0.5
        cache.put(element(4, size=1), 3.0, certain=False)  # must evict 2 now
        assert ("src", 2) not in cache
        assert ("src", 3) in cache

    def test_capacity_never_exceeded_under_churn(self):
        cache = CostBasedCache(5, utility_fn=lambda key: float(key[1] % 7))
        for i in range(100):
            cache.put(element(i, size=1 + i % 3), float(i), certain=i % 2 == 0)
            assert cache.used <= 5


class TestHitHistory:
    def test_optimistic_without_evidence(self):
        history = HitHistory()
        assert history.usable(0, 1, now=0.0)

    def test_miss_threshold_disables_trigger(self):
        history = HitHistory(miss_threshold=2)
        history.record_miss(0, 1, now=0.0)
        assert history.usable(0, 1, now=1.0)
        history.record_miss(0, 1, now=2.0)
        assert not history.usable(0, 1, now=3.0)

    def test_hit_forgives_misses(self):
        history = HitHistory(miss_threshold=2)
        history.record_miss(0, 1, now=0.0)
        history.record_hit(0, 1, now=1.0)
        history.record_miss(0, 1, now=2.0)
        assert history.usable(0, 1, now=3.0)

    def test_evidence_expires_after_reset_period(self):
        history = HitHistory(miss_threshold=1, reset_after=100.0)
        history.record_miss(0, 1, now=0.0)
        assert not history.usable(0, 1, now=50.0)
        assert history.usable(0, 1, now=200.0)

    def test_records_are_per_site_and_state(self):
        history = HitHistory(miss_threshold=1)
        history.record_miss(0, 1, now=0.0)
        assert not history.usable(0, 1, now=1.0)
        assert history.usable(0, 2, now=1.0)
        assert history.usable(1, 1, now=1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HitHistory(miss_threshold=0)
        with pytest.raises(ValueError):
            HitHistory(reset_after=0.0)

"""Behavioural latency tests: the EIRES effects the paper builds on.

These tests pin down *why* each strategy wins or loses — transmission
stalls, queueing behind a busy engine, prefetch hiding, postponement — on
small deterministic scenarios where the expected virtual-time behaviour can
be reasoned out by hand.
"""

import pytest

from repro.events.event import Event
from repro.events.stream import Stream
from repro.query.parser import parse_query
from repro.remote.store import RemoteStore
from repro.remote.transport import FixedLatency

from tests.helpers import make_abc_scenario, random_stream, run_eires

LATENCY = 500.0


def two_remote_query():
    """Two remote predicates at different states (the Q1 structure)."""
    query = parse_query(
        """
        SEQ(A a, B b, C c, D d)
        WHERE SAME[id] AND c.v IN REMOTE<r1>[a.v] AND d.v IN REMOTE<r2>[b.v]
        WITHIN 10000
        """,
        name="two-remote",
    )
    store = RemoteStore()
    store.register_source("r1", lambda key: frozenset(range(10)))
    store.register_source("r2", lambda key: frozenset(range(10)))
    return query, store


def chain_events(n_chains=1, id_start=1, gap=10.0, distinct_keys=False):
    events = []
    t = 0.0
    for chain in range(n_chains):
        identifier = id_start + chain
        value = chain if distinct_keys else 1
        for event_type in "ABCD":
            t += gap
            events.append(Event(t, {"type": event_type, "id": identifier, "v": value}))
    return Stream(events)


class TestBlockingCosts:
    def test_bl1_pays_transmission_latency_per_need(self):
        query, store = two_remote_query()
        result = run_eires(
            query, store, chain_events(), strategy="BL1", latency=FixedLatency(LATENCY)
        )
        assert result.match_count == 1
        # Two stalls: one when C arrives (r1), one when D arrives (r2); only
        # the second is between the last event and detection.
        assert result.strategy_stats["blocking_stalls"] == 2
        assert result.matches[0].latency >= LATENCY

    def test_bl1_repays_latency_for_repeated_needs(self):
        query, store = make_abc_scenario()
        stream = random_stream(120, seed=21)
        bl1 = run_eires(query, store, stream, strategy="BL1", latency=FixedLatency(LATENCY))
        bl2 = run_eires(query, store, stream, strategy="BL2", latency=FixedLatency(LATENCY))
        # The cache saves BL2 most re-fetches of hot keys.
        assert bl2.strategy_stats["blocking_stalls"] < bl1.strategy_stats["blocking_stalls"]
        assert bl2.latency.median() <= bl1.latency.median()

    def test_stall_blocks_subsequent_events_queueing(self):
        # One blocking fetch delays the *next* unrelated event's processing:
        # queueing delay is part of detection latency (§2.2).
        query = parse_query(
            "SEQ(A a, B b) WHERE SAME[id] AND b.v IN REMOTE[a.v] WITHIN 10000",
            name="q",
        )
        store = RemoteStore()
        store.register_source("v", lambda key: frozenset({1}))
        events = Stream(
            [
                Event(10.0, {"type": "A", "id": 1, "v": 1}),
                Event(20.0, {"type": "B", "id": 1, "v": 1}),  # stalls 500us
                Event(30.0, {"type": "A", "id": 2, "v": 1}),
                Event(40.0, {"type": "B", "id": 2, "v": 1}),  # queued behind stall
            ]
        )
        result = run_eires(query, store, events, strategy="BL1", latency=FixedLatency(LATENCY))
        assert result.match_count == 2
        latencies = sorted(match.latency for match in result.matches)
        # The second match waited out (most of) the first match's stall, then
        # paid its own fetch.
        assert latencies[1] >= 2 * LATENCY * 0.9


class TestDeferredFetching:
    def test_bl3_single_concurrent_stall_at_final_state(self):
        query, store = two_remote_query()
        result = run_eires(
            query, store, chain_events(), strategy="BL3", latency=FixedLatency(LATENCY)
        )
        assert result.match_count == 1
        # Both elements are fetched in one round at the final state: one
        # stall, with the match latency around one transmission latency
        # rather than two.
        assert result.strategy_stats["blocking_stalls"] == 1
        assert result.matches[0].latency == pytest.approx(LATENCY, rel=0.1)

    def test_bl3_creates_more_partial_matches(self):
        query, store = make_abc_scenario(set_members=frozenset())  # selective remote
        stream = random_stream(200, seed=13)
        bl2 = run_eires(query, store, stream, strategy="BL2")
        bl3 = run_eires(query, store, stream, strategy="BL3")
        assert bl3.engine_stats["peak_active_runs"] > bl2.engine_stats["peak_active_runs"]


class TestPrefetching:
    def test_pfetch_hides_latency_on_chain(self):
        query, store = two_remote_query()
        # Both remote keys (a.v, b.v) are bound well before their needs (at
        # C and D), and the inter-event gap exceeds the transmission latency:
        # lookahead prefetching can hide the full latency.  Distinct keys per
        # chain keep the cache from masking the effect.
        stream = chain_events(n_chains=30, distinct_keys=True)
        pfetch = run_eires(query, store, stream, strategy="PFetch", latency=FixedLatency(8.0))
        bl2 = run_eires(query, store, stream, strategy="BL2", latency=FixedLatency(8.0))
        assert pfetch.strategy_stats["prefetches_issued"] > 0
        assert pfetch.strategy_stats["blocking_stalls"] < bl2.strategy_stats["blocking_stalls"]
        assert pfetch.latency.median() < bl2.latency.median()

    def test_pfetch_blocks_on_misprediction(self):
        # Keys bound only by the current input event cannot be prefetched:
        # PFetch degenerates to BL2 on such sites.
        query = parse_query(
            "SEQ(A a, B b) WHERE SAME[id] AND a.v IN REMOTE[b.v] WITHIN 10000",
            name="q",
        )
        store = RemoteStore()
        store.register_source("v", lambda key: frozenset(range(10)))
        stream = random_stream(100, seed=31, types="AB")
        pfetch = run_eires(query, store, stream, strategy="PFetch", latency=FixedLatency(LATENCY))
        assert pfetch.strategy_stats["prefetches_issued"] == 0
        assert pfetch.strategy_stats["blocking_stalls"] > 0


class TestLazyEvaluation:
    def test_lzeval_avoids_stalls_mid_stream(self):
        query, store = two_remote_query()
        stream = chain_events(n_chains=30, distinct_keys=True)
        lazy = run_eires(query, store, stream, strategy="LzEval", latency=FixedLatency(30.0))
        bl2 = run_eires(query, store, stream, strategy="BL2", latency=FixedLatency(30.0))
        assert lazy.strategy_stats["lazy_postponements"] > 0
        assert lazy.strategy_stats["blocking_stalls"] < bl2.strategy_stats["blocking_stalls"]

    def test_lazy_gate_falls_back_to_blocking_when_hopeless(self):
        # A remote predicate on the *final* transition with an enormous
        # latency: postponement can hide at most the (tiny) time until the
        # final state, so the gate should often refuse and block instead.
        query = parse_query(
            "SEQ(A a, B b) WHERE SAME[id] AND b.v IN REMOTE[a.v] WITHIN 10000",
            name="q",
        )
        store = RemoteStore()
        store.register_source("v", lambda key: frozenset(range(10)))
        stream = random_stream(200, seed=17, types="AB")
        gated = run_eires(query, store, stream, strategy="LzEval", latency=FixedLatency(LATENCY))
        ungated = run_eires(
            query, store, stream, strategy="LzEval", latency=FixedLatency(LATENCY),
            lazy_gate_enabled=False,
        )
        assert gated.match_signatures() == ungated.match_signatures()
        assert ungated.strategy_stats["lazy_postponements"] >= gated.strategy_stats["lazy_postponements"]


class TestHybrid:
    @pytest.mark.parametrize("policy", ("greedy", "non_greedy"))
    def test_hybrid_never_worse_than_worst_baseline(self, policy):
        query, store = two_remote_query()
        stream = random_stream(300, seed=41, types="ABCD", id_domain=3)
        hybrid = run_eires(query, store, stream, strategy="Hybrid", policy=policy)
        bl1 = run_eires(query, store, stream, strategy="BL1", policy=policy)
        assert hybrid.latency.median() <= bl1.latency.median()

    def test_hybrid_combines_prefetch_and_postponement(self):
        query, store = two_remote_query()
        stream = random_stream(300, seed=43, types="ABCD", id_domain=3)
        hybrid = run_eires(query, store, stream, strategy="Hybrid")
        assert hybrid.strategy_stats["prefetches_issued"] > 0
        # Whatever the prefetcher missed was postponed, not blocked on.
        assert hybrid.strategy_stats["blocking_stalls"] <= hybrid.strategy_stats["lazy_postponements"] + 5

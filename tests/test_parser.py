"""Unit tests for the SASE-style query parser."""

import pytest

from repro.query.ast import EventAtom, OrPattern, SeqPattern, Window
from repro.query.errors import ParseError
from repro.query.parser import parse_pattern, parse_query
from repro.query.predicates import Comparison, Membership, SameAttribute


class TestPatternParsing:
    def test_single_atom(self):
        pattern = parse_pattern("A a")
        assert isinstance(pattern, EventAtom)
        assert pattern.event_type == "A"
        assert pattern.binding == "a"

    def test_flat_sequence(self):
        pattern = parse_pattern("SEQ(A a, B b, C c)")
        assert isinstance(pattern, SeqPattern)
        assert [atom.binding for atom in pattern.atoms()] == ["a", "b", "c"]

    def test_nested_or(self):
        pattern = parse_pattern("SEQ(A a, (SEQ(B b, C c) OR SEQ(D d, E e)))")
        sequences = pattern.binding_sequences()
        assert [[atom.binding for atom in seq] for seq in sequences] == [
            ["a", "b", "c"],
            ["a", "d", "e"],
        ]

    def test_single_element_seq_collapses(self):
        pattern = parse_pattern("SEQ(A a)")
        assert isinstance(pattern, EventAtom)

    def test_or_at_top_level(self):
        pattern = parse_pattern("(A a OR B b)")
        assert isinstance(pattern, OrPattern)

    def test_unbalanced_parenthesis(self):
        with pytest.raises(ParseError):
            parse_pattern("SEQ(A a, B b")


class TestConditionParsing:
    def test_same_attribute(self):
        query = parse_query("SEQ(A a, B b) WHERE SAME[id] WITHIN 10")
        assert any(isinstance(c, SameAttribute) and c.attr == "id" for c in query.conditions)

    def test_comparison_with_k_suffix(self):
        query = parse_query("SEQ(A a, B b) WHERE a.vol > 10k WITHIN 10")
        comparison = query.conditions[0]
        assert isinstance(comparison, Comparison)
        assert comparison.right.value == 10_000

    def test_m_suffix(self):
        query = parse_query("SEQ(A a, B b) WHERE a.vol < 2M WITHIN 10")
        assert query.conditions[0].right.value == 2_000_000

    def test_membership_not_in_remote(self):
        query = parse_query("SEQ(A a, B b) WHERE (b.loc NOT IN REMOTE[a.user]) WITHIN 10")
        membership = query.conditions[0]
        assert isinstance(membership, Membership)
        assert membership.negated
        refs = membership.remote_refs()
        assert len(refs) == 1
        assert refs[0].source == "user"  # default source = key attribute

    def test_explicit_remote_source(self):
        query = parse_query("SEQ(A a, B b) WHERE b.loc IN REMOTE<locations>[a.user] WITHIN 10")
        ref = query.conditions[0].remote_refs()[0]
        assert ref.source == "locations"
        assert ref.key_binding == "a"

    def test_remote_on_both_sides(self):
        query = parse_query(
            "SEQ(A a, B b) WHERE REMOTE<r>[a.m] <> REMOTE<r>[b.m] WITHIN 10"
        )
        assert len(query.conditions[0].remote_refs()) == 2

    def test_string_literal(self):
        query = parse_query("SEQ(A a, B b) WHERE a.name = 'alice' WITHIN 10")
        assert query.conditions[0].right.value == "alice"

    def test_condition_referencing_unknown_binding_rejected(self):
        with pytest.raises(Exception, match="unknown bindings"):
            parse_query("SEQ(A a, B b) WHERE z.v > 1 WITHIN 10")


class TestWindowParsing:
    def test_time_window_minutes(self):
        query = parse_query("SEQ(A a, B b) WITHIN 5min")
        assert query.window.kind == Window.TIME
        assert query.window.value == 5 * 60e6

    def test_time_window_milliseconds(self):
        query = parse_query("SEQ(A a, B b) WITHIN 25ms")
        assert query.window.value == 25_000.0

    def test_count_window_bare_number(self):
        query = parse_query("SEQ(A a, B b) WITHIN 50K")
        assert query.window.kind == Window.COUNT
        assert query.window.value == 50_000

    def test_count_window_events_unit(self):
        query = parse_query("SEQ(A a, B b) WITHIN 300 EVENTS")
        assert query.window.value == 300

    def test_default_window_when_absent(self):
        query = parse_query("SEQ(A a, B b)")
        assert query.window.kind == Window.COUNT

    def test_window_admits_time(self):
        window = Window.time(100.0)
        assert window.admits(0.0, 0, 100.0, 5)
        assert not window.admits(0.0, 0, 100.1, 5)

    def test_window_admits_count(self):
        window = Window.count(10)
        assert window.admits(0.0, 0, 999.0, 10)
        assert not window.admits(0.0, 0, 999.0, 11)


class TestListingQueries:
    def test_listing1_fraud_query_parses(self):
        query = parse_query(
            """
            SEQ(T t1, (SEQ(D d, T t2) OR SEQ(L l, T t3)))
            WHERE SAME[cc] AND t1.vol > 10k AND t2.vol > 10k
            AND t1.loc <> t2.loc AND (t2.loc NOT IN REMOTE[t1.user])
            AND l.limit > REMOTE[t1.org]
            AND t3.vol > 50k AND (t3.ben NOT IN REMOTE[t3.org])
            WITHIN 5min
            """,
            name="fraud",
        )
        assert query.bindings == ("t1", "d", "t2", "l", "t3")
        assert len(query.conditions) == 8

    def test_whitespace_and_case_insensitive_keywords(self):
        query = parse_query("seq(A a, B b) where a.v > 1 within 10ms")
        assert query.window.value == 10_000.0

    def test_error_position_reported(self):
        with pytest.raises(ParseError) as excinfo:
            parse_query("SEQ(A a, B b) WHERE ??? WITHIN 10")
        assert excinfo.value.position is not None

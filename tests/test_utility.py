"""Unit tests for the utility model, rate estimation, and noise (§4)."""

import pytest

from repro.nfa.compiler import compile_query
from repro.nfa.run import Run
from repro.query.parser import parse_query
from repro.remote.monitor import LatencyMonitor
from repro.remote.store import RemoteStore
from repro.utility.model import UtilityModel, required_keys
from repro.utility.noise import NoiseModel
from repro.utility.rates import RateEstimator
from repro.events.event import Event


def build_automaton():
    return compile_query(
        parse_query("SEQ(A a, B b, C c) WHERE c.v IN REMOTE<r>[a.v] WITHIN 100", name="t")
    )


def run_at(automaton, state_index, attrs, created_at=0.0):
    state = automaton.states[state_index]
    env = {}
    event = None
    for depth, binding in enumerate(state.path_bindings):
        event = Event(float(depth), dict(attrs, type="X"), seq=depth)
        env[binding] = event
    return Run(
        state=state,
        env=env,
        first_t=0.0,
        first_seq=0,
        last_seq=len(env) - 1,
        obligations=(),
        created_at=created_at,
    )


class TestRequiredKeys:
    def test_key_derivable_from_bound_event(self):
        automaton = build_automaton()
        run = run_at(automaton, 2, {"v": 7})  # at state (a, b): next needs r[a.v]
        assert required_keys(run) == (("r", 7),)

    def test_key_not_yet_bound(self):
        automaton = build_automaton()
        run = run_at(automaton, 1, {"v": 7})  # at state (a): site is 1 hop away
        assert required_keys(run) == ()

    def test_include_future_states_walks_deeper(self):
        automaton = build_automaton()
        run = run_at(automaton, 1, {"v": 7})
        assert required_keys(run, include_future_states=True) == (("r", 7),)

    def test_site_keyed_by_input_event_is_excluded(self):
        automaton = compile_query(
            parse_query("SEQ(A a, B b) WHERE a.v IN REMOTE<r>[b.v] WITHIN 10", name="t")
        )
        run = run_at(automaton, 1, {"v": 3})
        assert required_keys(run) == ()


class TestUtilityModel:
    def _model(self, automaton=None, noise=None):
        automaton = automaton or build_automaton()
        store = RemoteStore()
        monitor = LatencyMonitor(prior=10.0)
        return UtilityModel(automaton, store, monitor, horizon_events=100.0, noise=noise), store

    def test_urgent_utility_counts_live_runs(self):
        model, _ = self._model()
        automaton = build_automaton()
        run = run_at(automaton, 2, {"v": 7})
        model.on_run_created(run)
        assert model.urgent_utility(("r", 7)) == pytest.approx(10.0)  # 1 run x prior latency
        model.on_run_dropped(run)
        assert model.urgent_utility(("r", 7)) == 0.0

    def test_urgent_utility_propagates_to_containers(self):
        automaton = build_automaton()
        store = RemoteStore()
        parent = store.put("r", "all", "container", size=0)
        store.put("r", 7, "part", size=1, parent=parent)
        model = UtilityModel(automaton, store, LatencyMonitor(prior=10.0), horizon_events=10.0)
        run = run_at(automaton, 2, {"v": 7})
        model.on_run_created(run)
        assert model.urgent_utility(("r", "all")) > 0.0

    def test_future_utility_builds_from_class_statistics(self):
        model, _ = self._model()
        automaton = build_automaton()
        for i in range(10):
            model.on_run_created(run_at(automaton, 2, {"v": 7}))
            model.tick(float(i), {2: i + 1})
        assert model.future_utility(("r", 7)) > 0.0
        # A key never required by any run has no future utility.
        assert model.future_utility(("r", 999)) == 0.0

    def test_combined_value_weighting(self):
        model, _ = self._model()
        automaton = build_automaton()
        run = run_at(automaton, 2, {"v": 7})
        model.on_run_created(run)
        urgent_only = model.value(("r", 7), omega=1.0)
        future_only = model.value(("r", 7), omega=0.0)
        mixed = model.value(("r", 7), omega=0.5)
        assert urgent_only == pytest.approx(model.urgent_utility(("r", 7)))
        assert mixed == pytest.approx(0.5 * urgent_only + 0.5 * future_only)

    def test_omega_out_of_range(self):
        model, _ = self._model()
        with pytest.raises(ValueError):
            model.value(("r", 7), omega=1.5)

    def test_noise_zeroes_future_utility(self):
        noisy = NoiseModel(1.0)
        model, _ = self._model(noise=noisy)
        automaton = build_automaton()
        model.on_run_created(run_at(automaton, 2, {"v": 7}))
        model.tick(0.0, {2: 5})
        assert model.future_utility(("r", 7)) == 0.0

    def test_decay_forgets_old_counters(self):
        model, _ = self._model()
        automaton = build_automaton()
        model.on_run_created(run_at(automaton, 2, {"v": 7}))
        model.tick(0.0, {2: 5})
        before = model.future_utility(("r", 7))
        assert before > 0.0
        for i in range(1, 4096):
            model.tick(float(i), {2: 5})  # class still busy, key never needed
        after = model.future_utility(("r", 7))
        assert after < before


class TestRateEstimator:
    def test_event_rate_from_gaps(self):
        rates = RateEstimator()
        for i in range(200):
            rates.observe_event("A", i * 10.0)
        assert rates.event_rate() == pytest.approx(0.1, rel=0.05)

    def test_type_rate_splits_by_share(self):
        rates = RateEstimator()
        for i in range(300):
            rates.observe_event("A" if i % 3 else "B", i * 10.0)
        assert rates.type_rate("A") > rates.type_rate("B")

    def test_extension_rate_scaled_by_pass_fraction(self):
        rates = RateEstimator()
        for i in range(100):
            rates.observe_event("A", i * 10.0)
        for _ in range(80):
            rates.observe_guard(5, passed=False)
        for _ in range(20):
            rates.observe_guard(5, passed=True)
        assert rates.extension_rate(5, "A") == pytest.approx(0.2 * rates.type_rate("A"), rel=0.01)

    def test_unseen_transition_falls_back_to_type_rate(self):
        rates = RateEstimator()
        for i in range(10):
            rates.observe_event("A", i * 10.0)
        assert rates.extension_rate(99, "A") == pytest.approx(rates.type_rate("A"))

    def test_rates_never_zero(self):
        rates = RateEstimator()
        assert rates.event_rate() > 0
        assert rates.type_rate("Z") > 0
        assert rates.expected_gap(1, "Z") < float("inf")

    def test_invalid_decay_interval(self):
        with pytest.raises(ValueError):
            RateEstimator(decay_interval_events=0)


class TestNoiseModel:
    def test_inactive_at_zero_ratio(self):
        noise = NoiseModel(0.0)
        assert not noise.active
        assert not noise.flip(("x",), now=0.0)

    def test_always_corrupts_at_ratio_one(self):
        noise = NoiseModel(1.0)
        assert all(noise.flip(("t", i), now=0.0) for i in range(20))

    def test_ratio_roughly_respected(self):
        noise = NoiseModel(0.3)
        hits = sum(noise.flip(("t", i), now=0.0) for i in range(4000))
        assert 0.25 < hits / 4000 < 0.35

    def test_decisions_stable_within_epoch(self):
        noise = NoiseModel(0.5, epoch_length=100.0)
        first = noise.flip(("k",), now=10.0)
        assert noise.flip(("k",), now=50.0) == first

    def test_decisions_refresh_across_epochs(self):
        noise = NoiseModel(0.5, epoch_length=10.0)
        outcomes = {noise.flip(("k",), now=10.0 * i) for i in range(64)}
        assert outcomes == {True, False}

    def test_decoy_key_same_source_different_key(self):
        noise = NoiseModel(0.5)
        decoy = noise.decoy_key(("src", 5))
        assert decoy[0] == "src"
        assert decoy != ("src", 5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NoiseModel(1.5)
        with pytest.raises(ValueError):
            NoiseModel(0.5, epoch_length=0.0)

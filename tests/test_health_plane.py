"""Tests for the health plane: SLO burns, metric series, exporters, gates.

Covers the observability satellites end-to-end: SLO burn-rate math and its
consumption by the shedding detector, series sampling and its JSONL round
trip, exporter edge cases (empty traces, span records in Chrome traces,
window-boundary histogram snapshots), the trace validator's conditional
requirements, the health-report renderer, and the bench-diff regression
gate.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.harness import run_strategy
from repro.core.config import EiresConfig
from repro.core.framework import EIRES
from repro.metrics.reporting import format_health_report
from repro.obs.export import chrome_trace, folded_spans, write_chrome_trace, write_folded
from repro.obs.provenance import replay_trace
from repro.obs.registry import MetricsRegistry
from repro.obs.series import SeriesSampler, load_series_jsonl, write_series_jsonl
from repro.obs.slo import SLO_GAUGE_KEYS, SloPlane, SloSpec
from repro.obs.spans import SPAN_COMPONENTS, SPAN_RECORD_NAME, aggregate_spans
from repro.obs.trace import CAT_SPAN, MemorySink, Tracer
from repro.obs.validate import validate_chrome_trace
from repro.workloads.bursty import BurstyConfig, bursty_workload
from repro.workloads.synthetic import SyntheticConfig, q1_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import bench_diff  # noqa: E402


def q1():
    return q1_workload(SyntheticConfig(n_events=1500, id_domain=20, window_events=400))


def span_record(**overrides):
    record = {name: 0.0 for name in SPAN_COMPONENTS}
    record.update(
        {"seq": 0, "t": 100.0, "cat": CAT_SPAN, "name": SPAN_RECORD_NAME,
         "track": "Hybrid", "wire": 30.0, "eval": 12.0,
         "latency": 42.0, "dur": 42.0}
    )
    record.update(overrides)
    return record


class TestSloBurns:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SloSpec(latency_bound=0.0)
        with pytest.raises(ValueError):
            SloSpec(recall_floor=1.5)
        with pytest.raises(ValueError):
            SloSpec(fetch_budget=-1.0)
        assert SloSpec().empty
        assert not SloSpec(latency_bound=100.0).empty

    def test_latency_burn_is_windowed_p95_over_bound(self):
        plane = SloPlane(SloSpec(latency_bound=100.0), MetricsRegistry())
        for latency in (50.0, 60.0, 70.0, 80.0, 400.0):
            plane.observe_match(latency, now=10.0)
        burns = plane.burns(now=20.0)
        # Interpolated p95 of the window is 336us against a 100us bound.
        assert burns["latency_burn"] == pytest.approx(3.36)
        assert burns["worst_burn"] == pytest.approx(3.36)

    def test_recall_burn_scales_loss_against_floor(self):
        plane = SloPlane(SloSpec(recall_floor=0.9), MetricsRegistry())
        for i in range(100):
            plane.observe_event(now=float(i))
        plane.bind_sources(events_shed=lambda: 5)
        # 5% loss against a 10% allowance: half the budget burned.
        assert plane.burns(now=100.0)["recall_burn"] == pytest.approx(0.5)

    def test_zero_loss_allowance_caps_burn(self):
        plane = SloPlane(SloSpec(recall_floor=1.0), MetricsRegistry())
        plane.observe_event(now=0.0)
        plane.bind_sources(events_shed=lambda: 1)
        assert plane.burns(now=10.0)["recall_burn"] == pytest.approx(1e9)

    def test_fetch_burn_is_wire_rate_over_budget(self):
        plane = SloPlane(SloSpec(fetch_budget=1_000.0), MetricsRegistry())
        plane.observe_event(now=0.0)
        plane.bind_sources(wire_requests=lambda: 2_000)
        # 2000 requests over 1 virtual second = 2000 rps vs a 1000 budget.
        assert plane.burns(now=1e6)["fetch_burn"] == pytest.approx(2.0)

    def test_evaluate_lands_on_registered_gauges_and_counters(self):
        registry = MetricsRegistry()
        plane = SloPlane(SloSpec(latency_bound=10.0), registry)
        plane.observe_match(50.0, now=1.0)
        plane.evaluate(now=2.0)
        snapshot = registry.snapshot()
        assert snapshot["slo.latency_burn"] == pytest.approx(5.0)
        assert snapshot["slo.worst_burn"] == pytest.approx(5.0)
        assert snapshot["slo.evaluations"] == 1
        assert snapshot["slo.breaches"] == 1
        for key in SLO_GAUGE_KEYS:
            assert f"slo.{key}" in snapshot

    def test_worst_burn_caches_between_refresh_intervals(self):
        plane = SloPlane(
            SloSpec(latency_bound=100.0), MetricsRegistry(), refresh_interval=1_000.0
        )
        plane.observe_match(200.0, now=0.0)
        assert plane.worst_burn(now=0.0) == pytest.approx(2.0)
        plane.observe_match(800.0, now=1.0)
        # Inside the refresh interval the cached value still answers.
        assert plane.worst_burn(now=500.0) == pytest.approx(2.0)
        assert plane.worst_burn(now=1_000.0) > 2.0

    def test_status_reports_each_declared_objective(self):
        plane = SloPlane(
            SloSpec(latency_bound=100.0, fetch_budget=500.0), MetricsRegistry()
        )
        plane.observe_match(50.0, now=1.0)
        status = plane.status(now=10.0)
        assert set(status["objectives"]) == {"latency_burn", "fetch_burn"}
        assert status["objectives"]["latency_burn"]["ok"]
        assert status["objectives"]["latency_burn"]["target"] == 100.0


class TestSloInRun:
    def _slo_run(self, **config_fields):
        config = EiresConfig(**config_fields)
        workload = bursty_workload(BurstyConfig(n_events=2_000))
        sink = MemorySink()
        eires = EIRES(
            workload.query, workload.store, workload.latency_model,
            strategy="Hybrid", config=config, tracer=Tracer(sink, track="Hybrid"),
        )
        result = eires.run(workload.stream)
        return eires, result, sink

    def test_slo_plane_gauges_land_in_metrics_snapshot(self):
        eires, result, _ = self._slo_run(slo_latency_bound=150.0)
        assert eires.runtime.slo is not None
        assert result.metrics["slo.evaluations"] > 0
        assert result.metrics["slo.worst_burn"] > 1.0  # overloaded scenario

    def test_slo_plane_alone_changes_no_results(self):
        _, plain, _ = self._slo_run()
        _, with_slo, _ = self._slo_run(slo_latency_bound=150.0)
        assert with_slo.match_signatures() == plain.match_signatures()
        plain_row = {k: v for k, v in plain.summary().items() if not k.startswith("slo.")}
        slo_row = {k: v for k, v in with_slo.summary().items() if not k.startswith("slo.")}
        assert slo_row == plain_row

    def test_detector_sheds_on_slo_burn_alone(self):
        eires, result, sink = self._slo_run(
            shed_policy="events", slo_latency_bound=150.0, slo_in_detector=True
        )
        shed = [r for r in sink.records if r["cat"] == "shed"]
        assert shed, "SLO burn alone must trip the detector"
        assert all(r["latency_bound"] is None and r["run_budget"] is None for r in shed)
        assert all(r["slo_burn"] > 1.0 for r in shed)
        replay = replay_trace(sink.records)
        assert replay["checked_shed"] == len(shed)
        assert replay["problems"] == []

    def test_shed_records_without_slo_detector_carry_no_burn(self):
        _, _, sink = self._slo_run(shed_policy="events", latency_bound=150.0)
        shed = [r for r in sink.records if r["cat"] == "shed"]
        assert shed
        assert all("slo_burn" not in r for r in shed)

    def test_slo_in_detector_requires_an_objective(self):
        with pytest.raises(ValueError):
            EiresConfig(slo_in_detector=True)

    def test_shed_policy_requires_some_trigger(self):
        with pytest.raises(ValueError):
            EiresConfig(shed_policy="events")


class TestSeriesSampler:
    def test_samples_align_to_cadence_grid(self):
        registry = MetricsRegistry()
        counter = registry.counter("x.n")
        sampler = SeriesSampler(registry, interval=100.0)
        assert not sampler.due(50.0)
        counter.inc()
        assert sampler.due(130.0) and sampler.maybe_sample(130.0)
        # A long stall skips boundaries: one sample for the last crossed.
        counter.inc()
        assert sampler.maybe_sample(450.0)
        assert not sampler.maybe_sample(460.0)
        sampler.finalize(470.0)
        rows = sampler.rows()
        assert [row["t"] for row in rows] == [100.0, 400.0, 470.0]
        assert [row["at"] for row in rows] == [130.0, 450.0, 470.0]
        assert [row["final"] for row in rows] == [False, False, True]
        assert [row["metrics"]["x.n"] for row in rows] == [1, 2, 2]

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            SeriesSampler(MetricsRegistry(), interval=0.0)

    def test_window_boundary_histogram_snapshot(self):
        """A sample taken right after window eviction sees only live data."""
        registry = MetricsRegistry()
        hist = registry.histogram("lat.us", window=100.0)
        sampler = SeriesSampler(registry, interval=50.0)
        hist.observe(10.0, t=0.0)
        sampler.maybe_sample(50.0)
        hist.observe(500.0, t=150.0)  # evicts the t=0 sample
        sampler.maybe_sample(150.0)
        first, second = sampler.rows()
        assert first["metrics"]["lat.us"]["p50"] == 10.0
        assert second["metrics"]["lat.us"]["p50"] == 500.0
        assert second["metrics"]["lat.us"]["windowed_count"] == 1
        assert second["metrics"]["lat.us"]["count"] == 2  # totals keep history

    def test_jsonl_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a.b").inc(3)
        registry.histogram("c.d").observe(1.5, t=10.0)
        sampler = SeriesSampler(registry, interval=10.0)
        sampler.maybe_sample(10.0)
        sampler.finalize(25.0)
        path = str(tmp_path / "series.jsonl")
        assert write_series_jsonl(sampler.rows(), path) == 2
        assert load_series_jsonl(path) == sampler.rows()

    def test_run_series_is_deterministic(self):
        config = EiresConfig(series_interval=500.0)
        first = run_strategy(q1(), "Hybrid", config)
        second = run_strategy(q1(), "Hybrid", config)
        assert first.series is not None and len(first.series) > 1
        assert first.series == second.series
        assert "series" not in first.summary()


class TestExporterEdgeCases:
    def test_empty_trace_exports(self, tmp_path):
        assert chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ns"}
        assert folded_spans([]) == []
        assert aggregate_spans([]) == {
            "matches": 0,
            "latency_total": 0.0,
            "components": {
                name: {"total": 0.0, "mean": 0.0, "share": 0.0}
                for name in SPAN_COMPONENTS
            },
        }
        path = str(tmp_path / "empty.folded")
        assert write_folded([], path) == 0
        assert Path(path).read_text() == ""

    def test_chrome_export_of_span_records(self):
        trace = chrome_trace([span_record()])
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1
        event = spans[0]
        assert event["name"] == f"{CAT_SPAN}.{SPAN_RECORD_NAME}"
        assert event["dur"] == 42.0
        for component in SPAN_COMPONENTS:
            assert component in event["args"]

    def test_folded_spans_accumulate_by_track_and_component(self):
        records = [
            span_record(),
            span_record(seq=1, wire=10.0, eval=5.0, latency=15.0, dur=15.0),
            span_record(seq=2, track="BL1", wire=7.0, eval=0.0, latency=7.0, dur=7.0),
        ]
        assert folded_spans(records) == [
            "BL1;match;wire 7",
            "Hybrid;match;eval 17",
            "Hybrid;match;wire 40",
        ]

    def test_folded_spans_prefer_query_over_track(self):
        lines = folded_spans([span_record(query="q9")])
        assert all(line.startswith("q9;") for line in lines)


class TestValidateRequirements:
    def _write_trace(self, tmp_path, records):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(records, path)
        return path

    def _full_trace_records(self):
        # The bursty workload actually overloads the detector, so the trace
        # carries shedding decisions next to the batching lifecycle.
        sink = MemorySink()
        run_strategy(
            bursty_workload(BurstyConfig(n_events=2_000)), "Hybrid",
            EiresConfig(batch_window=60.0, batch_max_keys=8,
                        shed_policy="events", latency_bound=200.0),
            tracer=Tracer(sink, track="Hybrid"),
        )
        return sink.records

    def test_batching_and_shedding_requirements_pass_on_enabled_run(self, tmp_path):
        path = self._write_trace(tmp_path, self._full_trace_records())
        counts = validate_chrome_trace(
            path,
            require_names=("fetch.enqueue", "fetch.batch_issue", "shed.shed_decision"),
        )
        assert counts["span"] > 0

    def test_missing_required_names_fail(self, tmp_path):
        sink = MemorySink()
        run_strategy(q1(), "Hybrid", EiresConfig(), tracer=Tracer(sink, track="Hybrid"))
        path = self._write_trace(tmp_path, sink.records)
        with pytest.raises(ValueError, match="fetch.batch_issue"):
            validate_chrome_trace(path, require_names=("fetch.batch_issue",))

    def test_cli_flags(self, tmp_path):
        from repro.obs import validate

        path = self._write_trace(tmp_path, self._full_trace_records())
        assert validate.main([path, "--require-batching", "--require-shedding"]) == 0
        assert validate.main([str(tmp_path / "missing.json")]) == 1


class TestHealthReport:
    def test_report_renders_all_sections(self):
        sink = MemorySink()
        result = run_strategy(q1(), "Hybrid", EiresConfig(),
                              tracer=Tracer(sink, track="Hybrid"))
        text = format_health_report(
            "q1 health",
            result.summary(),
            aggregate_spans(sink.records),
            slo_status={"objectives": {"latency_burn": {
                "target": 100.0, "burn": 0.5, "ok": True}}, "worst_burn": 0.5},
            replay=replay_trace(sink.records),
            series_samples=7,
        )
        assert "Latency attribution" in text
        assert "SLO status" in text
        assert "Series: 7 samples" in text
        assert "0 inconsistencies" in text
        assert "p50=" in text and "p99=" in text

    def test_report_degrades_without_matches_or_slo(self):
        text = format_health_report("empty", {"matches": 0}, aggregate_spans([]))
        assert "no matches" in text
        assert "SLO" not in text


class TestBenchDiff:
    BASE = {"name": "BENCH_x", "rows": [
        {"strategy": "Hybrid", "policy": "none", "latency_bound": None,
         "matches": 100, "p50": 10.0, "p95": 25.0},
        {"strategy": "Hybrid", "policy": "events", "latency_bound": 200.0,
         "matches": 90, "p50": 8.0, "p95": 18.0},
    ]}

    def _write(self, tmp_path, name, data):
        directory = tmp_path / name
        directory.mkdir(exist_ok=True)
        (directory / "BENCH_x.json").write_text(json.dumps(data))
        return str(directory)

    def test_identical_results_pass(self, tmp_path):
        base = self._write(tmp_path, "base", self.BASE)
        fresh = self._write(tmp_path, "fresh", self.BASE)
        assert bench_diff.main([base, fresh]) == 0

    def test_regression_beyond_tolerance_fails(self, tmp_path):
        regressed = json.loads(json.dumps(self.BASE))
        regressed["rows"][0]["p95"] = 250.0
        base = self._write(tmp_path, "base", self.BASE)
        fresh = self._write(tmp_path, "fresh", regressed)
        assert bench_diff.main([base, fresh]) == 1
        assert bench_diff.main([base, fresh, "--rel-tol", "100"]) == 0

    def test_missing_row_field_and_identity_drift_fail(self, tmp_path):
        problems = bench_diff.compare_rows(self.BASE["rows"], [], 0.0, 0.0)
        assert problems
        mutated = json.loads(json.dumps(self.BASE["rows"]))
        del mutated[0]["p95"]
        mutated[1]["policy"] = "runs"
        problems = bench_diff.compare_rows(self.BASE["rows"], mutated, 0.0, 0.0)
        assert any("missing" in p for p in problems)
        assert any("policy" in p for p in problems)

    def test_none_bound_must_reproduce_exactly(self, tmp_path):
        mutated = json.loads(json.dumps(self.BASE["rows"]))
        mutated[0]["latency_bound"] = 5.0
        problems = bench_diff.compare_rows(self.BASE["rows"], mutated, 1.0, 1.0)
        assert any("latency_bound" in p for p in problems)

    def test_missing_fresh_file_fails(self, tmp_path):
        base = self._write(tmp_path, "base", self.BASE)
        empty = tmp_path / "fresh"
        empty.mkdir()
        assert bench_diff.main([base, str(empty)]) == 1

    def test_committed_baselines_match_a_fresh_smoke_run(self, tmp_path):
        """The CI gate contract: a fresh smoke run reproduces the committed
        baselines (run the cheaper batching bench only)."""
        env_dir = tmp_path / "fresh"
        env_dir.mkdir()
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "benchmarks" / "bench_batching.py"),
             "--smoke"],
            env={"REPRO_RESULTS_DIR": str(env_dir),
                 "PYTHONPATH": str(REPO_ROOT / "src")},
            capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        problems = bench_diff.diff_files(
            str(REPO_ROOT / "results" / "baselines" / "BENCH_batching.json"),
            str(env_dir / "BENCH_batching.json"),
            bench_diff.DEFAULT_REL_TOL, bench_diff.DEFAULT_ABS_TOL,
        )
        assert problems == []

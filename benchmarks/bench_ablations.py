"""Ablations of EIRES design choices (beyond the paper's own figures).

DESIGN.md calls out three mechanisms whose value the paper argues
qualitatively; these benches quantify each by disabling it:

* **lookahead prefetch timing** — PFetch with only estimated-arrival offset
  timing (``lookahead_enabled=False``);
* **the LzEval benefit gate** — LzEval postponing unconditionally
  (``lazy_gate_enabled=False``);
* **cost-based vs LRU cache under Hybrid** — the §7.2 observation that the
  cost model pays off precisely when combined with PFetch/LzEval.
"""

from __future__ import annotations

from repro import CACHE_COST, CACHE_LRU, EiresConfig, GREEDY
from repro.bench.harness import ExperimentResult, run_strategy
from repro.workloads.synthetic import SyntheticConfig, q1_workload

BASE = SyntheticConfig(n_events=3_000, id_domain=20, window_events=400)


def _config(**kwargs) -> EiresConfig:
    return EiresConfig(
        policy=GREEDY,
        cache_policy=kwargs.pop("cache_policy", CACHE_COST),
        # Scaled-down capacity so eviction pressure exists (see bench_fig5).
        cache_capacity=kwargs.pop("cache_capacity", 64),
        **kwargs,
    )


def ablate_lookahead() -> list[dict]:
    workload = q1_workload(BASE)
    rows = []
    for label, enabled in (("lookahead+offset", True), ("offset-only", False)):
        row = run_strategy(workload, "PFetch", _config(lookahead_enabled=enabled)).summary()
        row["variant"] = label
        rows.append(row)
    return rows


def ablate_lazy_gate() -> list[dict]:
    workload = q1_workload(BASE)
    rows = []
    for label, enabled in (("gated", True), ("always-lazy", False)):
        row = run_strategy(workload, "LzEval", _config(lazy_gate_enabled=enabled)).summary()
        row["variant"] = label
        rows.append(row)
    return rows


def ablate_cache_policy() -> list[dict]:
    workload = q1_workload(BASE)
    rows = []
    for label, policy in (("cost-cache", CACHE_COST), ("lru-cache", CACHE_LRU)):
        row = run_strategy(workload, "Hybrid", _config(cache_policy=policy)).summary()
        row["variant"] = label
        rows.append(row)
    return rows


def test_ablation_lookahead_timing(benchmark, report):
    rows = benchmark.pedantic(ablate_lookahead, rounds=1, iterations=1)
    report.add(
        ExperimentResult("ablation_prefetch_timing", rows),
        comparison_metric=None,
        columns=("variant", "matches", "p50", "p95", "fetch.blocking_stalls", "fetch.prefetches_issued"),
    )
    by = {row["variant"]: row for row in rows}
    assert by["lookahead+offset"]["matches"] == by["offset-only"]["matches"]
    # Lookahead timing should not lose to blind offset timing.
    assert by["lookahead+offset"]["p50"] <= by["offset-only"]["p50"] * 1.1


def test_ablation_lazy_gate(benchmark, report):
    rows = benchmark.pedantic(ablate_lazy_gate, rounds=1, iterations=1)
    report.add(
        ExperimentResult("ablation_lazy_gate", rows),
        comparison_metric=None,
        columns=("variant", "matches", "p50", "p95", "fetch.lazy_postponements", "fetch.forced_blocks"),
    )
    by = {row["variant"]: row for row in rows}
    assert by["gated"]["matches"] == by["always-lazy"]["matches"]
    # Ungated postponement creates at least as many postponements.
    assert (
        by["always-lazy"]["fetch.lazy_postponements"]
        >= by["gated"]["fetch.lazy_postponements"]
    )


def test_ablation_cache_policy_under_hybrid(benchmark, report):
    rows = benchmark.pedantic(ablate_cache_policy, rounds=1, iterations=1)
    report.add(
        ExperimentResult("ablation_cache_policy", rows),
        comparison_metric=None,
        columns=("variant", "matches", "p50", "p95", "cache.hit_rate", "cache.evictions"),
    )
    by = {row["variant"]: row for row in rows}
    assert by["cost-cache"]["matches"] == by["lru-cache"]["matches"]
    # Reproduction note (EXPERIMENTS.md): the paper reports the cost-based
    # policy ahead of LRU when combined with PFetch/LzEval.  At our scaled
    # stream lengths recency is a near-oracle for these access patterns
    # (bursty per-family reuse with strict window expiry), so the cost cache
    # only *matches* LRU where utilities genuinely discriminate and can
    # trail it elsewhere; we assert it stays within an order of magnitude
    # rather than ahead.
    assert by["cost-cache"]["p50"] <= by["lru-cache"]["p50"] * 10

"""Figure 8: sensitivity analysis (Q1, cost-based cache, greedy selection).

Three sweeps over PFetch / LzEval / Hybrid:

* **(a) utility-estimation noise** 10%–90% — PFetch is the most sensitive
  (it both prefetches the wrong elements and evicts the wrong ones); LzEval's
  fetch decisions stay accurate, so its low percentiles barely move.
* **(b) cache size** (scaled to the stream's working set) — a larger cache
  forgives wrong prefetches, so PFetch gains the most from capacity.
* **(c) transmission latency** 1–10 up to 1k–10k us — everyone degrades as
  fetches get slower; PFetch degrades fastest because prefetching must
  happen earlier and earlier, on staler predictions.
"""

from __future__ import annotations

from repro import CACHE_COST, EiresConfig, GREEDY
from repro.bench.harness import ExperimentResult, run_strategy
from repro.workloads.synthetic import SyntheticConfig, q1_workload

EIRES_STRATEGIES = ("PFetch", "LzEval", "Hybrid")
# Smaller stream than Fig. 5: each sweep point replays the workload three
# times and greedy selection is expensive.
BASE = SyntheticConfig(n_events=3_000, id_domain=20, window_events=400)

NOISE_RATIOS = (0.1, 0.3, 0.5, 0.7, 0.9)
# The paper sweeps 1k-5k entries against a key range its runs saturate; our
# scaled stream touches ~1.5k keys, so the equivalent pressure range is a
# few hundred entries (the top of the sweep is comfortably unconstrained,
# matching the paper's 5k point).
CACHE_SIZES = (100, 200, 400, 800, 1_600)
LATENCY_RANGES = ((1.0, 10.0), (10.0, 100.0), (100.0, 1_000.0), (1_000.0, 10_000.0))


def _config(cache_capacity: int = 800, noise: float = 0.0) -> EiresConfig:
    return EiresConfig(
        policy=GREEDY,
        cache_policy=CACHE_COST,
        cache_capacity=cache_capacity,
        noise_ratio=noise,
    )


def sweep_noise() -> list[dict]:
    rows = []
    workload = q1_workload(BASE)
    for ratio in NOISE_RATIOS:
        for strategy in EIRES_STRATEGIES:
            row = run_strategy(workload, strategy, _config(noise=ratio)).summary()
            row["noise"] = ratio
            rows.append(row)
    return rows


def sweep_cache_size() -> list[dict]:
    rows = []
    workload = q1_workload(BASE)
    for capacity in CACHE_SIZES:
        for strategy in EIRES_STRATEGIES:
            row = run_strategy(workload, strategy, _config(cache_capacity=capacity)).summary()
            row["cache_size"] = capacity
            rows.append(row)
    return rows


def sweep_transmission_latency() -> list[dict]:
    rows = []
    for low, high in LATENCY_RANGES:
        config = SyntheticConfig(
            n_events=BASE.n_events,
            id_domain=BASE.id_domain,
            window_events=BASE.window_events,
            latency_low_us=low,
            latency_high_us=high,
        )
        workload = q1_workload(config)
        for strategy in EIRES_STRATEGIES:
            row = run_strategy(workload, strategy, _config()).summary()
            row["latency_range"] = f"{low:g}-{high:g}"
            rows.append(row)
    return rows


def test_fig8a_noise(benchmark, report):
    rows = benchmark.pedantic(sweep_noise, rounds=1, iterations=1)
    report.add(
        ExperimentResult("fig8a_noise_sensitivity", rows),
        comparison_metric=None,
        columns=("noise", "strategy", "matches", "p25", "p50", "p75", "p95"),
    )
    by = {(row["noise"], row["strategy"]): row for row in rows}
    # Match sets are invariant to noise.
    assert len({row["matches"] for row in rows}) == 1
    # PFetch degrades with noise: the worst noise level clearly exceeds the best.
    pfetch_p50 = [by[(r, "PFetch")]["p50"] for r in NOISE_RATIOS]
    assert max(pfetch_p50) > min(pfetch_p50)
    # LzEval's median is less noise-sensitive than PFetch's (paper Fig. 8a).
    lz_spread = max(by[(r, "LzEval")]["p50"] for r in NOISE_RATIOS) - min(
        by[(r, "LzEval")]["p50"] for r in NOISE_RATIOS
    )
    pf_spread = max(pfetch_p50) - min(pfetch_p50)
    assert lz_spread <= pf_spread * 1.5


def test_fig8b_cache_size(benchmark, report):
    rows = benchmark.pedantic(sweep_cache_size, rounds=1, iterations=1)
    report.add(
        ExperimentResult("fig8b_cache_size_sensitivity", rows),
        comparison_metric=None,
        columns=("cache_size", "strategy", "matches", "p25", "p50", "p75", "p95"),
    )
    by = {(row["cache_size"], row["strategy"]): row for row in rows}
    for strategy in EIRES_STRATEGIES:
        small = by[(CACHE_SIZES[0], strategy)]["p50"]
        large = by[(CACHE_SIZES[-1], strategy)]["p50"]
        assert large <= small * 1.25, f"{strategy}: larger cache should not hurt"


def test_fig8c_transmission_latency(benchmark, report):
    rows = benchmark.pedantic(sweep_transmission_latency, rounds=1, iterations=1)
    report.add(
        ExperimentResult("fig8c_latency_sensitivity", rows),
        comparison_metric=None,
        columns=("latency_range", "strategy", "matches", "p25", "p50", "p75", "p95"),
    )
    by = {(row["latency_range"], row["strategy"]): row for row in rows}
    for strategy in EIRES_STRATEGIES:
        fastest = by[("1-10", strategy)]["p95"]
        slowest = by[("1000-10000", strategy)]["p95"]
        assert slowest > fastest, f"{strategy}: latency sweep must show degradation"

"""Extension bench: EIRES on the tree-based execution model (§9 future work).

The paper expects its automata-based results to carry over to tree-based
(ZStream-style) execution; this bench runs the Fig. 5-style strategy
comparison on the buffered-join backend for a linear four-step sequence and
asserts the same ordering: Hybrid/PFetch/LzEval ahead of every baseline,
with matches identical across strategies and identical to the automaton
backend.
"""

from __future__ import annotations

from repro import (
    CACHE_COST,
    EIRES,
    EiresConfig,
    parse_query,
    RemoteStore,
    UniformLatency,
)
from repro.bench.harness import ALL_STRATEGIES, ExperimentResult
from repro.workloads.base import PseudoRandomSet
from repro.workloads.synthetic import SyntheticConfig, make_stream


def build_workload():
    query = parse_query(
        """
        SEQ(A a, B b, C c, D d)
        WHERE SAME[id] AND c.v1 IN REMOTE<t1>[a.v1] AND d.v1 IN REMOTE<t2>[b.v1]
        WITHIN 300 EVENTS
        """,
        name="tree-q",
    )
    store = RemoteStore()
    store.register_source("t1", lambda key: PseudoRandomSet(7, key, 0.35))
    store.register_source("t2", lambda key: PseudoRandomSet(8, key, 0.35))
    stream = make_stream(SyntheticConfig(n_events=5_000, id_domain=20))
    return query, store, stream


def run_comparison() -> list[dict]:
    query, store, stream = build_workload()
    rows = []
    for backend in ("automaton", "tree"):
        for strategy in ALL_STRATEGIES:
            eires = EIRES(
                query, store, UniformLatency(10.0, 100.0), strategy=strategy,
                config=EiresConfig(cache_policy=CACHE_COST, cache_capacity=200),
                backend=backend,
            )
            result = eires.run(stream)
            row = result.summary()
            row["backend"] = backend
            rows.append(row)
    return rows


def test_tree_backend_strategies(benchmark, report):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    report.add(
        ExperimentResult("extension_tree_backend", rows),
        comparison_metric=None,
        columns=("backend", "strategy", "matches", "p25", "p50", "p75", "p95"),
    )
    by = {(row["backend"], row["strategy"]): row for row in rows}
    # Identical detections across strategies and across backends.
    assert len({row["matches"] for row in rows}) == 1
    # The paper's expectation: the strategy ordering carries over.
    for backend in ("automaton", "tree"):
        hybrid = by[(backend, "Hybrid")]["p50"]
        for baseline in ("BL1", "BL2", "BL3"):
            assert hybrid <= by[(backend, baseline)]["p50"], (backend, baseline)

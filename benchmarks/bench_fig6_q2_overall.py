"""Figure 6: overall effectiveness and efficiency for Q2.

Same grid as Fig. 5, on the disjunction-of-sequences query with one remote
reference per branch.  The paper's headline contrast with Q1: among the
baselines, BL3 wins on Q1 but *loses* on Q2 — ignoring remote predicates on
Q2's lightly-guarded branches inflates the partial-match population, and
without a cache every completed candidate pays a fetch round.
"""

from __future__ import annotations

import pytest

from repro import CACHE_COST, CACHE_LRU, EiresConfig, GREEDY, NON_GREEDY
from repro.bench.harness import ALL_STRATEGIES, ExperimentResult, run_strategy
from repro.workloads.synthetic import SyntheticConfig, q2_workload

Q2_BENCH = SyntheticConfig(n_events=6_000, id_domain=40, window_events=400)
CACHE_CAPACITY = 200  # scaled eviction pressure (Q2 touches two keys per root run)

PANELS = [
    ("fig6a_q2_cost_nongreedy", CACHE_COST, NON_GREEDY),
    ("fig6b_q2_lru_nongreedy", CACHE_LRU, NON_GREEDY),
    ("fig6c_q2_cost_greedy", CACHE_COST, GREEDY),
    ("fig6d_q2_lru_greedy", CACHE_LRU, GREEDY),
]


def run_panel(cache_policy: str, policy: str) -> list[dict]:
    workload = q2_workload(Q2_BENCH)
    config = EiresConfig(
        policy=policy,
        cache_policy=cache_policy,
        cache_capacity=CACHE_CAPACITY,
    )
    return [run_strategy(workload, strategy, config).summary() for strategy in ALL_STRATEGIES]


@pytest.mark.parametrize("name,cache_policy,policy", PANELS)
def test_fig6_panel(benchmark, report, name, cache_policy, policy):
    rows = benchmark.pedantic(run_panel, args=(cache_policy, policy), rounds=1, iterations=1)
    experiment = ExperimentResult(name, rows)
    report.add(experiment)

    by = {row["strategy"]: row for row in rows}
    assert by["Hybrid"]["p50"] <= min(by[s]["p50"] for s in ALL_STRATEGIES) * 1.05
    for eires_strategy in ("PFetch", "LzEval", "Hybrid"):
        for baseline in ("BL1", "BL2", "BL3"):
            assert by[eires_strategy]["p50"] <= by[baseline]["p50"], (
                f"{eires_strategy} should beat {baseline} on Q2 ({name})"
            )
    if policy == GREEDY:
        # The Q1/Q2 contrast: BL3's postponement hurts it on Q2 (§7.2).
        assert by["BL3"]["p50"] > by["BL2"]["p50"]
    counts = {row["matches"] for row in rows}
    assert len(counts) == 1

"""Wire-request amortization of the multi-tenant fleet layer.

Four tenants run the same q1 monitoring query over the same remote key
space.  Deployed in isolation, each pays its own remote fetches; deployed
as one fleet (:class:`repro.FleetBuilder`), every shard shares a single
remote-data plane, so one tenant's fetch serves the others through the
shared cache and transport.  The bench pins the headline property of the
serving layer: total wire requests of the fleet run are *strictly below*
the sum of the isolated runs, at exactly equal per-tenant recall.

Run under pytest (the tier-2 suite) or standalone::

    python benchmarks/bench_serving.py           # full sweep
    python benchmarks/bench_serving.py --smoke   # CI-sized

Results land in ``results/BENCH_serving.json``.
"""

from __future__ import annotations

import copy
import sys

from repro import EiresConfig, FleetBuilder, RuntimeBuilder, TenantSpec
from repro.bench.harness import ExperimentResult, save_results
from repro.workloads.synthetic import SyntheticConfig, q1_workload

N_TENANTS = 4
N_SHARDS = 2
STRATEGY = "Hybrid"
COLUMNS = ("mode", "tenant", "shard", "matches", "p50", "wire_requests")


def _workload(n_events: int):
    return q1_workload(
        SyntheticConfig(n_events=n_events, id_domain=20, window_events=400)
    )


def _config(capacity: int) -> EiresConfig:
    return EiresConfig(cache_capacity=capacity)


def sweep(n_events: int = 3_000) -> list[dict]:
    rows = []

    # Isolated deployments: one fresh runtime (and remote-data plane) per
    # tenant, all replaying the identical workload.
    for index in range(N_TENANTS):
        workload = _workload(n_events)
        runtime = (
            RuntimeBuilder(
                workload.store, workload.latency_model,
                config=_config(workload.notes["cache_capacity"]),
            )
            .add_query(workload.query, strategy=STRATEGY)
            .build()
        )
        result = runtime.run(workload.stream)[workload.query.name]
        rows.append({
            "mode": "isolated",
            "tenant": f"tenant{index}",
            "shard": -1,
            "matches": result.match_count,
            "p50": round(result.latency_percentiles()[50], 2),
            "wire_requests": result.transport_stats["wire_requests"],
        })

    # The fleet deployment: same four tenants on two shards over ONE shared
    # remote-data plane.  Fleet query names must be unique, so each tenant
    # runs a renamed copy of the workload query.
    workload = _workload(n_events)
    builder = FleetBuilder(
        workload.store, workload.latency_model, n_shards=N_SHARDS,
        config=_config(workload.notes["cache_capacity"]),
    )
    for index in range(N_TENANTS):
        query = copy.copy(workload.query)
        query.name = f"{workload.query.name}_t{index}"
        builder.add_tenant(
            TenantSpec(f"tenant{index}", query, strategy=STRATEGY)
        )
    fleet_result = builder.build().dispatch(workload.stream)
    for index in range(N_TENANTS):
        tenant = f"tenant{index}"
        (run,) = fleet_result.tenant_result(tenant).values()
        rows.append({
            "mode": "fleet",
            "tenant": tenant,
            "shard": fleet_result.placement[tenant],
            "matches": run.match_count,
            "p50": round(run.latency_percentiles()[50], 2),
            # Every session of a shared plane reports the same transport:
            # this is the fleet-wide wire total, identical on every row.
            "wire_requests": run.transport_stats["wire_requests"],
        })
    return rows


def check_rows(rows: list[dict]) -> None:
    """The acceptance properties of the sweep (shared by pytest and CLI)."""
    isolated = {row["tenant"]: row for row in rows if row["mode"] == "isolated"}
    fleet = {row["tenant"]: row for row in rows if row["mode"] == "fleet"}
    assert set(isolated) == set(fleet) and len(fleet) == N_TENANTS

    # Equal recall: sharing the remote-data plane changes *how* data moves,
    # never what each tenant detects.
    for tenant, row in fleet.items():
        assert row["matches"] == isolated[tenant]["matches"], (
            f"{tenant}: recall changed "
            f"{isolated[tenant]['matches']} -> {row['matches']}"
        )

    # One shared transport: every fleet row reports the same wire total.
    fleet_wires = {row["wire_requests"] for row in fleet.values()}
    assert len(fleet_wires) == 1, f"fleet rows disagree on wire total: {fleet_wires}"

    # The headline win: the fleet's total wire requests are strictly below
    # the sum of the isolated runs.
    (fleet_wire,) = fleet_wires
    isolated_wire = sum(row["wire_requests"] for row in isolated.values())
    assert fleet_wire < isolated_wire, (
        f"no amortization: fleet {fleet_wire} vs isolated sum {isolated_wire}"
    )


def test_serving_sweep(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.add(
        ExperimentResult("BENCH_serving", rows),
        comparison_metric=None,
        columns=COLUMNS,
    )
    check_rows(rows)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in args
    rows = sweep(n_events=1_000 if smoke else 3_000)
    experiment = ExperimentResult("BENCH_serving", rows)
    print(experiment.table(COLUMNS))
    check_rows(rows)
    path = save_results(experiment)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

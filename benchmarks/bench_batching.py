"""Wire-request amortization of the batched fetch plane.

The batch plane coalesces the async fetches of PFetch/LzEval into multi-key
wire requests costing ``l_batch = l_fixed + n * l_per`` instead of n full
round trips.  This bench measures the trade on the paper's q1/q2 synthetic
workloads: with batching on, the wire-request count must drop strictly while
the match set (recall) stays exactly the single-key one; mean detection
latency is recorded alongside so the (bounded) cost of waiting out the
coalescing window is visible next to the saved round trips.

Run under pytest (the tier-2 suite) or standalone::

    python benchmarks/bench_batching.py           # full sweep
    python benchmarks/bench_batching.py --smoke   # CI-sized

Results land in ``results/BENCH_batching.json``.
"""

from __future__ import annotations

import sys

from repro import EiresConfig
from repro.bench.harness import ExperimentResult, run_strategy, save_results
from repro.workloads.synthetic import SyntheticConfig, q1_workload, q2_workload

STRATEGIES = ("PFetch", "Hybrid")
# ~2x the mean event gap (25us): wide enough to coalesce a decision point's
# candidates, narrow enough that responses still land before their use.
BATCH_WINDOW = 50.0
BATCH_MAX_KEYS = 8
COLUMNS = ("workload", "strategy", "batching", "matches", "mean_latency_us",
           "p50", "p95", "transport.wire_requests", "transport.batches",
           "transport.batched_keys", "transport.coalesced")


def _workloads(n_events: int) -> dict:
    return {
        "q1": q1_workload(
            SyntheticConfig(n_events=n_events, id_domain=20, window_events=400)
        ),
        "q2": q2_workload(
            SyntheticConfig(n_events=n_events, id_domain=40, window_events=400)
        ),
    }


def _config(batching: bool, capacity: int) -> EiresConfig:
    config = EiresConfig(cache_capacity=capacity)
    if batching:
        config = config.with_(batch_window=BATCH_WINDOW, batch_max_keys=BATCH_MAX_KEYS)
    return config


def sweep(n_events: int = 4_000) -> list[dict]:
    rows = []
    for workload_name, workload in _workloads(n_events).items():
        capacity = workload.notes["cache_capacity"]
        for strategy in STRATEGIES:
            for batching in (False, True):
                result = run_strategy(workload, strategy, _config(batching, capacity))
                row = result.summary()
                row["workload"] = workload_name
                row["batching"] = "on" if batching else "off"
                row["mean_latency_us"] = round(result.latency.mean(), 2)
                rows.append(row)
    return rows


def check_rows(rows: list[dict]) -> None:
    """The acceptance properties of the sweep (shared by pytest and CLI)."""
    for workload in ("q1", "q2"):
        for strategy in STRATEGIES:
            mine = {
                row["batching"]: row
                for row in rows
                if row["workload"] == workload and row["strategy"] == strategy
            }
            assert set(mine) == {"off", "on"}, (workload, strategy)
            off, on = mine["off"], mine["on"]
            # Equal recall: batching only changes *how* data moves, never
            # what is matched.
            assert on["matches"] == off["matches"], (
                f"{workload}/{strategy}: recall changed "
                f"{off['matches']} -> {on['matches']}"
            )
            # The headline win: strictly fewer wire requests.
            assert on["transport.wire_requests"] < off["transport.wire_requests"], (
                f"{workload}/{strategy}: no wire-request reduction "
                f"({off['transport.wire_requests']} -> {on['transport.wire_requests']})"
            )
            assert on["transport.batches"] > 0, (workload, strategy)
            assert off["transport.batches"] == 0, (workload, strategy)
            # The window cost is bounded: mean detection latency may give up
            # at most the coalescing window itself.
            assert on["mean_latency_us"] <= off["mean_latency_us"] + BATCH_WINDOW, (
                f"{workload}/{strategy}: latency cliff "
                f"{off['mean_latency_us']} -> {on['mean_latency_us']}"
            )


def test_batching_sweep(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.add(
        ExperimentResult("BENCH_batching", rows),
        comparison_metric=None,
        columns=COLUMNS,
    )
    check_rows(rows)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in args
    rows = sweep(n_events=1_000 if smoke else 4_000)
    experiment = ExperimentResult("BENCH_batching", rows)
    print(experiment.table(COLUMNS))
    check_rows(rows)
    path = save_results(experiment)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

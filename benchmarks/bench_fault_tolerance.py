"""Latency degradation under increasing remote-fetch failure rates.

The paper's evaluation assumes a perfect network; this bench measures what
the fault-tolerant substrate adds: as the per-attempt drop rate rises, match
latency should degrade *gracefully* — a smooth slope from retry stalls, not
a cliff from lost matches or unbounded waits — while the match set itself
stays exactly the fault-free one (retries hide the faults).

Run under pytest (the tier-2 suite) or standalone::

    python benchmarks/bench_fault_tolerance.py               # full sweep
    python benchmarks/bench_fault_tolerance.py --fault-smoke # CI-sized

Results land in ``results/fault_tolerance.json``.
"""

from __future__ import annotations

import sys

from repro import EiresConfig
from repro.bench.harness import ExperimentResult, run_strategy, save_results
from repro.workloads.synthetic import SyntheticConfig, q1_workload

FAILURE_RATES = (0.0, 0.01, 0.05, 0.1, 0.2)
STRATEGIES = ("BL1", "Hybrid")
COLUMNS = ("strategy", "failure_rate", "matches", "p50", "p95",
           "fetch.retries", "fetch.fetch_failures", "fetch.total_stall_time")


def _config(rate: float) -> EiresConfig:
    return EiresConfig(
        cache_capacity=64,
        fault_profile=f"drop:{rate}" if rate > 0 else "none",
        # Generous retry budget: the sweep measures *degradation*, so every
        # fetch must eventually succeed (p(8 consecutive drops) <= 0.2^8).
        retry_max_attempts=8,
        retry_attempt_timeout=200.0,
        retry_deadline=1e9,
        # A hair-trigger breaker would fail-fast bursts of unlucky draws and
        # turn the smooth retry slope into match-losing steps; keep it as a
        # dead-source guard only.
        breaker_failure_threshold=0.9,
    )


def sweep(n_events: int = 3_000) -> list[dict]:
    workload_config = SyntheticConfig(n_events=n_events, id_domain=20, window_events=400)
    rows = []
    for strategy in STRATEGIES:
        for rate in FAILURE_RATES:
            workload = q1_workload(workload_config)
            row = run_strategy(workload, strategy, _config(rate)).summary()
            row["failure_rate"] = rate
            rows.append(row)
    return rows


def check_rows(rows: list[dict]) -> None:
    """The acceptance properties of the sweep (shared by pytest and CLI)."""
    by_strategy = {
        strategy: [row for row in rows if row["strategy"] == strategy]
        for strategy in STRATEGIES
    }
    for strategy, mine in by_strategy.items():
        assert len(mine) == len(FAILURE_RATES), strategy
        # Faults never change *what* is matched, only when.
        matches = {row["matches"] for row in mine}
        assert len(matches) == 1, f"{strategy}: match set varies with failure rate: {matches}"
        # Every terminal failure would mean a lost/unverified match.
        assert all(row["fetch.fetch_failures"] == 0 for row in mine), strategy
        assert mine[0]["fetch.retries"] == 0, strategy
    # Each nonzero rate produces retries somewhere in the suite.
    for index in range(1, len(FAILURE_RATES)):
        assert sum(mine[index]["fetch.retries"] for mine in by_strategy.values()) > 0
    # The blocking baseline surfaces the retry cost directly: its stall time
    # and latency climb monotonically with the rate, each step bounded (a
    # smooth slope, not a cliff).
    bl1 = by_strategy["BL1"]
    stalls = [row["fetch.total_stall_time"] for row in bl1]
    p95s = [row["p95"] for row in bl1]
    for lower, higher in zip(stalls, stalls[1:]):
        assert higher >= lower * 0.98, f"BL1 stall time regressed: {stalls}"
    for lower, higher in zip(p95s, p95s[1:]):
        assert lower * 0.98 <= higher <= max(lower, 1.0) * 3.0, f"BL1 latency cliff: {p95s}"
    # Hybrid hides retries behind prefetch/postponement: its latency stays
    # within a bounded envelope of the fault-free run (a handful of blocking
    # retry chains at worst — losing the async machinery would cost orders
    # of magnitude, as BL1's column shows).
    hybrid = by_strategy["Hybrid"]
    envelope = hybrid[0]["p95"] * 10.0 + 8 * 200.0  # + max_attempts x attempt_timeout
    for row in hybrid[1:]:
        assert row["p95"] <= envelope, f"Hybrid latency cliff: {row['p95']} > {envelope}"
    # Even at the worst rate, Hybrid keeps its order-of-magnitude win.
    assert hybrid[-1]["p95"] < p95s[-1] / 10.0


def test_fault_tolerance_sweep(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.add(
        ExperimentResult("fault_tolerance", rows),
        comparison_metric=None,
        columns=COLUMNS,
    )
    check_rows(rows)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    smoke = "--fault-smoke" in args
    rows = sweep(n_events=600 if smoke else 3_000)
    experiment = ExperimentResult("fault_tolerance", rows)
    print(experiment.table(COLUMNS))
    check_rows(rows)
    path = save_results(experiment)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Extension bench: multi-query workloads sharing one cache (§4.1).

The paper argues (without measuring) that the utility model extends to
multiple queries: shared data elements accumulate utility across queries,
and priorities weight Eq. 3.  This bench quantifies the claim on two queries
that consult the same remote source over the same stream:

* *isolated*: each query runs with its own cache of capacity C/2;
* *shared*: both queries run against one cache of capacity C.

Sharing should reduce total remote traffic (an element fetched for one query
serves the other) and never hurt the match sets.
"""

from __future__ import annotations

from repro import (
    EIRES,
    EiresConfig,
    MultiQueryEIRES,
    parse_query,
    QuerySpec,
    RemoteStore,
    UniformLatency,
)
from repro.bench.harness import ExperimentResult
from repro.workloads.synthetic import SyntheticConfig, make_stream

CAPACITY = 200


def build_queries():
    q_ab = parse_query(
        "SEQ(A a, B b, C c) WHERE SAME[id] AND c.v1 IN REMOTE<shared>[a.v1] WITHIN 300 EVENTS",
        name="seq-abc",
    )
    q_ad = parse_query(
        "SEQ(A a, D d, B e) WHERE SAME[id] AND d.v1 IN REMOTE<shared>[a.v1] WITHIN 300 EVENTS",
        name="seq-adb",
    )
    return q_ab, q_ad


def build_store():
    from repro.workloads.base import PseudoRandomSet

    store = RemoteStore()
    store.register_source("shared", lambda key: PseudoRandomSet(99, key, 0.3))
    return store


def run_comparison() -> list[dict]:
    stream = make_stream(SyntheticConfig(n_events=4_000, id_domain=25))
    latency = UniformLatency(10.0, 100.0)
    q_ab, q_ad = build_queries()

    rows = []

    # Isolated: independent runtimes, split capacity (fresh stores so the
    # transports don't share lazily materialised elements either).
    isolated_fetches = 0
    isolated_p50 = {}
    for query in (q_ab, q_ad):
        eires = EIRES(query, build_store(), latency, strategy="Hybrid",
                      config=EiresConfig(cache_capacity=CAPACITY // 2))
        result = eires.run(stream)
        isolated_fetches += (
            result.transport_stats["blocking_fetches"]
            + result.transport_stats["async_fetches"]
        )
        isolated_p50[query.name] = result.latency.median()
        rows.append({
            "setup": "isolated",
            "query": query.name,
            "matches": result.match_count,
            "p50": result.latency.median(),
        })

    shared = MultiQueryEIRES(
        [QuerySpec(q_ab), QuerySpec(q_ad)], build_store(), latency,
        config=EiresConfig(cache_capacity=CAPACITY),
    )
    results = shared.run(stream)
    # Every result of a shared replay reports the same (shared) transport.
    shared_stats = next(iter(results.values())).transport_stats
    shared_fetches = shared_stats["blocking_fetches"] + shared_stats["async_fetches"]
    for name, result in results.items():
        rows.append({
            "setup": "shared",
            "query": name,
            "matches": result.match_count,
            "p50": result.latency.median(),
        })
    rows.append({"setup": "isolated", "query": "(total fetches)", "matches": isolated_fetches, "p50": 0.0})
    rows.append({"setup": "shared", "query": "(total fetches)", "matches": shared_fetches, "p50": 0.0})
    return rows


def test_multiquery_sharing(benchmark, report):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    report.add(
        ExperimentResult("extension_multiquery_sharing", rows),
        comparison_metric=None,
        columns=("setup", "query", "matches", "p50"),
    )
    by = {(row["setup"], row["query"]): row for row in rows}
    # Identical detections under both deployments.
    for name in ("seq-abc", "seq-adb"):
        assert by[("isolated", name)]["matches"] == by[("shared", name)]["matches"]
    # Sharing the cache reduces total remote traffic.
    assert (
        by[("shared", "(total fetches)")]["matches"]
        < by[("isolated", "(total fetches)")]["matches"]
    )

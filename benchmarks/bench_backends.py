"""Guard-evaluation throughput: the reference engine vs the vectorized backend.

The evaluation backends promise *identical semantics* (byte-identical
matches, counters, and virtual-time costs) with different execution
strategies for the guard-evaluation core.  This bench drives both through
a guard-dominated workload — a four-step sequence whose transitions carry
wide conjunctions of high-pass local filters over partitions hundreds of
runs wide, the regime batch evaluation is built for — and records:

* the deterministic result rows (matches, virtual-time percentiles, guard
  and predicate counters), which must be **identical across backends** and
  are what the bench-regression gate compares; and
* a wall-clock ``timing`` section (guard evaluations per second and the
  vectorized speedup), machine-dependent by nature and therefore written
  *next to* the rows where ``tools/bench_diff.py`` ignores it.

Run under pytest (the tier-2 suite) or standalone::

    python benchmarks/bench_backends.py           # full sweep
    python benchmarks/bench_backends.py --smoke   # CI-sized

Results land in ``results/BENCH_backends.json``.
"""

from __future__ import annotations

import sys

from repro import backend_unavailable_reason, EiresConfig, parse_query, UniformLatency
from repro.bench.harness import (
    ExperimentResult,
    run_strategy,
    save_results,
    wall_time,
)
from repro.workloads.base import Workload
from repro.workloads.synthetic import SyntheticConfig, make_store, make_stream

STRATEGY = "BL1"
BACKENDS = ("reference", "vectorized")
COLUMNS = ("backend", "matches", "p50", "p95", "throughput_eps",
           "engine.guard_evaluations", "engine.predicate_evaluations")


def guard_workload(n_events: int, id_domain: int = 4, window: int = 400,
                   seed: int = 42) -> Workload:
    """A guard-dominated Q1 variant: local-only, filter-heavy, wide partitions.

    Every transition carries several high-pass range filters (so neither
    backend benefits from short-circuiting) plus order correlations at the
    final step; the small ``id_domain`` keeps each ``SAME[id]`` partition
    hundreds of runs wide, which is where batch evaluation has something
    to amortise against.
    """
    config = SyntheticConfig(n_events=n_events, id_domain=id_domain,
                             window_events=window, seed=seed)
    text = f"""
    SEQ(A a, B b, C c, D d)
    WHERE SAME[id]
    AND a.v1 <= 92000 AND a.v2 <= 92000 AND a.v1 >= 4000 AND a.v2 >= 4000
    AND b.v1 <= 92000 AND b.v2 >= 8000 AND b.v1 >= 4000
    AND c.v1 <= 92000 AND c.v2 >= 8000 AND c.v1 >= 4000
    AND d.v1 <= 92000 AND d.v2 >= 8000
    AND a.v1 <= d.v1 AND b.v2 <= d.v2 AND c.v1 <= d.v1
    WITHIN {window} EVENTS
    """
    return Workload(
        name="guard-heavy",
        query=parse_query(text, name="QG"),
        store=make_store(config),
        stream=make_stream(config),
        latency_model=UniformLatency(config.latency_low_us, config.latency_high_us),
    )


def sweep(n_events: int = 6_000, rounds: int = 2) -> tuple[list[dict], dict]:
    """Run every available backend over the guard-heavy workload.

    Returns ``(rows, timing)``: deterministic per-backend result rows, and
    the wall-clock section (guards/second per backend plus the speedup of
    each backend relative to ``reference``).  Wall time is the best of
    ``rounds`` replays — the rows are virtual-time deterministic, so every
    round returns the same rows and only the timing varies.
    """
    workload = guard_workload(n_events)
    config = EiresConfig()
    rows: list[dict] = []
    timing: dict[str, dict] = {}
    for backend in BACKENDS:
        reason = backend_unavailable_reason(backend)
        if reason is not None:
            print(f"skipping backend {backend!r}: {reason}", file=sys.stderr)
            continue
        def run(b=backend):
            return run_strategy(workload, STRATEGY, config, backend=b)

        result, seconds = wall_time(run)
        for _ in range(rounds - 1):
            _, again = wall_time(run)
            seconds = min(seconds, again)
        row = result.summary()
        row["backend"] = backend
        rows.append(row)
        guards = row["engine.guard_evaluations"]
        timing[backend] = {
            "wall_seconds": round(seconds, 3),
            "guard_evals_per_second": round(guards / seconds) if seconds else None,
        }
    reference_seconds = timing.get("reference", {}).get("wall_seconds")
    if reference_seconds:
        for backend, section in timing.items():
            section["speedup_vs_reference"] = round(
                reference_seconds / section["wall_seconds"], 3
            )
    return rows, timing


def check_rows(rows: list[dict]) -> None:
    """The acceptance properties of the sweep (shared by pytest and CLI)."""
    assert rows and rows[0]["backend"] == "reference"
    base = rows[0]
    # The workload must actually be guard-dominated: several predicates
    # charged per guard, across a large absolute volume of guards.
    assert base["engine.guard_evaluations"] > 10_000, base
    assert (base["engine.predicate_evaluations"]
            > 3 * base["engine.guard_evaluations"]), base
    assert base["matches"] > 0
    # The whole point of the backend contract: every backend reproduces the
    # reference rows byte-for-byte — same matches, same virtual-time
    # percentiles, same counters.  Only the label may differ.
    for row in rows[1:]:
        for key, value in base.items():
            if key == "backend":
                continue
            assert row.get(key) == value, (
                f"backend {row['backend']!r} diverges from reference on "
                f"{key}: {row.get(key)!r} != {value!r}"
            )


def test_backends_sweep(benchmark, report):
    rows, timing = benchmark.pedantic(sweep, rounds=1, iterations=1)
    experiment = ExperimentResult("BENCH_backends", rows)
    report.add(experiment, comparison_metric=None, columns=COLUMNS)
    save_results(experiment, extra={"timing": timing})
    check_rows(rows)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in args
    rows, timing = sweep(n_events=1_500 if smoke else 6_000,
                         rounds=1 if smoke else 2)
    experiment = ExperimentResult("BENCH_backends", rows)
    print(experiment.table(COLUMNS))
    for backend, section in timing.items():
        line = (f"{backend}: {section['wall_seconds']}s wall, "
                f"{section['guard_evals_per_second']} guard evals/s")
        if "speedup_vs_reference" in section:
            line += f", {section['speedup_vs_reference']}x vs reference"
        print(line)
    check_rows(rows)
    path = save_results(experiment, extra={"timing": timing})
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Recall vs. detection latency under overload: the shedding trade.

The bursty workload drives Q1 at ~5x the sustainable arrival rate in
periodic bursts with hot-partition skew; without shedding, queueing lag
accumulates over every burst and detection latency grows by orders of
magnitude.  This bench replays the same stream under each shedding policy
across a sweep of latency bounds and records the resulting curve: recall
(matches kept, relative to the unshedded run) against detection-latency
percentiles.  The acceptance properties encode the plane's promise —
shedding keeps the p95 detection latency a small multiple of the bound
while the unshedded run blows through it, every drop shows up on a
registered counter, and the ``none`` policy reproduces the unshedded run
exactly.

Run under pytest (the tier-2 suite) or standalone::

    python benchmarks/bench_shedding.py           # full sweep
    python benchmarks/bench_shedding.py --smoke   # CI-sized

Results land in ``results/BENCH_shedding.json``.
"""

from __future__ import annotations

import sys

from repro.bench.harness import ExperimentResult, run_strategy, save_results
from repro import EiresConfig
from repro.workloads.bursty import BurstyConfig, bursty_workload

STRATEGY = "Hybrid"
#: Queueing-delay bounds (virtual us) swept for each shedding policy.
LATENCY_BOUNDS = (200.0, 1_000.0, 5_000.0)
#: Shedding must hold p95 detection latency within this multiple of the
#: configured bound (the bound caps *queueing* delay; detection latency adds
#: the intra-window wait and whatever lag built up before the detector
#: tripped), while the unshedded run must blow through the same envelope.
P95_HEADROOM = 10.0
COLUMNS = ("policy", "latency_bound", "matches", "recall", "p50", "p95",
           "shed.overloads", "shed.events_dropped", "shed.runs_shed",
           "engine.dropped.shed")


def _config(capacity: int, policy: str, bound: float | None) -> EiresConfig:
    return EiresConfig(
        cache_capacity=capacity,
        shed_policy=policy,
        latency_bound=bound,
    )


def sweep(n_events: int = 4_000) -> list[dict]:
    workload = bursty_workload(BurstyConfig(n_events=n_events))
    capacity = workload.notes["cache_capacity"]

    baseline = run_strategy(workload, STRATEGY, _config(capacity, "none", None))
    base_row = baseline.summary()
    base_row["policy"] = "none"
    base_row["latency_bound"] = None
    base_row["recall"] = 1.0
    rows = [base_row]

    base_matches = max(baseline.match_count, 1)
    for policy in ("events", "runs"):
        for bound in LATENCY_BOUNDS:
            result = run_strategy(workload, STRATEGY, _config(capacity, policy, bound))
            row = result.summary()
            row["policy"] = policy
            row["latency_bound"] = bound
            row["recall"] = round(result.match_count / base_matches, 3)
            rows.append(row)
    return rows


def check_rows(rows: list[dict]) -> None:
    """The acceptance properties of the sweep (shared by pytest and CLI)."""
    base = rows[0]
    assert base["policy"] == "none" and base["recall"] == 1.0
    assert "shed.overloads" not in base, "policy none must carry no shed.* columns"
    assert base["matches"] > 0, "the overload scenario must still produce matches"

    tightest = min(LATENCY_BOUNDS)
    # The point of the exercise: without shedding the overload blows the
    # latency bound by orders of magnitude.
    assert base["p95"] > tightest * P95_HEADROOM, (
        f"unshedded p95 {base['p95']} does not exceed the bound x headroom; "
        f"the scenario is not overloaded enough to exercise shedding"
    )

    for row in rows[1:]:
        policy, bound = row["policy"], row["latency_bound"]
        label = f"{policy}@{bound}"
        # Bounded latency: p95 stays within a fixed multiple of the bound
        # while the unshedded run is far beyond it.
        assert row["p95"] <= bound * P95_HEADROOM, (
            f"{label}: p95 {row['p95']} exceeds bound x headroom "
            f"({bound} x {P95_HEADROOM})"
        )
        assert row["p95"] < base["p95"], (
            f"{label}: p95 {row['p95']} not below unshedded {base['p95']}"
        )
        # Shedding actually happened, and every drop is attributed.
        assert row["shed.overloads"] > 0, f"{label}: detector never tripped"
        if policy == "events":
            assert row["shed.events_dropped"] > 0, f"{label}: no events dropped"
            assert row["engine.dropped.shed"] == 0, (
                f"{label}: event shedding must not evict runs"
            )
        else:
            assert row["shed.runs_shed"] > 0, f"{label}: no runs shed"
            assert row["shed.runs_shed"] == row["engine.dropped.shed"], (
                f"{label}: shed counter {row['shed.runs_shed']} disagrees with "
                f"engine.dropped.shed {row['engine.dropped.shed']}"
            )
        # Shedding trades recall, it does not fabricate matches.
        assert 0.0 < row["recall"] <= 1.0, f"{label}: recall {row['recall']}"

    # The curve property: a looser bound never costs recall.
    for policy in ("events", "runs"):
        curve = [row for row in rows[1:] if row["policy"] == policy]
        curve.sort(key=lambda row: row["latency_bound"])
        recalls = [row["recall"] for row in curve]
        assert recalls == sorted(recalls), (
            f"{policy}: recall not monotone in the latency bound: {recalls}"
        )


def test_shedding_sweep(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.add(
        ExperimentResult("BENCH_shedding", rows),
        comparison_metric=None,
        columns=COLUMNS,
    )
    check_rows(rows)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in args
    rows = sweep(n_events=1_600 if smoke else 4_000)
    experiment = ExperimentResult("BENCH_shedding", rows)
    print(experiment.table(COLUMNS))
    check_rows(rows)
    path = save_results(experiment)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 10: real-world case studies (bushfire detection, cluster monitoring).

Both use a cost-based cache under greedy selection, ms-scale transmission
latencies, and (for bushfire) compute-intensive predicates — the paper's
recipe for the >10x improvements of Hybrid over every baseline.  The
satellite and trace data are simulated per DESIGN.md.
"""

from __future__ import annotations

import pytest

from repro import CACHE_COST, EiresConfig, GREEDY
from repro.bench.harness import ALL_STRATEGIES, ExperimentResult, run_strategy
from repro.workloads.bushfire import BushfireConfig, bushfire_workload
from repro.workloads.cluster import ClusterConfig, cluster_workload

CASES = [
    ("fig10a_bushfire", lambda: bushfire_workload(BushfireConfig(n_events=6_000))),
    ("fig10b_cluster", lambda: cluster_workload(ClusterConfig(n_tasks=500))),
]


def run_case(make_workload) -> list[dict]:
    workload = make_workload()
    config = EiresConfig(
        policy=GREEDY,
        cache_policy=CACHE_COST,
        cache_capacity=workload.notes["cache_capacity"],
    )
    return [run_strategy(workload, strategy, config).summary() for strategy in ALL_STRATEGIES]


@pytest.mark.parametrize("name,make_workload", CASES)
def test_fig10_case(benchmark, report, name, make_workload):
    rows = benchmark.pedantic(run_case, args=(make_workload,), rounds=1, iterations=1)
    experiment = ExperimentResult(name, rows)
    report.add(experiment)

    by = {row["strategy"]: row for row in rows}
    # Hybrid outperforms every baseline on the median (paper: 206x/21x/200x
    # for bushfire, 73x/47x/11879x for cluster — we assert the ordering and
    # a material factor, not the absolute numbers).
    for baseline in ("BL1", "BL2", "BL3"):
        assert by["Hybrid"]["p50"] <= by[baseline]["p50"]
    assert by["BL1"]["p50"] > by["Hybrid"]["p50"] * 5
    # All strategies agree on the matches.
    assert len({row["matches"] for row in rows}) == 1
    if name == "fig10a_bushfire":
        # PFetch anticipates the per-cell sensor lookups well: close to
        # Hybrid except in the tail (paper §7.4).
        assert by["PFetch"]["p50"] <= by["BL2"]["p50"]

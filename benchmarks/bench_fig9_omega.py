"""Figure 9: sensitivity of the utility weighting factor omega (Eq. 5).

(a) sweep ``omega_fetch`` 0.1–0.9 with ``omega_cache`` fixed at 0.5;
(b) sweep ``omega_cache`` 0.1–0.9 with ``omega_fetch`` fixed at 0.7.

The paper reports optimal performance around ``omega_fetch = 0.7`` and
``omega_cache = 0.5``, with a broad robust plateau — any weighting that
emphasises the urgent demand without ignoring future usage works; the
assertions below check the plateau property (no extreme beats the middle
dramatically) rather than an exact optimum, which is noise-sensitive.
"""

from __future__ import annotations

from repro import CACHE_COST, EiresConfig, GREEDY
from repro.bench.harness import ExperimentResult, run_strategy
from repro.workloads.synthetic import SyntheticConfig, q1_workload

OMEGAS = (0.1, 0.3, 0.5, 0.7, 0.9)
BASE = SyntheticConfig(n_events=3_000, id_domain=20, window_events=400)
# The weighting factor only matters while the cache is contended (Eq. 7's
# admission gate and the cost-based eviction both compare utilities): size
# the cache below the stream's working set, as in the other panels.
CACHE_CAPACITY = 150


def sweep(field: str, fixed: dict) -> list[dict]:
    workload = q1_workload(BASE)
    rows = []
    for omega in OMEGAS:
        config = EiresConfig(
            policy=GREEDY,
            cache_policy=CACHE_COST,
            cache_capacity=CACHE_CAPACITY,
            **{field: omega},
            **fixed,
        )
        # Hybrid is the paper's subject; PFetch is included because its
        # admission gate is the mechanism most exposed to the weighting.
        for strategy in ("Hybrid", "PFetch"):
            row = run_strategy(workload, strategy, config).summary()
            row["omega"] = omega
            rows.append(row)
    return rows


def _assert_plateau(rows: list[dict]) -> None:
    p50s = {row["omega"]: row["p50"] for row in rows if row["strategy"] == "Hybrid"}
    middle = min(p50s[omega] for omega in (0.5, 0.7))
    # The interior of the sweep is never dramatically worse than the edges,
    # and the matches are identical everywhere.
    assert middle <= min(p50s[0.1], p50s[0.9]) * 1.5
    assert len({row["matches"] for row in rows}) == 1


def test_fig9a_omega_fetch(benchmark, report):
    rows = benchmark.pedantic(
        sweep, args=("omega_fetch", {"omega_cache": 0.5}), rounds=1, iterations=1
    )
    report.add(
        ExperimentResult("fig9a_omega_fetch", rows),
        comparison_metric=None,
        columns=("omega", "strategy", "matches", "p25", "p50", "p75", "p95"),
    )
    _assert_plateau(rows)


def test_fig9b_omega_cache(benchmark, report):
    rows = benchmark.pedantic(
        sweep, args=("omega_cache", {"omega_fetch": 0.7}), rounds=1, iterations=1
    )
    report.add(
        ExperimentResult("fig9b_omega_cache", rows),
        comparison_metric=None,
        columns=("omega", "strategy", "matches", "p25", "p50", "p75", "p95"),
    )
    _assert_plateau(rows)

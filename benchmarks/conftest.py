"""Shared fixtures for the per-figure benchmark suite.

Each benchmark regenerates one figure (or panel) of the paper's evaluation:
it replays the workload under the relevant strategies, collects the paper's
measures in virtual time, and registers the resulting table with the
``report`` fixture.  All tables are printed in the terminal summary and
persisted as JSON under ``results/`` so EXPERIMENTS.md can cite them.

``pytest-benchmark`` measures the harness wall time of each panel; the
scientific measurements themselves (latency percentiles, throughput) live in
the printed tables, in *virtual* microseconds.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentResult, save_results

_COLLECTED: list[tuple[str, str]] = []


class ReportCollector:
    """Accumulates experiment tables for the terminal summary."""

    def add(self, experiment: ExperimentResult, comparison_metric: str | None = "p50",
            columns=("strategy", "matches", "p5", "p25", "p50", "p75", "p95"),
            higher_is_better: bool = False) -> None:
        text = experiment.table(columns)
        if comparison_metric is not None:
            text += "\n" + experiment.comparison(comparison_metric, higher_is_better)
        _COLLECTED.append((experiment.name, text))
        save_results(experiment)

    def add_text(self, name: str, text: str) -> None:
        _COLLECTED.append((name, text))


@pytest.fixture(scope="session")
def report() -> ReportCollector:
    return ReportCollector()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _COLLECTED:
        return
    terminalreporter.write_sep("=", "EIRES reproduction: regenerated paper tables")
    for _name, text in _COLLECTED:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
    terminalreporter.write_line(
        "All latencies are virtual-time microseconds; see EXPERIMENTS.md for "
        "the paper-vs-measured comparison."
    )

"""Figure 7: throughput for Q1 under non-greedy selection.

Events processed per (virtual) second for all six strategies, under the
cost-based and the LRU cache.  The paper: "throughput performance is largely
in line with the observed latencies" — strategies that stall less process
more events per second.
"""

from __future__ import annotations

import pytest

from repro import CACHE_COST, CACHE_LRU, EiresConfig, NON_GREEDY
from repro.bench.harness import ALL_STRATEGIES, ExperimentResult, run_strategy
from repro.workloads.synthetic import SyntheticConfig, q1_workload

# Throughput is a *service-rate* measure: the paper replays the stream as
# fast as the engine can drain it.  A high arrival rate (mean gap 4 us)
# makes the engine/fetch path the bottleneck for every strategy, so the
# events-per-second figures reflect processing capacity rather than the
# arrival rate.
Q1_BENCH = SyntheticConfig(
    n_events=6_000, id_domain=20, window_events=400, mean_gap_us=4.0
)
CACHE_CAPACITY = 100  # scaled eviction pressure; see bench_fig5 comment

PANELS = [
    ("fig7a_throughput_cost", CACHE_COST),
    ("fig7b_throughput_lru", CACHE_LRU),
]


def run_panel(cache_policy: str) -> list[dict]:
    workload = q1_workload(Q1_BENCH)
    config = EiresConfig(
        policy=NON_GREEDY,
        cache_policy=cache_policy,
        cache_capacity=CACHE_CAPACITY,
    )
    return [run_strategy(workload, strategy, config).summary() for strategy in ALL_STRATEGIES]


@pytest.mark.parametrize("name,cache_policy", PANELS)
def test_fig7_panel(benchmark, report, name, cache_policy):
    rows = benchmark.pedantic(run_panel, args=(cache_policy,), rounds=1, iterations=1)
    experiment = ExperimentResult(name, rows)
    report.add(experiment, comparison_metric="throughput_eps",
               columns=("strategy", "matches", "throughput_eps", "p50", "p95"),
               higher_is_better=True)

    by = {row["strategy"]: row for row in rows}
    # LzEval and Hybrid (no mid-stream stalls at all) out-process every
    # baseline; PFetch beats the stall-per-miss baselines BL1/BL2.  BL3's
    # *throughput* can rival PFetch's — its stalls are deferred and batched —
    # even though its latency is far worse (paper: "largely in line with the
    # observed latencies", with deviations like this one).
    best_baseline = max(by[s]["throughput_eps"] for s in ("BL1", "BL2", "BL3"))
    for eires_strategy in ("LzEval", "Hybrid"):
        assert by[eires_strategy]["throughput_eps"] >= best_baseline * 0.95
    for baseline in ("BL1", "BL2"):
        assert by["PFetch"]["throughput_eps"] >= by[baseline]["throughput_eps"]
    # BL1 (stall per need, no reuse) is the slowest.
    assert by["BL1"]["throughput_eps"] == min(row["throughput_eps"] for row in rows)

"""Figure 5: overall effectiveness and efficiency for Q1.

Four panels — {cost-based, LRU} cache x {non-greedy, greedy} selection —
each comparing BL1, BL2, BL3, PFetch, LzEval, and Hybrid by the 5th/25th/
50th/75th/95th latency percentiles.

Expected shape (paper §7.2): Hybrid best everywhere; PFetch and LzEval beat
every baseline; under non-greedy selection BL3 beats BL1/BL2 (its one
concurrent fetch round per match beats per-state stalls); under greedy
selection caches matter enormously and BL3's postponement-induced partial
matches make it the worst or near-worst baseline.
"""

from __future__ import annotations

import pytest

from repro import CACHE_COST, CACHE_LRU, EiresConfig, GREEDY, NON_GREEDY
from repro.bench.harness import ALL_STRATEGIES, ExperimentResult, run_strategy
from repro.workloads.synthetic import SyntheticConfig, q1_workload

# Calibrated in DESIGN.md: dense-enough per-ID substreams for the 8-step
# sequence, tractable partial-match populations under greedy selection.
Q1_BENCH = SyntheticConfig(n_events=6_000, id_domain=20, window_events=400)
# The paper sizes the cache at 10% of the remote key range actually under
# contention; our scaled streams touch ~3k distinct keys, so 400 entries
# reproduces the same eviction pressure (a full-keyspace 10k cache would
# never evict at this stream length and mask the policy comparison).
CACHE_CAPACITY = 100

PANELS = [
    ("fig5a_q1_cost_nongreedy", CACHE_COST, NON_GREEDY),
    ("fig5b_q1_lru_nongreedy", CACHE_LRU, NON_GREEDY),
    ("fig5c_q1_cost_greedy", CACHE_COST, GREEDY),
    ("fig5d_q1_lru_greedy", CACHE_LRU, GREEDY),
]


def run_panel(cache_policy: str, policy: str) -> list[dict]:
    workload = q1_workload(Q1_BENCH)
    config = EiresConfig(
        policy=policy,
        cache_policy=cache_policy,
        cache_capacity=CACHE_CAPACITY,
    )
    rows = []
    for strategy in ALL_STRATEGIES:
        result = run_strategy(workload, strategy, config)
        rows.append(result.summary())
    return rows


@pytest.mark.parametrize("name,cache_policy,policy", PANELS)
def test_fig5_panel(benchmark, report, name, cache_policy, policy):
    rows = benchmark.pedantic(run_panel, args=(cache_policy, policy), rounds=1, iterations=1)
    experiment = ExperimentResult(name, rows)
    report.add(experiment)

    # Shape assertions from §7.2 (loose factors: we reproduce ordering, not
    # absolute numbers).
    by = {row["strategy"]: row for row in rows}
    assert by["Hybrid"]["p50"] <= min(by[s]["p50"] for s in ALL_STRATEGIES) * 1.05
    for eires_strategy in ("PFetch", "LzEval", "Hybrid"):
        for baseline in ("BL1", "BL2", "BL3"):
            assert by[eires_strategy]["p50"] <= by[baseline]["p50"], (
                f"{eires_strategy} should beat {baseline} on Q1 ({name})"
            )
    # All strategies detect the same matches.
    counts = {row["matches"] for row in rows}
    assert len(counts) == 1

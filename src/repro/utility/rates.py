"""Online event-rate monitoring.

Both prefetch timing (Alg. 3's ``1/lambda - l_remote`` offset) and LzEval's
benefit model (Alg. 4's compound-Poisson estimate ``E(j,m) = 1/sum(lambda)``)
need, per transition, the arrival rate of events that would extend a partial
match along that transition.

A CEP engine evaluates guards anyway, so the estimator piggybacks on that:
for transition ``t`` it maintains the fraction of guard evaluations that
passed (a decayed counter) and multiplies it by the monitored arrival rate
of events of ``t``'s type.  This matches how the paper assumes rates "shall
be learned from historic data or through monitoring" (§5.1) while staying
O(1) per observation.
"""

from __future__ import annotations

__all__ = ["RateEstimator"]

_DECAY = 0.5
_MIN_RATE = 1e-9  # events/us; avoids division blow-ups before warm-up


class _PassCounter:
    __slots__ = ("evaluations", "passes")

    def __init__(self) -> None:
        self.evaluations = 0.0
        self.passes = 0.0


class RateEstimator:
    """Per-type arrival rates and per-transition extension rates."""

    def __init__(self, decay_interval_events: int = 512) -> None:
        if decay_interval_events < 1:
            raise ValueError(f"decay interval must be >= 1: {decay_interval_events}")
        self._decay_interval = decay_interval_events
        self._events_seen = 0
        self._gap_ewma: float | None = None
        self._last_event_t: float | None = None
        self._type_counts: dict[str, float] = {}
        self._total_count = 0.0
        self._guards: dict[int, _PassCounter] = {}

    # -- observations --------------------------------------------------------
    def observe_event(self, event_type: str, timestamp: float) -> None:
        """Record one stream arrival."""
        self._events_seen += 1
        if self._last_event_t is not None:
            gap = max(timestamp - self._last_event_t, 1e-9)
            if self._gap_ewma is None:
                self._gap_ewma = gap
            else:
                self._gap_ewma = 0.95 * self._gap_ewma + 0.05 * gap
        self._last_event_t = timestamp
        self._type_counts[event_type] = self._type_counts.get(event_type, 0.0) + 1.0
        self._total_count += 1.0
        if self._events_seen % self._decay_interval == 0:
            self._decay()

    def observe_guard(self, transition_index: int, passed: bool) -> None:
        """Record one (run, transition) guard evaluation outcome."""
        counter = self._guards.get(transition_index)
        if counter is None:
            counter = _PassCounter()
            self._guards[transition_index] = counter
        counter.evaluations += 1.0
        if passed:
            counter.passes += 1.0

    def _decay(self) -> None:
        for event_type in self._type_counts:
            self._type_counts[event_type] *= _DECAY
        self._total_count *= _DECAY
        for counter in self._guards.values():
            counter.evaluations *= _DECAY
            counter.passes *= _DECAY

    # -- estimates -------------------------------------------------------------
    def event_rate(self) -> float:
        """Overall stream arrival rate in events per microsecond."""
        if self._gap_ewma is None or self._gap_ewma <= 0:
            return _MIN_RATE
        return 1.0 / self._gap_ewma

    def type_rate(self, event_type: str) -> float:
        """Arrival rate of events of one type."""
        if self._total_count <= 0:
            return _MIN_RATE
        share = self._type_counts.get(event_type, 0.0) / self._total_count
        return max(share * self.event_rate(), _MIN_RATE)

    def extension_rate(self, transition_index: int, event_type: str) -> float:
        """Rate of arrivals that extend a partial match along a transition.

        Before any guard has been observed for the transition, the type rate
        alone is used — an optimistic prior that self-corrects quickly.
        """
        type_rate = self.type_rate(event_type)
        counter = self._guards.get(transition_index)
        if counter is None or counter.evaluations <= 0:
            return type_rate
        pass_fraction = counter.passes / counter.evaluations
        return max(type_rate * pass_fraction, _MIN_RATE)

    def expected_gap(self, transition_index: int, event_type: str) -> float:
        """Expected wait (us) for the next extending arrival: ``1/lambda``."""
        return 1.0 / self.extension_rate(transition_index, event_type)

    def __repr__(self) -> str:
        return (
            f"RateEstimator({self._events_seen} events, rate={self.event_rate():.6f}/us, "
            f"{len(self._guards)} transitions)"
        )

"""Utility modelling: urgent/future utility, rates, noise injection."""

from repro.utility.model import UtilityModel, required_keys
from repro.utility.noise import NoiseModel
from repro.utility.rates import RateEstimator

__all__ = ["UtilityModel", "required_keys", "NoiseModel", "RateEstimator"]

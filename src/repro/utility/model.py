"""The utility model for remote data elements (§4, Alg. 2).

Utility combines two measures per data element ``d``:

* **urgent utility** ``UU(d,k)`` (Eq. 3): the number of current partial
  matches that require ``d`` — or an element contained in ``d`` — to process
  the next event, weighted by the monitored transmission latency.  It is
  maintained incrementally from run creation/drop notifications.
* **future utility** ``FU(d,k,k')`` (Eq. 4): the sum of the element's
  urgent utilities over the future horizon.  Two components realise it:

  - a *residual-lifetime* term computed exactly from the **live** partial
    matches: a run requiring ``d`` keeps contributing to ``UU(d,i)`` for
    every future ``i`` until its window expires, so its future contribution
    is its remaining window lifetime;
  - the stochastic term of Eq. 6 for partial matches that do not exist yet:
    ``horizon * sum_j #P_j(k) * Pr(j,d,k)``, where ``#P_j`` is the recent
    average number of class-``j`` partial matches and ``Pr(j,d,k)`` the
    probability that one requires ``d`` — both from decayed counters (the
    O(1)-amortised stand-in for Alg. 2's sliding-window counts).

  Since Eq. 4 sums *urgent* utilities, which are latency-weighted, both
  components are weighted by the same monitored latency.

The combined utility ``U = omega*UU + (1-omega)*FU`` (Eq. 5) is evaluated
with different weights by the fetch strategies (``omega_fetch``) and the
cost-based cache (``omega_cache``) — Fig. 9's sensitivity experiment sweeps
both.

Requirement counts propagate along the part-of hierarchy: a run requiring a
child element also credits every container, implementing the ``rho*`` terms
of Eq. 3 and Eq. 6.
"""

from __future__ import annotations

from repro.nfa.automaton import Automaton
from repro.nfa.run import Run
from repro.remote.element import DataKey
from repro.remote.monitor import LatencyMonitor
from repro.remote.store import RemoteStore
from repro.utility.noise import NoiseModel

__all__ = ["UtilityModel", "required_keys"]

_DECAY = 0.5


def required_keys(run: Run, include_future_states: bool = False) -> tuple[DataKey, ...]:
    """The remote keys ``D(p, k+1)`` a run may need for its next event.

    For every remote site on the run state's outgoing transitions whose
    lookup key is already derivable from the run's bound events, the
    concrete ``(source, key)`` is produced.  Sites keyed by the upcoming
    input event are unknowable and therefore excluded (they surface through
    lazy evaluation instead).  With ``include_future_states`` the walk
    descends into deeper states as well, covering sites whose key is bound
    now but whose need materialises several transitions later.
    """
    keys: list[DataKey] = []
    pending = list(run.state.transitions)
    env = run.env
    while pending:
        transition = pending.pop()
        for site in transition.sites:
            if site.ref.key_binding in env:
                keys.append(site.ref.concrete_key(env))
        if include_future_states:
            pending.extend(transition.target.transitions)
    return tuple(keys)


class UtilityModel:
    """Incrementally maintained utility estimates for data elements."""

    def __init__(
        self,
        automaton: Automaton,
        store: RemoteStore,
        latency_monitor: LatencyMonitor,
        horizon_events: float | None = None,
        noise: NoiseModel | None = None,
        decay_interval_events: int = 64,
    ) -> None:
        self._automaton = automaton
        self._store = store
        self._monitor = latency_monitor
        self._noise = noise if noise is not None else NoiseModel(0.0)
        self._decay_interval = decay_interval_events
        if horizon_events is None:
            # Eq. 6's (k'-k) horizon: estimate utility up to one window ahead.
            window = automaton.window
            horizon_events = float(window.value) if window.kind == "count" else 256.0
        self._horizon = horizon_events
        # UU: live partial matches requiring each key (Eq. 3 counts), with
        # the run's window anchor kept for residual-lifetime estimation.
        self._uu_runs: dict[DataKey, dict[int, tuple[float, int]]] = {}
        # Alg. 2 state: tranKey(d, j) and tranClass(j) as decayed counters.
        self._tran_key: dict[int, dict[DataKey, float]] = {}
        self._tran_class: dict[int, float] = {}
        # #P_j(k): EWMA of the per-class live-run counts.
        self._class_counts: dict[int, float] = {}
        self._events_seen = 0
        self._now = 0.0

    # -- run lifecycle (driven by the strategy's engine callbacks) ------------
    def on_run_created(self, run: Run) -> None:
        # Count every remote key the run can already name, including needs
        # that materialise several transitions ahead: a partial match at a
        # lookahead class *will* require the element once it reaches the
        # evaluating class, and an element prefetched on its behalf must not
        # look worthless to the cache in the meantime.  (The strict
        # next-event D(p, k+1) would assign zero utility to every fresh
        # prefetch and make the cost-based policy evict them first.)
        keys = required_keys(run, include_future_states=True)
        run.required_keys = keys
        class_index = run.state.index
        self._tran_class[class_index] = self._tran_class.get(class_index, 0.0) + 1.0
        if not keys:
            return
        per_class = self._tran_key.setdefault(class_index, {})
        anchor = (run.first_t, run.first_seq)
        for key in keys:
            per_class[key] = per_class.get(key, 0.0) + 1.0
            for ancestor_key in self._ancestors(key):
                self._uu_runs.setdefault(ancestor_key, {})[run.run_id] = anchor

    def on_run_dropped(self, run: Run) -> None:
        for key in run.required_keys:
            for ancestor_key in self._ancestors(key):
                runs = self._uu_runs.get(ancestor_key)
                if runs is None:
                    continue
                runs.pop(run.run_id, None)
                if not runs:
                    del self._uu_runs[ancestor_key]

    def tick(self, now: float, runs_per_state: dict[int, int]) -> None:
        """Periodic refresh: advance time, update #P_j, decay counters."""
        self._now = now
        self._events_seen += 1
        for state_index in range(self._automaton.n_states):
            current = float(runs_per_state.get(state_index, 0))
            previous = self._class_counts.get(state_index, current)
            self._class_counts[state_index] = 0.9 * previous + 0.1 * current
        if self._events_seen % self._decay_interval == 0:
            for per_class in self._tran_key.values():
                stale = []
                for key in per_class:
                    per_class[key] *= _DECAY
                    if per_class[key] < 0.05:
                        stale.append(key)
                for key in stale:
                    del per_class[key]
            for class_index in self._tran_class:
                self._tran_class[class_index] *= _DECAY

    # -- measures ----------------------------------------------------------------
    def urgent_utility(self, key: DataKey) -> float:
        """``UU(d,k)``: latency-weighted count of runs requiring ``d``."""
        runs = self._uu_runs.get(key)
        if not runs:
            return 0.0
        return len(runs) * self._monitor.estimate(key)

    def _residual_life_events(self, key: DataKey) -> float:
        """Expected remaining relevance, in events, of the key's live runs.

        A run anchored at (t0, k0) stays able to require the element until
        its window closes; the remaining fraction of the window, scaled to
        events, is its exact contribution to the future urgent utilities of
        Eq. 4.
        """
        runs = self._uu_runs.get(key)
        if not runs:
            return 0.0
        window = self._automaton.window
        # Window length expressed in events: count windows carry it directly,
        # time windows are scaled through the (event-denominated) horizon.
        window_events = window.value if window.kind == "count" else self._horizon
        total = 0.0
        for first_t, first_seq in runs.values():
            if window.kind == "count":
                elapsed = (self._events_seen - first_seq) / window.value
            else:
                elapsed = (self._now - first_t) / window.value
            total += max(0.0, 1.0 - elapsed) * window_events
        return total

    def future_utility(self, key: DataKey) -> float:
        """``FU-hat(d,k,k+horizon)`` per Eq. 6 (latency-weighted, see above)."""
        if self._noise.active and self._noise.flip(("fu", key), self._now):
            return 0.0
        stochastic = 0.0
        for class_index, per_class in self._tran_key.items():
            weight = per_class.get(key)
            if not weight:
                continue
            class_total = self._tran_class.get(class_index, 0.0)
            if class_total <= 0:
                continue
            probability = min(weight / class_total, 1.0)
            stochastic += self._class_counts.get(class_index, 0.0) * probability
        residual = self._residual_life_events(key)
        if not stochastic and not residual:
            return 0.0
        return (self._horizon * stochastic + residual) * self._monitor.estimate(key)

    def value(self, key: DataKey, omega: float) -> float:
        """Combined utility ``U(d) = omega*UU + (1-omega)*FU`` (Eq. 5)."""
        if not 0.0 <= omega <= 1.0:
            raise ValueError(f"omega must be in [0, 1]: {omega}")
        return omega * self.urgent_utility(key) + (1.0 - omega) * self.future_utility(key)

    def class_count(self, state_index: int) -> float:
        """``#P_j(k)``: smoothed number of live partial matches of a class."""
        return self._class_counts.get(state_index, 0.0)

    # -- internals ------------------------------------------------------------------
    def _ancestors(self, key: DataKey):
        element = self._store.lookup(key)
        if element.parent is None:
            yield key
            return
        for ancestor in element.ancestors():
            yield ancestor.key

    def __repr__(self) -> str:
        return (
            f"UtilityModel({len(self._uu_runs)} urgent keys, "
            f"{sum(len(v) for v in self._tran_key.values())} tran-key counters)"
        )

"""Utility-estimation noise injection (Fig. 8a's sensitivity experiment).

The paper assesses estimation quality "by injecting noise into the employed
estimations, where a noisy estimation means that an expected partial match
will not actually materialize".  Two consequences of such a wrong
expectation are reproduced:

* the *future-utility* estimate attributed to a data element is wrong
  (here: zeroed), degrading prefetch selection and cost-based eviction; and
* a prefetch issued on behalf of the phantom partial match fetches a
  *useless element* while the actually needed one is missed (here: the
  planned key is replaced by a decoy key absent from the remote store).

Decisions are deterministic per (token, epoch): within an epoch the same
estimation stays corrupted or clean, and decisions refresh as time advances
— mirroring how estimation errors persist while the underlying statistics
are stale.
"""

from __future__ import annotations

from repro.remote.element import DataKey
from repro.sim.rng import stable_hash

__all__ = ["NoiseModel"]

_HASH_SPACE = 2**31


class NoiseModel:
    """Deterministic pseudo-random corruption of utility estimates."""

    def __init__(self, ratio: float, seed: int = 17, epoch_length: float = 10_000.0) -> None:
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"noise ratio must be in [0, 1]: {ratio}")
        if epoch_length <= 0:
            raise ValueError(f"epoch length must be positive: {epoch_length}")
        self.ratio = ratio
        self._seed = seed
        self._epoch_length = epoch_length
        self.corruptions = 0

    @property
    def active(self) -> bool:
        return self.ratio > 0.0

    def flip(self, token: tuple, now: float) -> bool:
        """Whether the estimation identified by ``token`` is corrupted now."""
        if not self.active:
            return False
        epoch = int(now / self._epoch_length)
        bucket = stable_hash(token, epoch, self._seed) % _HASH_SPACE
        corrupted = bucket < self.ratio * _HASH_SPACE
        if corrupted:
            self.corruptions += 1
        return corrupted

    def decoy_key(self, key: DataKey) -> DataKey:
        """A lookup key for a non-existent element (a useless prefetch)."""
        return (key[0], ("__noise__", key[1]))

    def __repr__(self) -> str:
        return f"NoiseModel(ratio={self.ratio}, corruptions={self.corruptions})"

"""The per-session shedding unit: detector + policy + accounting.

A :class:`LoadShedder` is attached to a
:class:`~repro.runtime.session.QuerySession` by the composition root
(:class:`~repro.runtime.builder.RuntimeBuilder` — nothing else may build
one, enforced by analysis rule A5) and consulted by the dispatch loop at
two points per input event:

* :meth:`before_event` — may drop the input event for this session
  (eSPICE-style shedding happens *before* NFA evaluation, so a dropped
  event costs neither guard evaluations nor fresh partial matches);
* :meth:`after_event` — may evict partial matches from the engine
  (pSPICE-style shedding happens *after* the step, when the population
  reflects the event's effect).

Every consult samples the :class:`~repro.shedding.detector.OverloadDetector`
with the event's queueing lag and the engine's live-run count; policies are
only asked anything while overloaded, so the healthy path costs two
comparisons.  Actions are counted on registered ``shed.*`` metrics and
emitted as ``shed_decision`` trace records carrying the detector inputs, so
:func:`repro.obs.provenance.verify_shed_record` can replay each decision.
"""

from __future__ import annotations

from typing import Any

from repro.obs.registry import MetricsRegistry, ScopedRegistry
from repro.obs.trace import CAT_SHED, NULL_TRACER, Tracer
from repro.shedding.detector import OverloadDetector
from repro.shedding.policy import ACTION_DROP_EVENT, ACTION_SHED_RUNS, SheddingPolicy

__all__ = ["ShedStats", "SHED_COUNTER_KEYS", "LoadShedder"]

#: Registered ``shed.*`` counters, in report order.
SHED_COUNTER_KEYS = (
    "overloads",
    "events_dropped",
    "runs_shed",
)


class ShedStats:
    """Registry view of the shedding counters (``shed.<key>`` cells)."""

    __slots__ = ("_cells",)

    def __init__(self, registry: MetricsRegistry | ScopedRegistry | None = None) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self._cells = {key: registry.counter(f"shed.{key}") for key in SHED_COUNTER_KEYS}

    def as_dict(self) -> dict[str, Any]:
        return {key: self._cells[key].value for key in SHED_COUNTER_KEYS}

    def inc(self, key: str, amount: int = 1) -> None:
        self._cells[key].inc(amount)

    def __getitem__(self, key: str) -> int:
        return self._cells[key].value


class LoadShedder:
    """Overload control for one query session."""

    __slots__ = ("detector", "policy", "stats", "_clock", "_tracer", "_label")

    def __init__(
        self,
        detector: OverloadDetector,
        policy: SheddingPolicy,
        clock,
        metrics: MetricsRegistry | ScopedRegistry | None = None,
        tracer: Tracer = NULL_TRACER,
        label: str = "",
    ) -> None:
        self.detector = detector
        self.policy = policy
        self.stats = ShedStats(metrics)
        self._clock = clock
        self._tracer = tracer
        self._label = label

    # -- dispatch hooks -------------------------------------------------------
    def before_event(self, event, engine) -> bool:
        """Whether this session should drop ``event`` (skip NFA evaluation)."""
        now = self._clock.now
        overload = self.detector.assess(now - event.t, engine.active_runs, now)
        if overload is None:
            return False
        self.stats.inc("overloads")
        decision = self.policy.on_overload_event(overload, event, engine)
        if decision is None:
            return False
        self.stats.inc("events_dropped")
        self._trace(decision.action, overload, decision.fields)
        return True

    def after_event(self, event, engine, strategy) -> int:
        """Evict partial matches if the policy says so; returns the count."""
        now = self._clock.now
        overload = self.detector.assess(now - event.t, engine.active_runs, now)
        if overload is None:
            return 0
        self.stats.inc("overloads")
        decision = self.policy.on_overload_post(overload, engine, strategy)
        if decision is None:
            return 0
        victims = int(decision.fields.get("victims", 0))
        self.stats.inc("runs_shed", victims)
        self._trace(decision.action, overload, decision.fields)
        return victims

    # -- tracing --------------------------------------------------------------
    def _trace(self, action: str, overload, fields: dict[str, Any]) -> None:
        tracer = self._tracer
        if tracer.enabled:
            record: dict[str, Any] = {
                "policy": self.policy.name,
                "action": action,
                "lag": overload.lag,
                "latency_bound": self.detector.latency_bound,
                "active": overload.active,
                "run_budget": self.detector.run_budget,
            }
            if self.detector.slo is not None:
                # Only SLO-consuming detectors stamp the burn: existing
                # traces (and their goldens) keep their exact field set.
                record["slo_burn"] = overload.slo_burn
            if self._label:
                record["query"] = self._label
            record.update(fields)
            tracer.emit(CAT_SHED, "shed_decision", self._clock.now, **record)

    def __repr__(self) -> str:
        return f"LoadShedder({self.policy.name}, {self.detector!r})"


# Re-exported action names for dispatch-side checks and tests.
__all__ += ["ACTION_DROP_EVENT", "ACTION_SHED_RUNS"]

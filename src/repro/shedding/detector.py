"""Overload detection for the load-shedding plane.

Overload is observable entirely in virtual time: the dispatch loop advances
the shared clock to each event's arrival time *or later* — when an engine is
behind (stalled on remote data, or drowning in partial matches), the clock
has already moved past the event's timestamp and the difference is exactly
the queueing delay the event suffered (§2.2's detection-latency
decomposition).  The detector samples that lag, plus the engine's active
partial-match population, against two configured bounds:

* ``latency_bound`` — the maximum tolerable queueing delay in virtual us
  (the eSPICE-style latency bound: beyond it, input events are worth less
  than the delay they add);
* ``run_budget`` — the maximum tolerable number of live partial matches
  (the pSPICE-style state budget: beyond it, per-event evaluation cost
  itself breaks the latency bound).

Either bound may be ``None`` (unmonitored).  An optional
:class:`~repro.obs.slo.SloPlane` adds a third trigger: when the plane's
worst burn rate exceeds 1.0 — some declared objective (end-to-end latency
percentile, recall floor, fetch budget) is being violated — the detector
reports overload even while the raw lag/population samples look healthy.
``assess`` is a pure function of its inputs and the SLO plane's recorded
observations — no RNG, no wall clock — so shedding decisions replay
byte-identically and their trace records can be verified offline
(:func:`repro.obs.provenance.verify_shed_record`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Overload", "OverloadDetector"]


@dataclass(frozen=True)
class Overload:
    """One positive overload assessment (inputs and which bounds tripped).

    ``severity`` is how far past the worst bound the sample sits, as a
    ratio (> 1.0 by construction): ``max(lag/latency_bound,
    active/run_budget, slo_burn)`` over the configured bounds.  Policies
    use it to scale how aggressively they shed.  ``slo_burn`` is 0.0
    unless the detector consults an SLO plane.
    """

    lag: float
    active: int
    latency_exceeded: bool
    budget_exceeded: bool
    severity: float
    slo_burn: float = 0.0
    slo_exceeded: bool = False

    @property
    def both(self) -> bool:
        return self.latency_exceeded and self.budget_exceeded


class OverloadDetector:
    """Samples (queueing lag, active runs) against the configured bounds.

    ``slo`` is an optional :class:`~repro.obs.slo.SloPlane`; when attached,
    a worst burn rate above 1.0 is itself an overload signal and folds into
    the severity (the plane caches its burn computation, so the per-event
    cost of consulting it is one comparison between refreshes).
    """

    __slots__ = ("latency_bound", "run_budget", "slo")

    def __init__(
        self,
        latency_bound: float | None = None,
        run_budget: int | None = None,
        slo=None,
    ) -> None:
        if latency_bound is not None and latency_bound <= 0:
            raise ValueError(f"latency_bound must be positive: {latency_bound}")
        if run_budget is not None and run_budget < 1:
            raise ValueError(f"run_budget must be >= 1: {run_budget}")
        if latency_bound is None and run_budget is None and slo is None:
            raise ValueError("an overload detector needs at least one bound")
        self.latency_bound = latency_bound
        self.run_budget = run_budget
        self.slo = slo

    def assess(self, lag: float, active: int, now: float | None = None) -> Overload | None:
        """The overload state for one sample, or ``None`` when within bounds.

        ``now`` (the sample's virtual time) is only needed when an SLO
        plane is attached; callers without one may omit it.
        """
        latency_exceeded = self.latency_bound is not None and lag > self.latency_bound
        budget_exceeded = self.run_budget is not None and active > self.run_budget
        slo_burn = 0.0
        if self.slo is not None and now is not None:
            slo_burn = self.slo.worst_burn(now)
        slo_exceeded = slo_burn > 1.0
        if not latency_exceeded and not budget_exceeded and not slo_exceeded:
            return None
        severity = 0.0
        if self.latency_bound is not None:
            severity = lag / self.latency_bound
        if self.run_budget is not None:
            severity = max(severity, active / self.run_budget)
        severity = max(severity, slo_burn)
        return Overload(
            lag=lag,
            active=active,
            latency_exceeded=latency_exceeded,
            budget_exceeded=budget_exceeded,
            severity=severity,
            slo_burn=slo_burn,
            slo_exceeded=slo_exceeded,
        )

    def __repr__(self) -> str:
        return (
            f"OverloadDetector(latency_bound={self.latency_bound}, "
            f"run_budget={self.run_budget}, slo={'on' if self.slo is not None else 'off'})"
        )

"""Shedding policies: what to drop once the detector reports overload.

Three policies ship behind the registry, mirroring the eSPICE/pSPICE line
of input-event vs. partial-match shedding:

* ``none`` — never drops anything.  The composition root does not even
  build a :class:`~repro.shedding.shedder.LoadShedder` for it, so the
  default configuration is byte-identical to a build without the plane.
* ``events`` (eSPICE-style) — under overload, drop input events whose
  *utility* — the partial matches they could advance, weighted by how close
  each is to completion — falls below a cutoff that scales with the
  overload's severity: just past the bound only zero-utility events go
  (all they could do is open fresh runs); the deeper the lag, the higher
  the cutoff climbs through the running average of recent utilities.
* ``runs`` (pSPICE-style) — under overload, evict the lowest-utility
  partial matches down to the run budget (or, latency-bound-only, to half
  the current population).  Utility follows the Eq. 5 shape the prefetch
  plane uses for data elements, transposed to partial matches: the urgent
  component is the progress already invested (bound events over pattern
  length), the future component the run's residual window lifetime — the
  exact term :meth:`repro.utility.model.UtilityModel._residual_life_events`
  computes for element scoring — combined with the same ``omega`` weighting
  and discounted by unresolved obligations (a run that may yet fail its
  postponed predicates is cheaper to lose).

Every score is a pure function of run/engine state and virtual time — ties
break on ``run_id`` (creation order) — so shedding decisions are
deterministic and replay-verifiable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.shedding.detector import Overload

__all__ = [
    "SHED_NONE",
    "SHED_EVENTS",
    "SHED_RUNS",
    "SHED_POLICIES",
    "ShedDecision",
    "SheddingPolicy",
    "NoShedding",
    "EventShedding",
    "RunShedding",
    "make_shedding_policy",
    "partial_match_utility",
    "event_utility",
]

SHED_NONE = "none"
SHED_EVENTS = "events"
SHED_RUNS = "runs"

#: Latency-bound-only run shedding keeps this fraction of the population
#: (with a budget configured, the budget itself is the target).
RUNS_KEEP_FRACTION = 0.5

ACTION_DROP_EVENT = "drop_event"
ACTION_SHED_RUNS = "shed_runs"


def partial_match_utility(run, automaton, now: float, events_seen: int, omega: float) -> float:
    """Eq. 5 transposed to a partial match: ``omega*UU + (1-omega)*FU``.

    The urgent component is the fraction of the pattern already bound (work
    invested that eviction would waste); the future component is the
    remaining fraction of the run's window (how long it can still complete).
    Unresolved obligations discount the whole score: such a run is
    speculative and may be killed by its postponed predicates anyway.
    """
    bindable = max(automaton.n_states - 1, 1)
    progress = min(len(run.env) / bindable, 1.0)
    window = automaton.window
    if window.kind == "count":
        elapsed = (events_seen - run.first_seq) / window.value
    else:
        elapsed = (now - run.first_t) / window.value
    residual = max(0.0, 1.0 - elapsed)
    score = omega * progress + (1.0 - omega) * residual
    return score / (1.0 + len(run.obligations))


def event_utility(event, engine, automaton) -> float:
    """eSPICE-style utility of one input event for one engine.

    The sum, over every automaton class the event's type can advance, of the
    live partial matches in the event's partition weighted by the class's
    progress through the pattern.  Zero means the event cannot extend any
    live run — its only possible contribution is opening new ones.
    """
    depth_scale = max(automaton.n_states - 1, 1)
    total = 0.0
    for state_index, count in engine.extendable_runs(event):
        total += count * (state_index / depth_scale)
    return total


@dataclass(frozen=True)
class ShedDecision:
    """One shedding action, with the inputs that justify it (for tracing)."""

    action: str
    fields: dict[str, Any] = field(default_factory=dict)


class SheddingPolicy:
    """Decision hooks consulted by the :class:`LoadShedder` under overload."""

    name = "?"

    def on_overload_event(self, overload: Overload, event, engine) -> ShedDecision | None:
        """Before the engine evaluates ``event``: drop it?  (eSPICE hook)"""
        return None

    def on_overload_post(self, overload: Overload, engine, strategy) -> ShedDecision | None:
        """After an event was evaluated: evict partial matches?  (pSPICE hook)"""
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoShedding(SheddingPolicy):
    """Today's behaviour: overload is observed but nothing is dropped."""

    name = SHED_NONE


class EventShedding(SheddingPolicy):
    """eSPICE-style input-event shedding (drop before NFA evaluation).

    The cutoff adapts to the overload's depth: at severity just past 1.0
    only zero-utility events (which can open runs but extend none) are
    dropped; as lag keeps climbing, the cutoff rises through the running
    average of recent event utilities, shedding below-average events first
    and, in deep overload, everything but the top performers — the
    deterministic analogue of eSPICE tying its drop ratio to the violation
    of the latency bound.  The exponential average is a pure function of
    the consulted event sequence, and each decision records the cutoff it
    compared against, so replay verification needs no private state.
    """

    name = SHED_EVENTS

    def __init__(self, automaton, threshold: float = 0.0, ewma_alpha: float = 0.125) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1]: {ewma_alpha}")
        self.automaton = automaton
        self.threshold = threshold
        self.ewma_alpha = ewma_alpha
        self._ewma = 0.0

    def on_overload_event(self, overload: Overload, event, engine) -> ShedDecision | None:
        utility = event_utility(event, engine, self.automaton)
        cutoff = self.threshold + self._ewma * max(overload.severity - 1.0, 0.0)
        self._ewma += self.ewma_alpha * (utility - self._ewma)
        if utility > cutoff:
            return None
        return ShedDecision(
            ACTION_DROP_EVENT,
            {"event_seq": event.seq, "utility": utility, "cutoff": cutoff},
        )


class RunShedding(SheddingPolicy):
    """pSPICE-style partial-match eviction, utility-scored per Eq. 5."""

    name = SHED_RUNS

    def __init__(self, automaton, omega: float, run_budget: int | None = None) -> None:
        if not 0.0 <= omega <= 1.0:
            raise ValueError(f"omega must be in [0, 1]: {omega}")
        self.automaton = automaton
        self.omega = omega
        self.run_budget = run_budget

    def target_population(self, active: int) -> int:
        """How many runs to keep: the budget, else half the population."""
        if self.run_budget is not None:
            return self.run_budget
        return int(active * RUNS_KEEP_FRACTION)

    def on_overload_post(self, overload: Overload, engine, strategy) -> ShedDecision | None:
        active = engine.active_runs
        target = self.target_population(active)
        excess = active - target
        if excess <= 0:
            return None
        now = engine.clock.now
        events_seen = engine.stats.events_processed
        automaton, omega = self.automaton, self.omega

        def score(run) -> float:
            return partial_match_utility(run, automaton, now, events_seen, omega)

        victims = engine.shed_lowest(excess, score, strategy)
        return ShedDecision(
            ACTION_SHED_RUNS,
            {"victims": victims, "target": target, "before": active},
        )


SHED_POLICIES = {
    SHED_NONE: NoShedding,
    SHED_EVENTS: EventShedding,
    SHED_RUNS: RunShedding,
}


def make_shedding_policy(
    name: str,
    automaton=None,
    omega: float = 0.5,
    run_budget: int | None = None,
    event_threshold: float = 0.0,
) -> SheddingPolicy:
    """Instantiate a policy by registry name (the composition root's entry)."""
    if name == SHED_NONE:
        return NoShedding()
    if name == SHED_EVENTS:
        return EventShedding(automaton, threshold=event_threshold)
    if name == SHED_RUNS:
        return RunShedding(automaton, omega=omega, run_budget=run_budget)
    raise ValueError(f"unknown shedding policy {name!r}; choose from {sorted(SHED_POLICIES)}")

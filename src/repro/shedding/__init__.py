"""Utility-aware load shedding: bounded detection latency under overload.

The overload-control plane in three parts, assembled exclusively by the
composition root (:class:`~repro.runtime.builder.RuntimeBuilder`):

* :mod:`repro.shedding.detector` — samples per-event queueing lag (virtual
  time) and the live partial-match population against configured bounds;
* :mod:`repro.shedding.policy` — the registry of shedding policies:
  ``none`` (byte-identical to no plane at all), ``events`` (eSPICE-style
  input-event shedding), ``runs`` (pSPICE-style Eq. 5 utility-scored
  partial-match eviction);
* :mod:`repro.shedding.shedder` — the per-session unit the dispatch loop
  consults, with registered ``shed.*`` counters and replay-verifiable
  ``shed_decision`` trace records.

See ``docs/shedding.md`` for the full model and knobs.
"""

from repro.shedding.detector import Overload, OverloadDetector
from repro.shedding.policy import (
    SHED_EVENTS,
    SHED_NONE,
    SHED_POLICIES,
    SHED_RUNS,
    EventShedding,
    NoShedding,
    RunShedding,
    ShedDecision,
    SheddingPolicy,
    event_utility,
    make_shedding_policy,
    partial_match_utility,
)
from repro.shedding.shedder import SHED_COUNTER_KEYS, LoadShedder, ShedStats

__all__ = [
    "Overload",
    "OverloadDetector",
    "SHED_NONE",
    "SHED_EVENTS",
    "SHED_RUNS",
    "SHED_POLICIES",
    "SHED_COUNTER_KEYS",
    "SheddingPolicy",
    "ShedDecision",
    "NoShedding",
    "EventShedding",
    "RunShedding",
    "make_shedding_policy",
    "partial_match_utility",
    "event_utility",
    "LoadShedder",
    "ShedStats",
]

"""Seeded random-number helpers for reproducible workloads.

Every stochastic component of the reproduction (synthetic event payloads,
arrival processes, transmission-latency draws, utility-estimation noise)
derives its randomness from an explicit :class:`random.Random` instance so
that a single seed reproduces an entire experiment.  ``spawn`` derives
independent sub-generators from a parent, so components do not interleave
draws and stay reproducible even if one component changes how many numbers
it consumes.
"""

from __future__ import annotations

import random
import zlib

__all__ = ["make_rng", "spawn", "stable_hash"]

_SPAWN_SALT = 0x9E3779B97F4A7C15  # golden-ratio constant, decorrelates streams
_MASK = (1 << 64) - 1
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB


def stable_hash(*parts) -> int:
    """A 64-bit hash of ``parts`` that is stable across processes.

    Python's built-in ``hash`` randomises string hashing per process
    (``PYTHONHASHSEED``), which would make workloads whose payloads derive
    from hashed labels unreproducible.  This splitmix-style mixer handles
    ints directly, strings/bytes via CRC-32, floats via their bit pattern,
    and tuples recursively.
    """
    h = _SPAWN_SALT
    for part in parts:
        if isinstance(part, bool):
            value = int(part)
        elif isinstance(part, int):
            value = part & _MASK
        elif isinstance(part, str):
            value = zlib.crc32(part.encode("utf-8"))
        elif isinstance(part, bytes):
            value = zlib.crc32(part)
        elif isinstance(part, float):
            value = hash(part) & _MASK  # int-derived, stable for floats
        elif isinstance(part, tuple):
            value = stable_hash(*part)
        elif part is None:
            value = 0x5EED
        else:
            raise TypeError(f"stable_hash cannot digest {type(part).__name__}: {part!r}")
        h = ((h ^ (value * _MIX_A & _MASK)) * _MIX_B) & _MASK
        h ^= h >> 31
    return h


def make_rng(seed: int | None = 42) -> random.Random:
    """Create a seeded ``random.Random``.

    ``None`` yields OS entropy; experiments should always pass an ``int``.
    """
    return random.Random(seed)


def spawn(parent: random.Random, label: str) -> random.Random:
    """Derive an independent child generator from ``parent``.

    The child's seed mixes a draw from the parent with a hash of ``label``,
    so distinct labels produce decorrelated streams while remaining a pure
    function of the parent's state and the label.
    """
    base = parent.getrandbits(64)
    return random.Random(stable_hash(base, label))

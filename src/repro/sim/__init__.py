"""Virtual-time simulation substrate: clock, deferred-action scheduler, RNG."""

from repro.sim.clock import VirtualClock
from repro.sim.rng import make_rng, spawn, stable_hash
from repro.sim.scheduler import FutureScheduler, ScheduledItem

__all__ = [
    "VirtualClock",
    "FutureScheduler",
    "ScheduledItem",
    "make_rng",
    "spawn",
    "stable_hash",
]

"""Virtual-time clock for the EIRES discrete-event simulation.

All latencies reported by this reproduction are measured in *virtual
microseconds*.  The paper (§7) measures wall-clock latency of a C++ engine;
here, every cost the engine incurs (per-event base processing, per-partial-
match evaluation, remote-data transmission stalls, queueing behind a busy
engine) is charged explicitly against a :class:`VirtualClock`.  This makes
runs deterministic and makes the latency decomposition of Eq. 2,
``l(c) = l_match(c) + l_fetch(c)``, directly observable.

Time is represented as a ``float`` number of microseconds since the start of
the simulation.  Microseconds are the natural unit because the synthetic
experiments of the paper use transmission latencies of 10--100 us and report
query latencies in the same range.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically advancing virtual clock.

    The clock models the point in time up to which the (single-threaded) CEP
    engine has finished work.  Components advance it by charging costs::

        clock.advance(cost_us)     # engine did `cost_us` of work
        clock.advance_to(t)        # engine idled/stalled until time `t`

    Attempts to move the clock backwards raise ``ValueError`` — a virtual
    clock that rewinds indicates a scheduling bug, and such bugs must not
    pass silently.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Advance the clock by ``delta`` microseconds and return the new time.

        ``delta`` must be non-negative; a zero advance is permitted (some
        operations are modelled as free).
        """
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta: {delta}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to an absolute ``timestamp``, if it is later.

        Unlike :meth:`advance`, this is a *wait-until* operation: if the
        target lies in the past, the clock is left unchanged.  This is the
        idiom for "the engine is free at ``now`` but the next event only
        arrives at ``timestamp``" and for "processing resumes once the remote
        data has arrived".
        """
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock (used between independent experiment runs)."""
        if start < 0:
            raise ValueError(f"clock cannot reset to negative time: {start}")
        self._now = float(start)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.3f}us)"

"""Future-completion scheduler for the virtual-time simulation.

The EIRES strategies issue *asynchronous* work whose effects materialise at a
later virtual time: a prefetch request lands in the cache ``l_remote(d)``
microseconds after it is issued (§5.1), and estimated-arrival prefetch timing
(Alg. 3, line 11) schedules a fetch to be issued only after a computed offset
has elapsed.  The :class:`FutureScheduler` is the single place where such
deferred actions are kept, ordered by their due time.

The scheduler is deliberately minimal: it holds ``(due_time, seq, payload)``
entries in a heap and releases every entry whose due time has been reached.
Callers decide what a payload means; the simulator core only guarantees
ordering and a stable FIFO tie-break for equal due times.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator

__all__ = ["FutureScheduler", "ScheduledItem"]


class ScheduledItem:
    """A payload scheduled to become due at a fixed virtual time."""

    __slots__ = ("due", "seq", "payload")

    def __init__(self, due: float, seq: int, payload: Any) -> None:
        self.due = due
        self.seq = seq
        self.payload = payload

    def __lt__(self, other: "ScheduledItem") -> bool:
        if self.due != other.due:
            return self.due < other.due
        return self.seq < other.seq

    def __repr__(self) -> str:
        return f"ScheduledItem(due={self.due:.3f}, payload={self.payload!r})"


class FutureScheduler:
    """Min-heap of payloads ordered by virtual due time.

    Example::

        sched = FutureScheduler()
        sched.schedule(due=150.0, payload=("arrive", element))
        ...
        for payload in sched.pop_due(clock.now):
            handle(payload)
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[ScheduledItem] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, due: float, payload: Any) -> ScheduledItem:
        """Register ``payload`` to become due at virtual time ``due``."""
        if due < 0:
            raise ValueError(f"cannot schedule at negative time: {due}")
        item = ScheduledItem(due, self._seq, payload)
        self._seq += 1
        heapq.heappush(self._heap, item)
        return item

    def peek_due(self) -> float | None:
        """Due time of the earliest pending item, or ``None`` if empty."""
        if not self._heap:
            return None
        return self._heap[0].due

    def pop_due(self, now: float) -> Iterator[Any]:
        """Yield payloads of every item whose due time is ``<= now``.

        Items are yielded in (due, insertion) order.  The iterator is lazy,
        but popping stops as soon as the earliest remaining item lies in the
        future, so partially consuming it leaves the heap consistent.
        """
        while self._heap and self._heap[0].due <= now:
            yield heapq.heappop(self._heap).payload

    def drain(self) -> Iterator[Any]:
        """Yield all remaining payloads in due order (end-of-run flush)."""
        while self._heap:
            yield heapq.heappop(self._heap).payload

    def clear(self) -> None:
        """Discard all pending items."""
        self._heap.clear()

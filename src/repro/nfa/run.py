"""Partial matches (automaton runs) and postponed-predicate obligations.

A :class:`Run` is one partial match: the state it occupies and the events
bound so far.  Under lazy evaluation (§5.2) and BL3, remote predicates may be
*postponed*: the run then carries :class:`Obligation` records that must all
hold before the run can produce a match.

Obligations also encode correctness under the non-greedy policy.  If a
transition's remote predicate cannot be resolved, a skip-till-next-match
engine cannot yet know whether the input event should have been consumed.
EIRES resolves this by splitting: the extended run carries the obligation
``p`` while the retained original carries the *negated* obligation ``¬p``.
Whichever way the remote data decides ``p``, exactly one branch survives, so
the final match set is identical to an oracle engine that had the data all
along — the cost is precisely the extra partial matches that LzEval's benefit
model (Eq. 8) accounts for.
"""

from __future__ import annotations

from typing import Mapping

from repro.events.event import Event
from repro.nfa.automaton import State, Transition
from repro.query.predicates import Predicate

__all__ = ["Obligation", "Run"]


class Obligation:
    """A postponed predicate group the run's survival is conditioned on.

    ``negated=False`` requires *all* predicates to evaluate to ``True`` (the
    extended branch of a split: the transition really fired).
    ``negated=True`` requires *at least one* to be ``False`` (the retained
    branch of a non-greedy split: the transition would not have fired).

    ``origin`` is the transition at which postponement happened —
    LzEval's adapted procedure (L2) consults it to decide whether a run that
    has meanwhile reached class ``m`` may keep postponing (``m`` in
    ``succ(j)``) or must block.  ``ell_estimate`` is the transmission-latency
    estimate at postponement time, the other input to that decision.
    Obligation objects are immutable and may be shared between a run and its
    extensions; each run tracks its own remaining obligations.
    """

    __slots__ = ("predicates", "negated", "env", "origin", "ell_estimate", "issued_at")

    def __init__(
        self,
        predicates: tuple[Predicate, ...],
        negated: bool,
        issued_at: float,
        env: Mapping[str, Event],
        origin: "Transition | None" = None,
        ell_estimate: float = 0.0,
    ) -> None:
        if not predicates:
            raise ValueError("an obligation needs at least one predicate")
        self.predicates = predicates
        self.negated = negated
        # The guard-evaluation environment at postponement time.  The
        # *retained* branch of a non-greedy split does not bind the
        # candidate event, so its NOT(p) obligation can only be checked
        # against this snapshot — a run's own env would lack the binding.
        self.env = env
        self.origin = origin
        self.ell_estimate = ell_estimate
        self.issued_at = issued_at

    def __repr__(self) -> str:
        inner = " AND ".join(repr(p) for p in self.predicates)
        if self.negated:
            return f"Obligation(NOT({inner}))"
        return f"Obligation({inner})"


class Run:
    """One partial match of the automaton.

    Runs are persistent-by-copy: :meth:`extend` produces a new run with one
    more binding, leaving the original untouched (the greedy policy keeps
    both alive).  ``created_at`` is the virtual time the run entered its
    current state — the anchor for prefetch offset timing (Alg. 3 line 11).
    """

    __slots__ = (
        "run_id",
        "state",
        "env",
        "first_t",
        "first_seq",
        "last_seq",
        "obligations",
        "created_at",
        "required_keys",
    )

    _next_id = 0

    def __init__(
        self,
        state: State,
        env: dict[str, Event],
        first_t: float,
        first_seq: int,
        last_seq: int,
        obligations: tuple[Obligation, ...],
        created_at: float,
    ) -> None:
        self.run_id = Run._next_id
        Run._next_id += 1
        self.state = state
        self.env = env
        self.first_t = first_t
        self.first_seq = first_seq
        self.last_seq = last_seq
        self.obligations = obligations
        self.created_at = created_at
        # Concrete remote keys this run needs to process upcoming events
        # (the paper's D(p, k+1)); filled in by the strategy's utility
        # bookkeeping when the run is registered.
        self.required_keys: tuple = ()

    @classmethod
    def start(cls, state: State, binding: str, event: Event, created_at: float) -> "Run":
        """Create a fresh run from the first selected event."""
        return cls(
            state=state,
            env={binding: event},
            first_t=event.t,
            first_seq=event.seq,
            last_seq=event.seq,
            obligations=(),
            created_at=created_at,
        )

    def extend(
        self,
        transition: Transition,
        event: Event,
        new_obligations: tuple[Obligation, ...],
        created_at: float,
    ) -> "Run":
        """The run that results from consuming ``event`` along ``transition``."""
        env = dict(self.env)
        env[transition.binding] = event
        return Run(
            state=transition.target,
            env=env,
            first_t=self.first_t,
            first_seq=self.first_seq,
            last_seq=event.seq,
            obligations=self.obligations + new_obligations,
            created_at=created_at,
        )

    def add_obligations(self, extra: tuple[Obligation, ...]) -> None:
        """Attach further obligations (the retained branch of a split)."""
        self.obligations = self.obligations + extra

    @property
    def has_obligations(self) -> bool:
        return bool(self.obligations)

    def events(self) -> Mapping[str, Event]:
        return self.env

    def __repr__(self) -> str:
        bound = ",".join(self.env)
        pending = f", {len(self.obligations)} pending" if self.obligations else ""
        return f"Run(#{self.run_id} at {self.state.name}, bound=[{bound}]{pending})"

"""The automata-based evaluation model (Fig. 2 of the paper).

A query compiles into a prefix tree of *states* (the paper's classes of
partial matches): the root is the empty match, each non-root state binds one
more event atom, and the leaves of complete paths are final states.  OR
branches diverge after their shared prefix, exactly as ``q1`` fans out in
Fig. 2.  The tree shape gives the partial order over classes (``j < m`` iff
``j`` is an ancestor of ``m``) that PFetch's lookahead timing (Alg. 3) walks.

*Remote sites* are the unit the fetching strategies reason about: one site
per (transition, remote predicate, remote reference), annotated with the
state at which the reference's lookup key becomes known.  A site whose key
is bound strictly before the evaluating transition admits prefetching; a
site keyed by the current input event can only be handled by blocking or
lazy evaluation.
"""

from __future__ import annotations

from typing import Iterator

from repro.query.ast import EventAtom, Window
from repro.query.predicates import Predicate, RemoteRef

__all__ = ["State", "Transition", "RemoteSite", "Automaton"]


class State:
    """One class of partial matches."""

    __slots__ = (
        "index",
        "parent",
        "depth",
        "entry_binding",
        "path_bindings",
        "is_final",
        "transitions",
        "_final_reachable",
    )

    def __init__(
        self,
        index: int,
        parent: "State | None",
        entry_binding: str | None,
    ) -> None:
        self.index = index
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1
        self.entry_binding = entry_binding
        if parent is None:
            self.path_bindings: tuple[str, ...] = ()
        else:
            self.path_bindings = parent.path_bindings + (entry_binding,)
        self.is_final = False
        self.transitions: list[Transition] = []
        self._final_reachable = False

    @property
    def name(self) -> str:
        return f"q{self.index}"

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def ancestors(self) -> Iterator["State"]:
        """This state and all states above it, nearest first (reflexive)."""
        node: State | None = self
        while node is not None:
            yield node
            node = node.parent

    def precedes(self, other: "State") -> bool:
        """Partial order over classes: ``self < other`` (strict ancestor)."""
        return self is not other and any(node is self for node in other.ancestors())

    def __repr__(self) -> str:
        suffix = " final" if self.is_final else ""
        return f"State({self.name}, path={'/'.join(self.path_bindings) or '<root>'}{suffix})"


class Transition:
    """A guarded edge ``source -> target`` binding one event atom.

    The guard is split into *local* predicates (payload, correlation,
    implicit type check) and *remote* predicates; the window constraint is
    enforced by the engine, not stored here.
    """

    __slots__ = ("index", "source", "target", "atom", "local_predicates", "remote_predicates", "sites")

    def __init__(
        self,
        index: int,
        source: State,
        target: State,
        atom: EventAtom,
        local_predicates: tuple[Predicate, ...],
        remote_predicates: tuple[Predicate, ...],
    ) -> None:
        self.index = index
        self.source = source
        self.target = target
        self.atom = atom
        self.local_predicates = local_predicates
        self.remote_predicates = remote_predicates
        self.sites: tuple[RemoteSite, ...] = ()

    @property
    def event_type(self) -> str:
        return self.atom.event_type

    @property
    def binding(self) -> str:
        return self.atom.binding

    def __repr__(self) -> str:
        return (
            f"Transition({self.source.name}->{self.target.name}, "
            f"{self.event_type} {self.binding}, {len(self.local_predicates)} local, "
            f"{len(self.remote_predicates)} remote)"
        )


class RemoteSite:
    """One remote reference inside one transition guard.

    ``bound_at`` is the state on the path at which the reference's key
    binding is available, or ``None`` when the key comes from the current
    input event (no prefetching possible).  ``lookahead_states`` enumerates
    the prefetch trigger candidates — entering any of them makes the key
    known — ordered from closest-to-the-need (the transition's source) back
    to ``bound_at``, which is the order Alg. 3 walks.
    """

    __slots__ = ("site_id", "transition", "predicate", "ref", "bound_at", "lookahead_states")

    def __init__(
        self,
        site_id: int,
        transition: Transition,
        predicate: Predicate,
        ref: RemoteRef,
        bound_at: State | None,
    ) -> None:
        self.site_id = site_id
        self.transition = transition
        self.predicate = predicate
        self.ref = ref
        self.bound_at = bound_at
        if bound_at is None:
            self.lookahead_states: tuple[State, ...] = ()
        else:
            states = []
            for state in transition.source.ancestors():
                states.append(state)
                if state is bound_at:
                    break
            self.lookahead_states = tuple(states)

    @property
    def prefetchable(self) -> bool:
        """Whether the key is derivable from a partial match before the need."""
        return self.bound_at is not None

    @property
    def source(self) -> str:
        return self.ref.source

    def __repr__(self) -> str:
        bound = self.bound_at.name if self.bound_at is not None else "<input event>"
        return f"RemoteSite(#{self.site_id}, {self.ref!r} at {self.transition!r}, key bound at {bound})"


class Automaton:
    """The compiled evaluation model of one query."""

    def __init__(
        self,
        states: list[State],
        window: Window,
        name: str = "query",
        partition_attr: str | None = None,
    ) -> None:
        if not states or not states[0].is_root:
            raise ValueError("automaton needs a root state at index 0")
        self.states = states
        self.root = states[0]
        self.window = window
        self.name = name
        # A SAME[attr] correlation lets the engine index partial matches by
        # that attribute's value: an input event can only ever extend runs
        # whose partition matches, so dispatch skips all others.
        self.partition_attr = partition_attr
        self.transitions: list[Transition] = [
            transition for state in states for transition in state.transitions
        ]
        self.final_states = [state for state in states if state.is_final]
        if not self.final_states:
            raise ValueError("automaton has no final state; the query can never match")
        self.sites: list[RemoteSite] = [
            site for transition in self.transitions for site in transition.sites
        ]
        # State in which a binding's event gets bound, for key-availability tests.
        self.binding_state: dict[str, State] = {}
        for transition in self.transitions:
            self.binding_state[transition.binding] = transition.target

    @property
    def n_states(self) -> int:
        return len(self.states)

    def state(self, index: int) -> State:
        return self.states[index]

    def describe(self) -> str:
        """Human-readable summary of states, transitions, and remote sites."""
        lines = [f"Automaton {self.name!r}: {len(self.states)} states, window {self.window!r}"]
        for transition in self.transitions:
            lines.append(f"  {transition!r}")
        for site in self.sites:
            lines.append(f"  {site!r}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Automaton({self.name!r}, {len(self.states)} states, "
            f"{len(self.transitions)} transitions, {len(self.sites)} remote sites)"
        )

"""Compilation of query ASTs into evaluation automata.

The compiler enumerates the pattern's alternative binding sequences
(``SEQ`` concatenates, ``OR`` unions), folds them into a shared-prefix tree
of states, and attaches each WHERE condition to the earliest transition at
which all of its bindings are available — the standard placement that lets
the engine discard doomed partial matches as early as possible.

``SAME[attr]`` correlation expands into pairwise equality with the previous
binding on the path, which is equivalent to all-pairs equality by
transitivity and keeps every guard binary.
"""

from __future__ import annotations

from repro.nfa.automaton import Automaton, RemoteSite, State, Transition
from repro.query.ast import EventAtom, Query
from repro.query.errors import CompileError
from repro.query.predicates import Attr, Comparison, Predicate, SameAttribute

__all__ = ["compile_query"]


def compile_query(query: Query) -> Automaton:
    """Compile ``query`` into an :class:`~repro.nfa.automaton.Automaton`."""
    sequences = query.pattern.binding_sequences()
    if not sequences:
        raise CompileError("pattern has no alternatives")
    root = State(0, parent=None, entry_binding=None)
    states = [root]
    # The prefix tree: walk/extend one branch per alternative sequence.
    for sequence in sequences:
        _build_path(root, sequence, query, states)
    _index_breadth_first(states)
    _attach_sites(states)
    _check_all_conditions_attached(states, query)
    partition_attr = next(
        (c.attr for c in query.conditions if isinstance(c, SameAttribute)), None
    )
    return Automaton(states, query.window, name=query.name, partition_attr=partition_attr)


def _check_all_conditions_attached(states: list[State], query: Query) -> None:
    """Every non-SAME condition must guard at least one transition.

    A condition that attaches nowhere (e.g. it mixes bindings from two OR
    branches that never co-occur) would be silently dropped — fail loudly
    instead.
    """
    attached: set[int] = set()
    for state in states:
        for transition in state.transitions:
            for predicate in transition.local_predicates + transition.remote_predicates:
                attached.add(id(predicate))
    for condition in query.conditions:
        if isinstance(condition, SameAttribute):
            continue
        if id(condition) not in attached:
            raise CompileError(
                f"condition {condition!r} references bindings that never co-occur "
                "on any pattern alternative"
            )


def _build_path(root: State, sequence: tuple[EventAtom, ...], query: Query, states: list[State]) -> None:
    current = root
    for atom in sequence:
        existing = _child_for(current, atom)
        if existing is not None:
            current = existing
            continue
        target = State(len(states), parent=current, entry_binding=atom.binding)
        states.append(target)
        local, remote = _guard_for(current, atom, query)
        transition = Transition(
            index=-1,  # assigned after BFS indexing
            source=current,
            target=target,
            atom=atom,
            local_predicates=local,
            remote_predicates=remote,
        )
        current.transitions.append(transition)
        current = target
    current.is_final = True


def _child_for(state: State, atom: EventAtom) -> State | None:
    for transition in state.transitions:
        if transition.binding == atom.binding:
            if transition.event_type != atom.event_type:
                raise CompileError(
                    f"binding {atom.binding!r} used with conflicting types "
                    f"{transition.event_type!r} and {atom.event_type!r}"
                )
            return transition.target
    return None


def _guard_for(
    source: State, atom: EventAtom, query: Query
) -> tuple[tuple[Predicate, ...], tuple[Predicate, ...]]:
    """Predicates to attach to the transition ``source --atom--> target``."""
    available_before = frozenset(source.path_bindings)
    available_after = available_before | {atom.binding}
    # The atom's type check is enforced by the engine via transition.event_type
    # (cheap pre-filter), so guards carry only the WHERE conditions.
    local: list[Predicate] = []
    remote: list[Predicate] = []
    for condition in query.conditions:
        if isinstance(condition, SameAttribute):
            if source.entry_binding is not None:
                local.append(
                    Comparison(
                        "=",
                        Attr(atom.binding, condition.attr),
                        Attr(source.entry_binding, condition.attr),
                    )
                )
            continue
        refs = condition.bindings()
        if not refs <= available_after:
            continue  # becomes checkable only deeper down this path
        if refs and refs <= available_before:
            continue  # already attached on an earlier transition of this path
        if not refs and not source.is_root:
            continue  # constant conditions go on the very first transition
        if condition.is_remote:
            remote.append(condition)
        else:
            local.append(condition)
    return tuple(local), tuple(remote)


def _index_breadth_first(states: list[State]) -> None:
    """Re-index states in BFS order so indices respect the partial order."""
    root = states[0]
    order: list[State] = [root]
    queue = [root]
    while queue:
        state = queue.pop(0)
        for transition in state.transitions:
            order.append(transition.target)
            queue.append(transition.target)
    if len(order) != len(states):
        raise CompileError("state graph is not a tree rooted at q0")
    states.clear()
    states.extend(order)
    for index, state in enumerate(states):
        state.index = index
    next_transition = 0
    for state in states:
        for transition in state.transitions:
            transition.index = next_transition
            next_transition += 1


def _attach_sites(states: list[State]) -> None:
    """Create one :class:`RemoteSite` per (transition, predicate, reference)."""
    site_id = 0
    for state in states:
        for transition in state.transitions:
            sites = []
            for predicate in transition.remote_predicates:
                for ref in predicate.remote_refs():
                    bound_at = _key_bound_state(transition, ref.key_binding)
                    sites.append(RemoteSite(site_id, transition, predicate, ref, bound_at))
                    site_id += 1
            transition.sites = tuple(sites)


def _key_bound_state(transition: Transition, key_binding: str) -> State | None:
    """State on the path at which ``key_binding`` is bound, or ``None``.

    ``None`` means the key comes from the current input event (the binding
    the transition itself establishes) — prefetching is impossible there.
    """
    if key_binding == transition.binding:
        return None
    for state in transition.source.ancestors():
        if state.entry_binding == key_binding:
            return state
    raise CompileError(
        f"remote reference key binding {key_binding!r} is not on the path to "
        f"transition {transition!r}"
    )

"""Automaton model: states, transitions, remote sites, runs, compiler."""

from repro.nfa.automaton import Automaton, RemoteSite, State, Transition
from repro.nfa.compiler import compile_query
from repro.nfa.run import Obligation, Run

__all__ = [
    "Automaton",
    "State",
    "Transition",
    "RemoteSite",
    "Run",
    "Obligation",
    "compile_query",
]

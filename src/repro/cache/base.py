"""Cache interface shared by the LRU and cost-based policies (§6).

The cache stores :class:`~repro.remote.element.DataElement` objects keyed by
``(source, key)``, bounded by a *capacity* measured in element size units
(``|d|``; with unit-size elements this is simply an item count, matching the
paper's "10,000 items").

Hierarchical data is honoured on lookup: a request for a child element hits
if any of its containers is cached, since fetching a container materialises
its parts (§2.1).

``certain`` on :meth:`put` tells the cost-based policy which conceptual tier
an element enters: ``True`` for elements requested by lazy evaluation (their
use is guaranteed — tier T1), ``False`` for speculative prefetches (tier
T2).  The LRU policy ignores the flag.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.cache.stats import CacheStats
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import CAT_CACHE, NULL_TRACER, Tracer, trace_key
from repro.remote.element import DataElement, DataKey

__all__ = ["Cache"]


class Cache(ABC):
    """Abstract bounded cache of remote data elements."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive: {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self.tracer: Tracer = NULL_TRACER
        self._entries: dict[DataKey, DataElement] = {}
        self._part_index: dict[DataKey, DataKey] = {}
        self._used = 0

    def bind_observability(self, registry: MetricsRegistry | None, tracer: Tracer) -> None:
        """Rebind the (still-empty) stats façade and trace bus at assembly."""
        if registry is not None:
            self.stats = CacheStats(registry)
        self.tracer = tracer

    # -- interface ----------------------------------------------------------
    @abstractmethod
    def _on_access(self, key: DataKey, now: float) -> None:
        """Policy hook: the entry under ``key`` was read."""

    @abstractmethod
    def _on_insert(self, key: DataKey, now: float, certain: bool) -> None:
        """Policy hook: a new entry was stored under ``key``."""

    @abstractmethod
    def _select_victim(self) -> DataKey:
        """Policy hook: choose the key to evict (cache is non-empty)."""

    def _on_remove(self, key: DataKey) -> None:
        """Policy hook: the entry under ``key`` left the cache."""

    def min_utility(self) -> float:
        """Lowest utility among cached elements (Eq. 7's threshold).

        Policies without a utility notion return 0.0, which makes the
        prefetch gate permissive — matching how LRU-managed caches are used
        in the paper.
        """
        return 0.0

    # -- shared behaviour -----------------------------------------------------
    def get(self, key: DataKey, now: float) -> DataElement | None:
        """Look up ``key`` (or a cached container of it); count hit/miss."""
        element = self._probe(key, now)
        if element is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        if self.tracer.enabled:
            self.tracer.emit(
                CAT_CACHE,
                "hit" if element is not None else "miss",
                now,
                key=trace_key(key),
            )
        return element

    def peek(self, key: DataKey, now: float) -> DataElement | None:
        """Availability check that does not perturb stats (planner probes)."""
        entry = self._entries.get(key)
        if entry is not None:
            return entry
        return self._container_hit(key)

    def _probe(self, key: DataKey, now: float) -> DataElement | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._on_access(key, now)
            return entry
        container = self._container_hit(key)
        if container is not None:
            self._on_access(container.key, now)
        return container

    def _container_hit(self, key: DataKey) -> DataElement | None:
        """A cached container whose parts include ``key``, if any.

        Cached containers index their descendant keys at insertion time
        (see :meth:`put`), so this is an O(1) lookup.
        """
        owner = self._part_index.get(key)
        if owner is not None and owner in self._entries:
            return self._entries[owner]
        return None

    def put(self, element: DataElement, now: float, certain: bool = True) -> bool:
        """Insert ``element``, evicting as needed; returns False if rejected.

        An element larger than the whole cache is rejected outright (and
        counted), mirroring size-aware admission in web caches.
        """
        size = element.total_size()
        if size > self.capacity:
            self.stats.rejected += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    CAT_CACHE, "reject", now, key=trace_key(element.key), size=size
                )
            return False
        if element.key in self._entries:
            # Re-fetching replaces the stored element (fresher value); remove
            # the old entry cleanly, then fall through to a normal insert.
            self._remove(element.key)
        while self._used + size > self.capacity:
            self._evict_one(now)
        self._entries[element.key] = element
        self._used += size
        for part in element.descendants():
            if part.key != element.key:
                self._part_index[part.key] = element.key
        self.stats.insertions += 1
        self._on_insert(element.key, now, certain)
        if self.tracer.enabled:
            self.tracer.emit(
                CAT_CACHE,
                "admit",
                now,
                key=trace_key(element.key),
                size=size,
                certain=certain,
                used=self._used,
            )
        return True

    def _evict_one(self, now: float) -> None:
        victim = self._select_victim()
        self._remove(victim)
        self.stats.evictions += 1
        if self.tracer.enabled:
            self.tracer.emit(CAT_CACHE, "evict", now, key=trace_key(victim))

    def _remove(self, key: DataKey) -> None:
        element = self._entries.pop(key)
        self._used -= element.total_size()
        for part in element.descendants():
            if part.key != element.key:
                self._part_index.pop(part.key, None)
        self._on_remove(key)

    def __contains__(self, key: DataKey) -> bool:
        return key in self._entries or self._part_index.get(key) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used(self) -> int:
        """Capacity units currently occupied."""
        return self._used

    def keys(self) -> list[DataKey]:
        return list(self._entries)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(used={self._used}/{self.capacity}, entries={len(self._entries)})"

"""Cache management: LRU and cost-based policies, hit history, statistics."""

from repro.cache.base import Cache
from repro.cache.cost_based import CostBasedCache
from repro.cache.history import HitHistory
from repro.cache.lru import LRUCache
from repro.cache.stats import CacheStats

__all__ = ["Cache", "LRUCache", "CostBasedCache", "HitHistory", "CacheStats"]

"""Prefetch cache hit/miss history ``H`` (Alg. 3).

Lookahead timing picks, per remote site, the trigger class closest to the
need whose recent prefetches actually hit.  ``H(site, j)`` aggregates recent
evidence for "prefetching this site's element when a partial match enters
class ``j`` makes it available in time".

The paper maintains counts of cache misses with a threshold deciding what is
sufficient negative evidence, and resets values a fixed period after their
last increment to cope with stream fluctuation; both knobs are reproduced
here.  Evidence is tracked per (site, trigger-state) rather than per
concrete element — elements fetched for one site share fate, and per-element
tracking would be both noisy and unbounded.
"""

from __future__ import annotations

__all__ = ["HitHistory"]


class _SiteRecord:
    __slots__ = ("misses", "hits", "last_update")

    def __init__(self) -> None:
        self.misses = 0
        self.hits = 0
        self.last_update = 0.0


class HitHistory:
    """Per (site, trigger state) prefetch outcome counters."""

    def __init__(self, miss_threshold: int = 3, reset_after: float = 1_000_000.0) -> None:
        if miss_threshold < 1:
            raise ValueError(f"miss threshold must be >= 1: {miss_threshold}")
        if reset_after <= 0:
            raise ValueError(f"reset period must be positive: {reset_after}")
        self._miss_threshold = miss_threshold
        self._reset_after = reset_after
        self._records: dict[tuple[int, int], _SiteRecord] = {}

    def _record(self, site_id: int, state_index: int, now: float) -> _SiteRecord:
        record = self._records.get((site_id, state_index))
        if record is None:
            record = _SiteRecord()
            self._records[(site_id, state_index)] = record
        elif now - record.last_update > self._reset_after:
            # Stale evidence: the stream may have shifted; start over.
            record.misses = 0
            record.hits = 0
        return record

    def record_hit(self, site_id: int, state_index: int, now: float) -> None:
        """A prefetch triggered at ``state_index`` was in cache when needed."""
        record = self._record(site_id, state_index, now)
        record.hits += 1
        # A hit forgives accumulated misses — evidence is about the recent past.
        record.misses = 0
        record.last_update = now

    def record_miss(self, site_id: int, state_index: int, now: float) -> None:
        """A prefetch triggered at ``state_index`` was *not* available in time."""
        record = self._record(site_id, state_index, now)
        record.misses += 1
        record.last_update = now

    def usable(self, site_id: int, state_index: int, now: float) -> bool:
        """Whether class ``state_index`` is (still) a trusted prefetch trigger.

        Optimistic by default: with no evidence, the closest class is tried
        first, exactly like Alg. 3's initial walk.
        """
        record = self._records.get((site_id, state_index))
        if record is None:
            return True
        if now - record.last_update > self._reset_after:
            return True
        return record.misses < self._miss_threshold

    def __repr__(self) -> str:
        return f"HitHistory({len(self._records)} site/state records)"

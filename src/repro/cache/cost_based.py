"""Cost-based cache policy with two conceptual tiers (§6).

Elements whose use is *certain* (requested by lazy evaluation: some partial
match already needs them) enter tier T1; speculatively prefetched elements
enter tier T2.  T1 elements are retained over all T2 elements but drop to T2
after their first access, at which point their guaranteed use has been
consumed.

When capacity is reached, victims are taken from T2 before T1.  Within a
tier, the paper formulates retention as a knapsack over utility subject to
the size budget and approximates it greedily by utility/size ratio; evicting
the minimum-ratio element first is the complementary greedy rule used here.

Utilities are *time-varying in both directions* — they grow as partial
matches accumulate and collapse to zero when their matches expire — so
priority-queue bookkeeping keyed on stale snapshots systematically shields
worthless entries behind once-high values.  Eviction therefore uses
**sampling**: draw a bounded random sample of resident keys from the
preferred tier and evict the one with the lowest *current* utility/size
ratio.  This is O(sample) per eviction, needs no invalidation machinery,
and approximates exact min-eviction the same way sampled-LRU does in
production caches.

Ratio *ties* are broken by recency (least recently accessed first).  Under
partial-match workloads most elements serve exactly one live family and tie
at the same urgent utility; among those, older families are closer to
window expiry and less likely to produce further accesses, which is the
same signal LRU exploits.  The utility dominates whenever it actually
discriminates (multi-family elements, containers, dying keys).

The utility function is injected (``utility_fn``), wired by the framework to
:class:`repro.utility.model.UtilityModel` evaluated with the cache's
weighting factor ``omega_cache`` (§4.1).
"""

from __future__ import annotations

import random
from typing import Callable

from repro.cache.base import Cache
from repro.remote.element import DataKey
from repro.sim.rng import make_rng

__all__ = ["CostBasedCache"]

_SAMPLE_SIZE = 12


class _SampledSet:
    """A set supporting O(1) add/discard and O(k) random sampling."""

    __slots__ = ("_items", "_index")

    def __init__(self) -> None:
        self._items: list[DataKey] = []
        self._index: dict[DataKey, int] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: DataKey) -> bool:
        return key in self._index

    def add(self, key: DataKey) -> None:
        if key not in self._index:
            self._index[key] = len(self._items)
            self._items.append(key)

    def discard(self, key: DataKey) -> None:
        position = self._index.pop(key, None)
        if position is None:
            return
        last = self._items.pop()
        if last != key:
            self._items[position] = last
            self._index[last] = position

    def sample(self, rng: random.Random, k: int) -> list[DataKey]:
        if len(self._items) <= k:
            return list(self._items)
        return [self._items[rng.randrange(len(self._items))] for _ in range(k)]


class CostBasedCache(Cache):
    """Two-tier, sampled utility/size-ratio eviction (knapsack approximation)."""

    TIER_CERTAIN = 1
    TIER_SPECULATIVE = 2

    def __init__(
        self,
        capacity: int,
        utility_fn: Callable[[DataKey], float],
        seed: int = 0,
        sample_size: int = _SAMPLE_SIZE,
    ) -> None:
        super().__init__(capacity)
        if sample_size < 1:
            raise ValueError(f"sample size must be >= 1: {sample_size}")
        self._utility_fn = utility_fn
        self._rng = make_rng(seed)
        self._sample_size = sample_size
        self._tiers: dict[int, _SampledSet] = {
            self.TIER_CERTAIN: _SampledSet(),
            self.TIER_SPECULATIVE: _SampledSet(),
        }
        self._last_touch: dict[DataKey, float] = {}

    # -- policy hooks --------------------------------------------------------
    def _on_access(self, key: DataKey, now: float) -> None:
        # First access consumes a T1 element's guaranteed use: demote to T2.
        if key in self._tiers[self.TIER_CERTAIN]:
            self._tiers[self.TIER_CERTAIN].discard(key)
            self._tiers[self.TIER_SPECULATIVE].add(key)
        self._last_touch[key] = now

    def _on_insert(self, key: DataKey, now: float, certain: bool) -> None:
        tier = self.TIER_CERTAIN if certain else self.TIER_SPECULATIVE
        self._tiers[tier].add(key)
        self._last_touch[key] = now

    def _on_remove(self, key: DataKey) -> None:
        self._tiers[self.TIER_CERTAIN].discard(key)
        self._tiers[self.TIER_SPECULATIVE].discard(key)
        self._last_touch.pop(key, None)

    def _select_victim(self) -> DataKey:
        for tier in (self.TIER_SPECULATIVE, self.TIER_CERTAIN):
            candidates = self._tiers[tier].sample(self._rng, self._sample_size)
            if candidates:
                return min(
                    candidates,
                    key=lambda key: (self._ratio(key), self._last_touch.get(key, 0.0)),
                )
        # Tier sets can only be empty together with the cache itself; reaching
        # here means an accounting bug upstream.
        raise RuntimeError("cost-based cache asked to evict from an empty cache")

    def min_utility(self) -> float:
        """Estimated lowest utility/size ratio among cached elements (Eq. 7).

        Sampled like eviction: the admission gate needs a cheap, current
        estimate of what a new element would displace.
        """
        for tier in (self.TIER_SPECULATIVE, self.TIER_CERTAIN):
            candidates = self._tiers[tier].sample(self._rng, self._sample_size)
            if candidates:
                return min(self._ratio(key) for key in candidates)
        return 0.0

    # -- internals ----------------------------------------------------------------
    def _ratio(self, key: DataKey) -> float:
        element = self._entries.get(key)
        size = element.total_size() if element is not None else 1
        return self._utility_fn(key) / max(size, 1)

"""Cache statistics, reported by the experiment harness.

``CacheStats`` is a view over a :class:`~repro.obs.registry.MetricsRegistry`:
each counter attribute reads and writes a registry cell under
``cache.<name>``, so metrics snapshots and this façade can never disagree.
Standalone construction binds a private registry, preserving the original
plain-counter behaviour for unit tests and unattached caches.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry

__all__ = ["CacheStats", "CACHE_COUNTER_KEYS"]

# Every counter a cache maintains, in report order (single source of truth
# for the registry cells and ``as_dict``).
CACHE_COUNTER_KEYS = ("hits", "misses", "insertions", "evictions", "rejected")


class CacheStats:
    """Hit/miss/insertion/eviction counters for one cache instance."""

    __slots__ = ("_cells",)

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self._cells = {key: registry.counter(f"cache.{key}") for key in CACHE_COUNTER_KEYS}

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejected": self.rejected,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"insertions={self.insertions}, evictions={self.evictions})"
        )


def _counter_property(key: str) -> property:
    def _get(self: CacheStats):
        return self._cells[key].value

    def _set(self: CacheStats, value) -> None:
        self._cells[key].value = value

    return property(_get, _set)


for _key in CACHE_COUNTER_KEYS:
    setattr(CacheStats, _key, _counter_property(_key))
del _key

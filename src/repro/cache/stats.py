"""Cache statistics, reported by the experiment harness."""

from __future__ import annotations

__all__ = ["CacheStats"]


class CacheStats:
    """Hit/miss/insertion/eviction counters for one cache instance."""

    __slots__ = ("hits", "misses", "insertions", "evictions", "rejected")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.rejected = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejected": self.rejected,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"insertions={self.insertions}, evictions={self.evictions})"
        )

"""Least-recently-used cache policy (§6).

Under greedy query semantics many partial matches keep requesting the same
elements, so recency of access is a good proxy for future utility; the paper
adopts plain LRU for this regime precisely because it needs no computed
utility values and has negligible bookkeeping overhead.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import Cache
from repro.remote.element import DataKey

__all__ = ["LRUCache"]


class LRUCache(Cache):
    """Evicts the element that has gone unaccessed the longest."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._recency: OrderedDict[DataKey, None] = OrderedDict()

    def _on_access(self, key: DataKey, now: float) -> None:
        self._recency.move_to_end(key)

    def _on_insert(self, key: DataKey, now: float, certain: bool) -> None:
        self._recency[key] = None

    def _on_remove(self, key: DataKey) -> None:
        self._recency.pop(key, None)

    def _select_victim(self) -> DataKey:
        return next(iter(self._recency))

"""Parser for the SASE-style pattern language used in the paper's listings.

The grammar covers Listing 1 and Listing 2 verbatim (modulo whitespace)::

    query    :=  or_expr [ "WHERE" conjunction ] [ "WITHIN" window ]
    seq      :=  "SEQ" "(" or_expr ("," or_expr)* ")"
    operand  :=  TYPE BINDING  |  seq  |  "(" or_expr ")"
    or_expr  :=  operand ("OR" operand)*
    conj     :=  predicate ("AND" predicate)*
    predicate:=  "SAME" "[" IDENT "]"
              |  expr ["NOT"] "IN" expr
              |  expr cmp expr                    cmp in  = <> != < <= > >=
    expr     :=  NUMBER  |  STRING  |  IDENT "." IDENT
              |  "REMOTE" ["<" IDENT ">"] "[" IDENT "." IDENT "]"
    window   :=  NUMBER [unit]      unit in  us ms s sec min h | EVENTS

Conventions:

* numbers accept ``k``/``K`` (x1000) and ``M`` (x1e6) suffixes, so Listing
  1's ``10k`` parses as 10000;
* a window with a time unit is a time window in virtual microseconds; a bare
  number or an ``EVENTS`` unit is a count window — this is how Q2's
  ``WITHIN 50K`` is interpreted;
* a ``REMOTE[t1.user]`` reference without an explicit source addresses the
  source named after its key attribute (here ``user``); distinct logical
  tables sharing a key attribute can be disambiguated as
  ``REMOTE<locations>[t1.user]``.
"""

from __future__ import annotations

import re

from repro.query.ast import EventAtom, OrPattern, Pattern, Query, SeqPattern, Window
from repro.query.errors import ParseError
from repro.query.predicates import (
    Attr,
    Comparison,
    Const,
    Expr,
    Membership,
    Predicate,
    RemoteRef,
    SameAttribute,
)

__all__ = ["parse_query", "parse_pattern"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(?:\.\d+)?[kKM]?)
  | (?P<string>'[^']*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|<>|!=|==|[=<>])
  | (?P<punct>[(),.\[\]])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"SEQ", "OR", "WHERE", "AND", "WITHIN", "SAME", "REMOTE", "NOT", "IN", "EVENTS"}

_TIME_UNITS_US = {
    "us": 1.0,
    "ms": 1_000.0,
    "s": 1_000_000.0,
    "sec": 1_000_000.0,
    "min": 60_000_000.0,
    "h": 3_600_000_000.0,
}


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int) -> None:
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text}"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", position)
        position = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        value = match.group()
        if kind == "ident" and value.upper() in _KEYWORDS:
            tokens.append(_Token(value.upper(), value, match.start()))
        else:
            tokens.append(_Token(kind, value, match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


def _number_value(text: str) -> float:
    multiplier = 1.0
    if text[-1] in "kK":
        multiplier, text = 1_000.0, text[:-1]
    elif text[-1] == "M":
        multiplier, text = 1_000_000.0, text[:-1]
    return float(text) * multiplier


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing ----------------------------------------------------
    @property
    def _current(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._current
        if token.kind != "eof":
            self._index += 1
        return token

    def _accept(self, kind: str, text: str | None = None) -> _Token | None:
        token = self._current
        if token.kind != kind:
            return None
        if text is not None and token.text != text:
            return None
        return self._advance()

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._accept(kind, text)
        if token is None:
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r}, found {self._current.text or 'end of query'!r}",
                self._current.pos,
            )
        return token

    # -- grammar -----------------------------------------------------------
    def parse_query(self, name: str) -> Query:
        pattern = self._parse_or()  # top-level OR of operands is allowed
        conditions: list[Predicate | SameAttribute] = []
        if self._accept("WHERE"):
            conditions.append(self._parse_predicate())
            while self._accept("AND"):
                conditions.append(self._parse_predicate())
        window = Window.count(10_000)  # effectively unbounded default
        if self._accept("WITHIN"):
            window = self._parse_window()
        self._expect("eof")
        return Query(pattern, conditions, window, name=name)

    def parse_pattern_operand(self) -> Pattern:
        """An operand: SEQ(...), a parenthesised OR, or a typed atom."""
        if self._current.kind == "SEQ":
            return self._parse_seq()
        if self._accept("punct", "("):
            pattern = self._parse_or()
            self._expect("punct", ")")
            return pattern
        type_token = self._expect("ident")
        binding_token = self._expect("ident")
        return EventAtom(type_token.text, binding_token.text)

    def _parse_seq(self) -> Pattern:
        self._expect("SEQ")
        self._expect("punct", "(")
        parts = [self._parse_or()]
        while self._accept("punct", ","):
            parts.append(self._parse_or())
        self._expect("punct", ")")
        if len(parts) == 1:
            return parts[0]
        return SeqPattern(parts)

    def _parse_or(self) -> Pattern:
        alternatives = [self.parse_pattern_operand()]
        while self._accept("OR"):
            alternatives.append(self.parse_pattern_operand())
        if len(alternatives) == 1:
            return alternatives[0]
        return OrPattern(alternatives)

    def _parse_predicate(self) -> Predicate | SameAttribute:
        if self._accept("punct", "("):
            predicate = self._parse_predicate()
            self._expect("punct", ")")
            return predicate
        if self._accept("SAME"):
            self._expect("punct", "[")
            attr = self._expect("ident").text
            self._expect("punct", "]")
            return SameAttribute(attr)
        left = self._parse_expr()
        if self._accept("NOT"):
            self._expect("IN")
            return Membership(left, self._parse_expr(), negated=True)
        if self._accept("IN"):
            return Membership(left, self._parse_expr(), negated=False)
        op_token = self._expect("op")
        right = self._parse_expr()
        return Comparison(op_token.text, left, right)

    def _parse_expr(self) -> Expr:
        token = self._current
        if token.kind == "number":
            self._advance()
            value = _number_value(token.text)
            return Const(int(value) if value == int(value) else value)
        if token.kind == "string":
            self._advance()
            return Const(token.text[1:-1])
        if token.kind == "REMOTE":
            self._advance()
            return self._parse_remote_ref()
        if token.kind == "ident":
            binding = self._advance().text
            self._expect("punct", ".")
            attr = self._expect("ident").text
            return Attr(binding, attr)
        raise ParseError(f"expected an expression, found {token.text!r}", token.pos)

    def _parse_remote_ref(self) -> RemoteRef:
        source: str | None = None
        if self._accept("op", "<"):
            source = self._expect("ident").text
            self._expect("op", ">")
        self._expect("punct", "[")
        binding = self._expect("ident").text
        self._expect("punct", ".")
        attr = self._expect("ident").text
        self._expect("punct", "]")
        if source is None:
            source = attr
        return RemoteRef(source, Attr(binding, attr))

    def _parse_window(self) -> Window:
        number = self._expect("number")
        value = _number_value(number.text)
        unit = self._current
        if unit.kind == "ident" and unit.text.lower() in _TIME_UNITS_US:
            self._advance()
            return Window.time(value * _TIME_UNITS_US[unit.text.lower()])
        if unit.kind == "EVENTS":
            self._advance()
            return Window.count(int(value))
        return Window.count(int(value))


def parse_query(text: str, name: str = "query") -> Query:
    """Parse a full query string into a :class:`~repro.query.ast.Query`."""
    return _Parser(_tokenize(text)).parse_query(name)


def parse_pattern(text: str) -> Pattern:
    """Parse just a pattern expression (no WHERE/WITHIN)."""
    parser = _Parser(_tokenize(text))
    pattern = parser._parse_or()
    parser._expect("eof")
    return pattern

"""Exceptions raised by the query layer."""

from __future__ import annotations

__all__ = ["QueryError", "ParseError", "CompileError", "RemoteDataUnavailable"]


class QueryError(Exception):
    """Base class for query-related failures."""


class ParseError(QueryError):
    """The query text does not conform to the pattern language grammar."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class CompileError(QueryError):
    """The query AST cannot be compiled into an automaton."""


class RemoteDataUnavailable(QueryError):
    """A predicate referenced remote data that is not locally available.

    Raised by expression evaluation when the resolver cannot supply a value;
    the engine catches it and lets the active fetch strategy decide whether
    to block or postpone (§5).
    """

    def __init__(self, key: tuple) -> None:
        self.key = key
        super().__init__(f"remote data element {key!r} not available locally")

"""Query layer: AST, predicates, parser, errors."""

from repro.query.ast import EventAtom, OrPattern, Pattern, Query, SeqPattern, Window
from repro.query.errors import CompileError, ParseError, QueryError, RemoteDataUnavailable
from repro.query.parser import parse_pattern, parse_query
from repro.query.predicates import (
    Attr,
    Comparison,
    Const,
    Expr,
    FunctionPredicate,
    Membership,
    Predicate,
    RemoteRef,
    SameAttribute,
)

__all__ = [
    "Query",
    "Pattern",
    "EventAtom",
    "SeqPattern",
    "OrPattern",
    "Window",
    "parse_query",
    "parse_pattern",
    "QueryError",
    "ParseError",
    "CompileError",
    "RemoteDataUnavailable",
    "Expr",
    "Attr",
    "Const",
    "RemoteRef",
    "Predicate",
    "Comparison",
    "Membership",
    "FunctionPredicate",
    "SameAttribute",
]

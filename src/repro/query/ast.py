"""Abstract syntax for the SASE-style pattern language (§2.1, Listing 1/2).

A query is a *pattern* (nested SEQ / OR structure over typed event atoms),
a conjunction of WHERE conditions, and a window.  The compiler
(:mod:`repro.query.compiler`) lowers this into the evaluation automaton.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Sequence, Union

from repro.query.errors import CompileError
from repro.query.predicates import Predicate, SameAttribute

__all__ = ["Pattern", "EventAtom", "SeqPattern", "OrPattern", "Window", "Query"]

Condition = Union[Predicate, SameAttribute]


class Pattern(ABC):
    """A pattern tree node."""

    @abstractmethod
    def atoms(self) -> Iterator["EventAtom"]:
        """All event atoms in the pattern, left to right."""

    @abstractmethod
    def binding_sequences(self) -> list[tuple["EventAtom", ...]]:
        """Every alternative linearisation of the pattern.

        SEQ concatenates, OR unions; the result enumerates the automaton
        paths the compiler will build (e.g. Fig. 2's two branches).
        """


class EventAtom(Pattern):
    """A single typed event to select, bound to a name: ``T t1``."""

    __slots__ = ("event_type", "binding")

    def __init__(self, event_type: str, binding: str) -> None:
        if not binding:
            raise CompileError("event atoms need a binding name")
        self.event_type = event_type
        self.binding = binding

    def atoms(self) -> Iterator["EventAtom"]:
        yield self

    def binding_sequences(self) -> list[tuple["EventAtom", ...]]:
        return [(self,)]

    def __repr__(self) -> str:
        return f"{self.event_type} {self.binding}"


class SeqPattern(Pattern):
    """``SEQ(p1, ..., pn)`` — the parts occur in order."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Pattern]) -> None:
        if not parts:
            raise CompileError("SEQ requires at least one part")
        self.parts = tuple(parts)

    def atoms(self) -> Iterator[EventAtom]:
        for part in self.parts:
            yield from part.atoms()

    def binding_sequences(self) -> list[tuple[EventAtom, ...]]:
        sequences: list[tuple[EventAtom, ...]] = [()]
        for part in self.parts:
            sequences = [
                prefix + suffix
                for prefix in sequences
                for suffix in part.binding_sequences()
            ]
        return sequences

    def __repr__(self) -> str:
        inner = ", ".join(repr(part) for part in self.parts)
        return f"SEQ({inner})"


class OrPattern(Pattern):
    """``p1 OR p2 OR ...`` — any one alternative occurs."""

    __slots__ = ("alternatives",)

    def __init__(self, alternatives: Sequence[Pattern]) -> None:
        if len(alternatives) < 2:
            raise CompileError("OR requires at least two alternatives")
        self.alternatives = tuple(alternatives)

    def atoms(self) -> Iterator[EventAtom]:
        for alternative in self.alternatives:
            yield from alternative.atoms()

    def binding_sequences(self) -> list[tuple[EventAtom, ...]]:
        sequences: list[tuple[EventAtom, ...]] = []
        for alternative in self.alternatives:
            sequences.extend(alternative.binding_sequences())
        return sequences

    def __repr__(self) -> str:
        return " OR ".join(repr(alternative) for alternative in self.alternatives)


class Window:
    """A ``WITHIN`` constraint: time span in virtual us, or an event count.

    The paper's Q2 uses ``WITHIN 50K`` — a count-based window over stream
    positions — while the other queries use time windows; both are supported.
    """

    __slots__ = ("kind", "value")

    TIME = "time"
    COUNT = "count"

    def __init__(self, kind: str, value: float) -> None:
        if kind not in (self.TIME, self.COUNT):
            raise CompileError(f"unknown window kind {kind!r}")
        if value <= 0:
            raise CompileError(f"window must be positive: {value}")
        if kind == self.COUNT and value != int(value):
            raise CompileError(f"count window must be integral: {value}")
        self.kind = kind
        self.value = value

    @classmethod
    def time(cls, microseconds: float) -> "Window":
        return cls(cls.TIME, microseconds)

    @classmethod
    def count(cls, events: int) -> "Window":
        return cls(cls.COUNT, events)

    def admits(self, first_t: float, first_seq: int, event_t: float, event_seq: int) -> bool:
        """Whether an event at (t, seq) still falls in the window opened by
        the match's first event."""
        if self.kind == self.TIME:
            return event_t - first_t <= self.value
        return event_seq - first_seq <= self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Window) and (self.kind, self.value) == (other.kind, other.value)

    def __repr__(self) -> str:
        if self.kind == self.TIME:
            return f"WITHIN {self.value}us"
        return f"WITHIN {int(self.value)} EVENTS"


class Query:
    """A full CEP query: pattern, WHERE conjunction, window, and a name."""

    __slots__ = ("pattern", "conditions", "window", "name")

    def __init__(
        self,
        pattern: Pattern,
        conditions: Sequence[Condition],
        window: Window,
        name: str = "query",
    ) -> None:
        self.pattern = pattern
        self.conditions = tuple(conditions)
        self.window = window
        self.name = name
        self._validate()

    def _validate(self) -> None:
        # A binding may recur across OR alternatives (shared prefixes reuse
        # it), but must be unique within any single alternative.
        for sequence in self.pattern.binding_sequences():
            names = [atom.binding for atom in sequence]
            if len(set(names)) != len(names):
                raise CompileError(
                    f"duplicate binding names within one alternative: {names}"
                )
        known = {atom.binding for atom in self.pattern.atoms()}
        for condition in self.conditions:
            if isinstance(condition, SameAttribute):
                continue
            unknown = condition.bindings() - known
            if unknown:
                raise CompileError(
                    f"condition {condition!r} references unknown bindings {sorted(unknown)}"
                )

    @property
    def bindings(self) -> tuple[str, ...]:
        return tuple(atom.binding for atom in self.pattern.atoms())

    def remote_sources(self) -> set[str]:
        """All remote sources referenced by the query's predicates."""
        sources: set[str] = set()
        for condition in self.conditions:
            if isinstance(condition, SameAttribute):
                continue
            for ref in condition.remote_refs():
                sources.add(ref.source)
        return sources

    def __repr__(self) -> str:
        return f"Query({self.name!r}, {self.pattern!r}, {len(self.conditions)} conditions, {self.window!r})"

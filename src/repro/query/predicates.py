"""Predicate expression trees for CEP queries.

Predicates guard the transitions of the evaluation automaton (Fig. 2 of the
paper).  They fall into two groups the engine treats differently:

* *local* predicates read only the payload of events already bound in a
  partial match (plus the current input event);
* *remote* predicates additionally reference data elements from remote
  sources via :class:`RemoteRef` — these are the predicates EIRES is about.

Evaluation receives an *environment* (mapping of binding name to
:class:`~repro.events.event.Event`) and a *resolver* (callable mapping a
``(source, key)`` pair to a value).  A resolver that cannot supply a value
raises :class:`~repro.query.errors.RemoteDataUnavailable`; purely local
predicates never invoke the resolver.

Every predicate carries an ``eval_cost`` (virtual microseconds charged per
evaluation).  The case-study queries of §7.4 are dominated by
compute-intensive predicates (e.g. spatial overlap of geographic areas), and
this knob is how the workloads express that.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, Mapping

from repro.events.event import Event
from repro.query.errors import RemoteDataUnavailable

__all__ = [
    "Expr",
    "Attr",
    "Const",
    "RemoteRef",
    "Predicate",
    "Comparison",
    "Membership",
    "FunctionPredicate",
    "SameAttribute",
    "Resolver",
    "DEFAULT_PREDICATE_COST",
]

Resolver = Callable[[tuple], Any]
Env = Mapping[str, Event]

DEFAULT_PREDICATE_COST = 0.02  # virtual us per evaluation of a plain predicate

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "<>": operator.ne,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Expr(ABC):
    """A value-producing expression over bound events and remote data."""

    @abstractmethod
    def bindings(self) -> frozenset[str]:
        """Names of event bindings the expression reads."""

    @abstractmethod
    def remote_refs(self) -> tuple["RemoteRef", ...]:
        """All remote references appearing in the expression."""

    @abstractmethod
    def evaluate(self, env: Env, resolver: Resolver) -> Any:
        """Compute the expression's value."""


class Attr(Expr):
    """``binding.attr`` — an attribute of a bound event."""

    __slots__ = ("binding", "attr")

    def __init__(self, binding: str, attr: str) -> None:
        self.binding = binding
        self.attr = attr

    def bindings(self) -> frozenset[str]:
        return frozenset((self.binding,))

    def remote_refs(self) -> tuple["RemoteRef", ...]:
        return ()

    def evaluate(self, env: Env, resolver: Resolver) -> Any:
        try:
            event = env[self.binding]
        except KeyError:
            raise KeyError(
                f"binding {self.binding!r} not bound; environment has {sorted(env)}"
            ) from None
        return event[self.attr]

    def __repr__(self) -> str:
        return f"{self.binding}.{self.attr}"


class Const(Expr):
    """A literal constant."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def bindings(self) -> frozenset[str]:
        return frozenset()

    def remote_refs(self) -> tuple["RemoteRef", ...]:
        return ()

    def evaluate(self, env: Env, resolver: Resolver) -> Any:
        return self.value

    def __repr__(self) -> str:
        return repr(self.value)


class RemoteRef(Expr):
    """``REMOTE<source>[binding.attr]`` — a remote data element lookup.

    The *source* names the logical remote table; the concrete lookup key is
    the value of ``binding.attr`` in the current environment.  The pair of
    them forms the :data:`~repro.remote.element.DataKey` handed to the
    resolver.
    """

    __slots__ = ("source", "key_expr")

    def __init__(self, source: str, key_expr: Attr) -> None:
        if not isinstance(key_expr, Attr):
            raise TypeError("a remote reference key must be a binding.attr expression")
        self.source = source
        self.key_expr = key_expr

    @property
    def key_binding(self) -> str:
        """The event binding whose payload provides the lookup key."""
        return self.key_expr.binding

    def concrete_key(self, env: Env) -> tuple:
        """The ``(source, key)`` pair this reference addresses under ``env``."""
        return (self.source, self.key_expr.evaluate(env, _NO_RESOLVER))

    def bindings(self) -> frozenset[str]:
        return self.key_expr.bindings()

    def remote_refs(self) -> tuple["RemoteRef", ...]:
        return (self,)

    def evaluate(self, env: Env, resolver: Resolver) -> Any:
        return resolver(self.concrete_key(env))

    def __repr__(self) -> str:
        return f"REMOTE<{self.source}>[{self.key_expr!r}]"


def _NO_RESOLVER(key: tuple) -> Any:
    raise RemoteDataUnavailable(key)


class Predicate(ABC):
    """A boolean condition over an environment and remote data."""

    eval_cost: float = DEFAULT_PREDICATE_COST

    @abstractmethod
    def bindings(self) -> frozenset[str]:
        """Bindings that must be bound before the predicate can be checked."""

    @abstractmethod
    def remote_refs(self) -> tuple[RemoteRef, ...]:
        """Remote references, empty for local predicates."""

    @abstractmethod
    def evaluate(self, env: Env, resolver: Resolver) -> bool:
        """Check the predicate; may raise ``RemoteDataUnavailable``."""

    @property
    def is_remote(self) -> bool:
        return bool(self.remote_refs())

    def remote_keys(self, env: Env) -> tuple[tuple, ...]:
        """Concrete ``(source, key)`` pairs the predicate needs under ``env``."""
        return tuple(ref.concrete_key(env) for ref in self.remote_refs())


class Comparison(Predicate):
    """``left OP right`` for OP in ``= <> < <= > >=``."""

    __slots__ = ("op", "left", "right", "eval_cost", "_fn")

    def __init__(self, op: str, left: Expr, right: Expr, eval_cost: float = DEFAULT_PREDICATE_COST):
        if op not in _COMPARATORS:
            raise ValueError(f"unsupported comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right
        self.eval_cost = eval_cost
        self._fn = _COMPARATORS[op]

    def bindings(self) -> frozenset[str]:
        return self.left.bindings() | self.right.bindings()

    def remote_refs(self) -> tuple[RemoteRef, ...]:
        return self.left.remote_refs() + self.right.remote_refs()

    def evaluate(self, env: Env, resolver: Resolver) -> bool:
        return bool(self._fn(self.left.evaluate(env, resolver), self.right.evaluate(env, resolver)))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Membership(Predicate):
    """``item [NOT] IN collection`` — the collection is usually a RemoteRef."""

    __slots__ = ("item", "collection", "negated", "eval_cost")

    def __init__(
        self,
        item: Expr,
        collection: Expr,
        negated: bool = False,
        eval_cost: float = DEFAULT_PREDICATE_COST,
    ) -> None:
        self.item = item
        self.collection = collection
        self.negated = negated
        self.eval_cost = eval_cost

    def bindings(self) -> frozenset[str]:
        return self.item.bindings() | self.collection.bindings()

    def remote_refs(self) -> tuple[RemoteRef, ...]:
        return self.item.remote_refs() + self.collection.remote_refs()

    def evaluate(self, env: Env, resolver: Resolver) -> bool:
        value = self.item.evaluate(env, resolver)
        collection = self.collection.evaluate(env, resolver)
        contained = value in collection
        return not contained if self.negated else contained

    def __repr__(self) -> str:
        word = "NOT IN" if self.negated else "IN"
        return f"({self.item!r} {word} {self.collection!r})"


class FunctionPredicate(Predicate):
    """An arbitrary boolean function over expression values.

    This is the escape hatch the case-study workloads use for predicates the
    textual language cannot express (e.g. spatial overlap of geo cells); the
    declared ``eval_cost`` models their compute intensity.
    """

    __slots__ = ("fn", "args", "name", "eval_cost")

    def __init__(
        self,
        fn: Callable[..., bool],
        args: Iterable[Expr],
        name: str = "fn",
        eval_cost: float = DEFAULT_PREDICATE_COST,
    ) -> None:
        self.fn = fn
        self.args = tuple(args)
        self.name = name
        self.eval_cost = eval_cost

    def bindings(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for arg in self.args:
            result |= arg.bindings()
        return result

    def remote_refs(self) -> tuple[RemoteRef, ...]:
        refs: tuple[RemoteRef, ...] = ()
        for arg in self.args:
            refs += arg.remote_refs()
        return refs

    def evaluate(self, env: Env, resolver: Resolver) -> bool:
        return bool(self.fn(*(arg.evaluate(env, resolver) for arg in self.args)))

    def __repr__(self) -> str:
        inner = ", ".join(repr(arg) for arg in self.args)
        return f"{self.name}({inner})"


class SameAttribute:
    """``SAME[attr]`` — all selected events agree on ``attr``.

    This is not itself a :class:`Predicate`: the compiler expands it into a
    chain of pairwise equality comparisons (each new binding equals the
    previous one), which is equivalent by transitivity and keeps guards
    binary.
    """

    __slots__ = ("attr",)

    def __init__(self, attr: str) -> None:
        self.attr = attr

    def __repr__(self) -> str:
        return f"SAME[{self.attr}]"

"""Rule plugins.  Importing this package registers every rule.

Adding a rule: create a module here, subclass
:class:`repro.analysis.core.Rule`, decorate with ``@register``, and import
the module below.  IDs are stable and documented in
``docs/static_analysis.md``.
"""

from repro.analysis.rules import (  # noqa: F401
    architecture,
    contracts_rules,
    determinism,
    metrics,
    purity,
    taint_rules,
)

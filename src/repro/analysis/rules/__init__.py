"""Rule plugins.  Importing this package registers every rule.

Adding a rule: create a module here, subclass
:class:`repro.analysis.core.Rule`, decorate with ``@register``, and import
the module below.  IDs are stable and documented in
``docs/static_analysis.md``.
"""

from repro.analysis.rules import architecture, determinism, metrics  # noqa: F401

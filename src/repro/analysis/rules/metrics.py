"""M1: metric names and trace categories come from the registered tables.

The observability layer's whole value is that traces and metric snapshots
are diffable across runs and joinable with the declared key tables
(``TRANSPORT_COUNTER_KEYS``, ``STRATEGY_COUNTER_KEYS``,
``CACHE_COUNTER_KEYS``, the ``CAT_*`` trace categories).  A stray string
literal at an emission site is a category the validator has never heard of
and a metric column no table declares — it silently falls out of every
report join.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, register
from repro.analysis.index import Module, ModuleIndex, dotted_chain

__all__ = ["RegisteredNamesRule"]

#: Modules that define the trace/metric machinery may use raw strings —
#: they are the registry, not clients of it.
DEFINING_MODULES = ("obs/trace.py", "obs/registry.py")

_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})

#: Prefix every registered trace-category constant shares.
_CATEGORY_PREFIX = "CAT_"


@register
class RegisteredNamesRule(Rule):
    id = "M1"
    title = "trace categories and metric names must be registered constants"
    explain = """\
Trace emission sites must pass one of the CAT_* category constants from
repro.obs.trace as the category argument, and metric cells must be created
through names derived from the registered key tables — never inline string
literals.  The rule flags:

* `tracer.emit("fetch", ...)` — a literal category; pass CAT_FETCH.  A
  category variable must itself be (or be imported as) a CAT_* constant.
* `registry.counter("fetch.retries")` — a stray metric literal; derive the
  name from a key-table constant (the stats facades build their cells as
  f-strings over STRATEGY_COUNTER_KEYS et al.) or declare a named
  *_METRIC constant next to the tables.

Dynamic names (f-strings over the key tables, scoped-registry prefixes)
are accepted; the defining modules repro.obs.trace and repro.obs.registry
are exempt."""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        if module.pkg in DEFINING_MODULES or module.tree is None:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            attr = node.func.attr
            if attr == "emit" and node.args:
                yield from self._check_category(module, node.args[0])
            elif attr in _METRIC_FACTORIES and node.args:
                yield from self._check_metric_name(module, attr, node.args[0])

    def _check_category(self, module: Module, arg: ast.expr) -> Iterator[Finding]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            yield self.finding(
                module, arg.lineno,
                f"trace category passed as string literal {arg.value!r} — "
                f"use the CAT_* constants from repro.obs.trace",
            )
            return
        chain = dotted_chain(arg)
        if chain is None:
            return  # computed expression; not statically checkable
        terminal = chain[-1]
        if terminal.startswith(_CATEGORY_PREFIX):
            return
        origin = module.bindings.get(chain[0], "")
        if _CATEGORY_PREFIX in origin:
            return
        yield self.finding(
            module, arg.lineno,
            f"trace category {'.'.join(chain)!r} does not resolve to a "
            f"registered CAT_* constant",
        )

    def _check_metric_name(
        self, module: Module, factory: str, arg: ast.expr
    ) -> Iterator[Finding]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            yield self.finding(
                module, arg.lineno,
                f"metric name passed to {factory}() as stray string literal "
                f"{arg.value!r} — derive it from a registered key-table "
                f"constant (e.g. STRATEGY_COUNTER_KEYS, TRANSPORT_COUNTER_KEYS)",
            )


@register
class GuardedEmissionRule(Rule):
    id = "M2"
    title = "trace emission sites are guarded by `if tracer.enabled`"
    explain = """\
The trace bus's contract (repro.obs.trace) is that the disabled path costs
one attribute read and one branch: instrumented code MUST guard every
`tracer.emit(...)` with `if tracer.enabled:` so untraced runs never build
record dicts, format keys, or walk match events.  An unguarded emit is
silently correct (emit() re-checks the flag) but puts allocation and
formatting work on the hot path of every untraced run — and the guard is
also what keeps tracing-on/off runs byte-identical in cost profiles.

The rule flags `.emit(` calls that are not lexically inside an `if` whose
test reads an `.enabled` attribute.  Helper methods that centralise
emission can justify themselves with `# eires: allow[M2] reason`."""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        if module.pkg in DEFINING_MODULES or module.tree is None:
            return
        for call in _unguarded_emits(module.tree):
            yield self.finding(
                module, call.lineno,
                "tracer.emit(...) outside an `if tracer.enabled:` guard — "
                "the disabled path must not build trace records",
            )


def _test_reads_enabled(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "enabled":
            return True
        if isinstance(node, ast.Name) and node.id == "enabled":
            return True
    return False


def _unguarded_emits(tree: ast.Module) -> list[ast.Call]:
    """Every ``.emit(...)`` call not lexically under an enabled-guard."""
    found: list[ast.Call] = []

    def walk(node: ast.AST, guarded: bool) -> None:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "emit" and not guarded:
                found.append(node)
        if isinstance(node, ast.If):
            branch_guarded = guarded or _test_reads_enabled(node.test)
            for child in node.body:
                walk(child, branch_guarded)
            for child in node.orelse:
                walk(child, guarded)
            walk(node.test, guarded)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested callable runs later: its body starts unguarded.
            for child in ast.iter_child_nodes(node):
                walk(child, False)
            return
        for child in ast.iter_child_nodes(node):
            walk(child, guarded)

    walk(tree, False)
    return found

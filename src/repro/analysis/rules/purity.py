"""P1: the promised-pure surface stays side-effect-free.

The vectorized backend's correctness argument is a plan/apply split: the
plan phase may stage decisions (``_plan``) and count work
(``vector_stats``) but must not touch run state, matches, or caches —
otherwise plan order becomes observable and byte-equivalence with the
reference backend dies.  Likewise the Eq. 5/7/8 scoring functions are
consulted speculatively (shedding ranks, batching scores, strategies
compare) and must be consequence-free to call.

The contract table lives in :data:`repro.analysis.effects.PURE_CONTRACTS`;
the effect engine closes each function's effects over the call graph, so a
mutation buried in a helper two calls down still surfaces here.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.core import Finding, Rule, register
from repro.analysis.effects import effect_analysis
from repro.analysis.index import Module, ModuleIndex

__all__ = ["PurityRule"]


@register
class PurityRule(Rule):
    id = "P1"
    scope = "program"
    title = "promised-pure functions (plan phase, Eq. 5/7/8 scoring) stay effect-free"
    explain = """\
Functions listed in repro.analysis.effects.PURE_CONTRACTS carry a purity
promise: the vectorized backend's plan phase (allowed to touch only its
staged `_plan` dict and `vector_stats` counters) and the Eq. 5/7/8
utility / rate / shedding scoring functions (allowed to touch nothing).

The effect engine infers each function's observable side effects —
attribute stores, global writes, mutations of non-fresh objects — and
closes them transitively over resolved call edges.  Mutating a container
the function itself builds is fine; mutating anything that outlives the
call is a finding, including effects inherited from helpers.

A finding here means either the function gained a real side effect (fix
it: return the value instead of storing it) or the contract table needs a
deliberate, reviewed widening in effects.py."""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        engine = effect_analysis(index)
        for qual, allowed, effect in engine.violations(module):
            where = f"{effect.rel}:{effect.line}"
            via = f" via {effect.via}()" if effect.via else ""
            allowance = (
                f" (allowed: {', '.join(allowed)})" if allowed else ""
            )
            yield self.finding(
                module, self._anchor_line(module, qual, effect),
                f"promised-pure `{qual}` has a {effect.kind} side effect on "
                f"`{effect.name}` at {where}{via}{allowance}",
            )

    @staticmethod
    def _anchor_line(module: Module, qual: str, effect) -> int:
        if effect.rel == module.rel:
            return effect.line
        for fn in module.functions:
            if fn["qual"] == qual:
                return fn["line"]
        return 1

"""A1–A3: the runtime-layer architecture rules (legacy R1–R3).

Migrated from ``tools/check_architecture.py`` (which is now a thin shim
over this module).  The finding messages deliberately keep the legacy
``R1``/``R2``/``R3`` wording so CI logs and the architecture test suite
read the same before and after the migration.

These rules only apply to modules *inside* the repro package (or a scratch
tree scanned with an explicit package root): benchmarks and scripts live
above the architecture and receive their runtime through the facades.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.core import Finding, Rule, register
from repro.analysis.index import Module, ModuleIndex

__all__ = [
    "EngineLayeringRule",
    "CompositionRootRule",
    "ShadowAssemblyRule",
    "TransportShimRule",
    "SheddingCompositionRule",
    "BackendCompositionRule",
    "FleetCompositionRule",
]

# A1 (R1): packages of the evaluation core, and the prefixes they must not
# import.
CORE_PACKAGES = ("engine", "nfa", "backends")
FORBIDDEN_FOR_CORE = ("repro.strategies", "repro.core", "repro.runtime")

# A2/A3 (R2/R3): substrate constructors, by group.
SUBSTRATE_GROUPS = {
    "Transport": "transport",
    "LRUCache": "cache",
    "CostBasedCache": "cache",
    "Tracer": "tracer",
}
ROOT_ONLY = {"Transport", "LRUCache", "CostBasedCache"}
DEFINING_MODULES = {
    "Transport": ("remote/transport.py",),
    "LRUCache": ("cache/lru.py",),
    "CostBasedCache": ("cache/cost_based.py",),
    "Tracer": ("obs/trace.py",),
}
COMPOSITION_ROOT = "runtime/"

# A4: the deleted Transport entry points — the symbols must not exist, as
# definitions or as call sites, anywhere in the tree.
TRANSPORT_SHIMS = ("fetch_blocking", "fetch_async")

# A5: the shedding plane's constructors, callable only by the composition
# root and inside the plane itself.
SHEDDING_CONSTRUCTORS = ("LoadShedder", "OverloadDetector", "make_shedding_policy")
SHEDDING_PACKAGE = "shedding/"

# A6: evaluation-backend construction entry points, callable only by the
# composition root and inside the backends package; and the single module
# allowed to import NumPy.
BACKEND_CONSTRUCTORS = (
    "Engine",
    "TreeEngine",
    "ReferenceBackend",
    "TreeBackend",
    "VectorizedBackend",
    "make_backend",
    "get_backend",
)
BACKEND_DEFINING_MODULES = {
    "Engine": ("engine/engine.py",),
    "TreeEngine": ("engine/tree.py",),
}
BACKEND_PACKAGE = "backends/"
NUMPY_ALLOWED_MODULE = "backends/vectorized.py"

# A7: the serving plane's internals, constructed only inside repro.serving
# itself — everything else composes fleets via FleetBuilder.
SERVING_CONSTRUCTORS = ("Fleet", "TokenBucket")
SERVING_PACKAGE = "serving/"


@register
class EngineLayeringRule(Rule):
    id = "A1"
    title = "engine layering: the evaluation core imports nothing above it"
    explain = """\
(Legacy R1.)  The evaluation core — repro.engine and repro.nfa — sits below
the strategy and assembly layers: it may not import repro.strategies,
repro.core, or repro.runtime.  Strategies see engines through the
FetchDecision callback interface, never the other way round; an upward
import would let evaluation semantics depend on which strategy or facade is
loaded."""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        if module.pkg is None or module.pkg_top not in CORE_PACKAGES:
            return
        for name, line in module.imports:
            if any(name == bad or name.startswith(bad + ".") for bad in FORBIDDEN_FOR_CORE):
                yield self.finding(
                    module, line, f"R1 layering: core package imports {name}"
                )


@register
class CompositionRootRule(Rule):
    id = "A2"
    title = "composition root: substrate classes built only in repro.runtime"
    explain = """\
(Legacy R2.)  Only repro.runtime (and the defining modules themselves) may
construct the shared substrate classes Transport, LRUCache, and
CostBasedCache.  Everything else — facades, CLI, benchmarks — receives an
assembled runtime from RuntimeBuilder, so fault tolerance, tracing, and
metrics wiring cannot silently diverge between entry points."""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        pkg = module.pkg
        if pkg is None or pkg.startswith(COMPOSITION_ROOT):
            return
        for name, line in module.constructed:
            if name in ROOT_ONLY and pkg not in DEFINING_MODULES[name]:
                yield self.finding(
                    module, line,
                    f"R2 composition root: constructs {name} outside repro.runtime",
                )


@register
class ShadowAssemblyRule(Rule):
    id = "A3"
    title = "no shadow assembly: one module wires at most one substrate group"
    explain = """\
(Legacy R3.)  Outside repro.runtime, no module may construct classes from
two or more substrate groups (transport / cache / tracer) in one place:
wiring them together is the composition root's job.  Constructing a Tracer
alone is fine — callers build tracers and hand them INTO the builder."""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        pkg = module.pkg
        if pkg is None or pkg.startswith(COMPOSITION_ROOT):
            return
        groups: dict[str, tuple[str, int]] = {}
        for name, line in module.constructed:
            if name not in SUBSTRATE_GROUPS or pkg in DEFINING_MODULES.get(name, ()):
                continue
            groups.setdefault(SUBSTRATE_GROUPS[name], (name, line))
        if len(groups) >= 2:
            built = ", ".join(sorted(name for name, _ in groups.values()))
            line = min(line for _, line in groups.values())
            yield self.finding(
                module, line,
                f"R3 shadow assembly: constructs {built} together outside repro.runtime",
            )


@register
class TransportShimRule(Rule):
    id = "A4"
    title = "the removed Transport fetch shims must not exist"
    explain = """\
Transport.fetch_blocking and Transport.fetch_async were deprecated shims
over the unified submit(FetchRequest) surface and have been deleted;
batching, coalescing, and retry semantics all hang off submit().  The
symbols must not reappear anywhere — not as method or function definitions
(which would resurrect a parallel entry point bypassing the batch plane)
and not as call sites (which would be dead code against the current
Transport).  Build a FetchRequest and go through submit()."""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        for name, line in module.constructed:
            if name in TRANSPORT_SHIMS:
                yield self.finding(
                    module, line,
                    f"removed Transport shim {name}() called; the symbol no "
                    "longer exists — use transport.submit(FetchRequest(...))",
                )
        for fn in module.functions:
            if fn["qual"].rsplit(".", 1)[-1] in TRANSPORT_SHIMS:
                yield self.finding(
                    module, fn["line"],
                    f"defines {fn['qual']}: the removed Transport shim names "
                    "must not be reintroduced; expose submit(FetchRequest(...)) "
                    "instead",
                )


@register
class SheddingCompositionRule(Rule):
    id = "A5"
    title = "shedding plane constructed only by the composition root"
    explain = """\
Load shedding silently trades recall for latency, so whether it is active
must be decided in exactly one place.  Only repro.runtime (the composition
root) and repro.shedding itself may construct the plane's entry points —
LoadShedder, OverloadDetector, and the make_shedding_policy factory.
Everything else receives an assembled session from RuntimeBuilder; a
strategy, facade, or benchmark wiring its own shedder could drop events or
runs without the config, counters, and trace records that make every drop
accountable (and would break the guarantee that shed_policy='none' is
byte-identical to a build without the plane)."""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        pkg = module.pkg
        if pkg is None or pkg.startswith((COMPOSITION_ROOT, SHEDDING_PACKAGE)):
            return
        for name, line in module.constructed:
            if name in SHEDDING_CONSTRUCTORS:
                yield self.finding(
                    module, line,
                    f"shedding composition: constructs {name} outside "
                    "repro.runtime; sessions get their LoadShedder from "
                    "RuntimeBuilder",
                )


@register
class BackendCompositionRule(Rule):
    id = "A6"
    title = "backends built only via the registry; NumPy confined to vectorized"
    explain = """\
Which engine evaluates a query decides cost accounting, capability limits,
and byte-identity guarantees, so it must be chosen in exactly one place.
Only repro.runtime (the composition root) and repro.backends itself may
construct evaluation engines — Engine, TreeEngine, the registered backend
classes, or the make_backend/get_backend registry entry points.  Everything
else, benchmarks included, names a backend in its QuerySpec (or
--engine-backend) and receives an assembled session from RuntimeBuilder, so
capability checks and the RunResult backend stamp cannot be bypassed.

NumPy is an optional dependency serving exactly one purpose: batch guard
evaluation inside backends/vectorized.py.  Importing it anywhere else would
silently make core behaviour depend on an extra that plain installs (and
the REPRO_DISABLE_NUMPY CI leg) do not have.  Fix by moving the numeric
kernel into the vectorized backend or writing it dependency-free."""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        pkg = module.pkg
        if pkg != NUMPY_ALLOWED_MODULE:
            for name, line in module.imports:
                if name == "numpy" or name.startswith("numpy."):
                    yield self.finding(
                        module, line,
                        "numpy imported outside backends/vectorized.py; the "
                        "[vector] extra must stay confined to the vectorized "
                        "backend",
                    )
        if pkg is not None and pkg.startswith((COMPOSITION_ROOT, BACKEND_PACKAGE)):
            return
        for name, line in module.constructed:
            if name in BACKEND_CONSTRUCTORS and (
                pkg not in BACKEND_DEFINING_MODULES.get(name, ())
            ):
                yield self.finding(
                    module, line,
                    f"backend composition: constructs {name} outside "
                    "repro.runtime; name a backend in the QuerySpec and let "
                    "RuntimeBuilder build it via the registry",
                )


@register
class FleetCompositionRule(Rule):
    id = "A7"
    title = "fleets composed only via FleetBuilder"
    explain = """\
The serving plane's placement, rate limiting, metric scoping, and trace
records all hang off FleetBuilder.build(): it validates tenant specs, maps
tenants onto shards, builds one Runtime per shard on a single SharedPlane,
and wires per-tenant token buckets and quotas into the shedding plane.
Constructing the plane's internals — Fleet or TokenBucket — anywhere
outside repro.serving would bypass that validation and produce fleets whose
admission decisions carry no provenance, so only the serving package itself
may build them.  Everything else declares TenantSpecs and calls
FleetBuilder."""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        pkg = module.pkg
        if pkg is not None and pkg.startswith(SERVING_PACKAGE):
            return
        for name, line in module.constructed:
            if name in SERVING_CONSTRUCTORS:
                yield self.finding(
                    module, line,
                    f"serving composition: constructs {name} outside "
                    "repro.serving; declare TenantSpecs and compose the fleet "
                    "via FleetBuilder",
                )

"""R1–R3: the registries, the code, the docs, and the consumers tell one story.

R1 guards the code↔registry edge: an emitted trace category must be a
constant *from* ``repro.obs.trace`` (a locally minted ``CAT_BOGUS``
passes M1's naming check but no validator knows it), and a non-literal
metric name must resolve to a declared ``*_METRIC`` constant.

R2 guards the code↔docs edge: every registered backend name/alias,
shedding policy, and trace category must appear (backticked) in its docs
table — the tables operators and the CLI help point at.

R3 guards the code↔consumer edge: ``examples/`` and ``benchmarks/`` are
the in-tree consumers of the *stable public API* — the curated
``repro/__init__.py`` ``__all__`` plus the declared public subpackages —
so an example reaching into ``repro.runtime.builder`` would silently
promote an internal module to load-bearing API.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.contracts import contract_analysis
from repro.analysis.core import Finding, Rule, register
from repro.analysis.index import Module, ModuleIndex

__all__ = ["RegistryDriftRule", "DocsDriftRule", "PublicSurfaceRule"]

# R3: directories holding in-tree consumers of the public API, and the
# subpackage surfaces documented as stable alongside the top-level
# ``repro`` exports (see README "Public API").
CONSUMER_DIRS = ("examples", "benchmarks")
PUBLIC_PACKAGES = ("repro.workloads", "repro.bench", "repro.metrics.reporting")


@register
class RegistryDriftRule(Rule):
    id = "R1"
    scope = "program"
    title = "emitted categories and metric names resolve to their registries"
    explain = """\
Whole-program cross-check of emission sites against the defining
registries:

* every `tracer.emit(CAT_X, ...)` category must import (possibly through
  re-export aliases) from repro.obs.trace AND name a constant that module
  actually defines — a locally defined `CAT_BOGUS = "bogus"` satisfies
  M1's spelling check while being invisible to the trace validator and
  every docs table, which is exactly the drift this rule catches;
* every registry.counter/gauge/histogram name passed as a `*_METRIC`
  constant must resolve to a defined string constant somewhere in the
  indexed tree — a renamed constant with a stale call site dies here
  instead of at runtime.

Fix by importing the real constant (adding it to obs/trace.py if the
category is genuinely new) or repairing the stale reference."""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        engine = contract_analysis(index)
        for line, name in engine.rogue_emit_categories(module):
            yield self.finding(
                module, line,
                f"emitted trace category `{name}` does not resolve to a "
                f"constant defined in repro.obs.trace — the validator and "
                f"docs tables will never see it",
            )
        for line, name in engine.rogue_metric_names(module):
            yield self.finding(
                module, line,
                f"metric name constant `{name}` resolves to no *_METRIC "
                f"string constant in the indexed tree",
            )


@register
class DocsDriftRule(Rule):
    id = "R2"
    scope = "program"
    title = "registered backends, policies, and categories are documented"
    explain = """\
Whole-program cross-check of the extension registries against the docs
tables operators read:

* every `register_backend("name", aliases=...)` name and alias must appear
  backticked in docs/backends.md;
* every shedding policy key in SHED_POLICIES must appear in
  docs/shedding.md;
* every CAT_* category value in repro.obs.trace must appear in
  docs/observability.md.

Findings anchor at the registration / constant-definition line.  When the
docs tree is absent (fixture runs, scratch trees) the rule is inert.  Fix
by documenting the new name in its table — or deleting a registration
that should not exist."""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        engine = contract_analysis(index)
        checks = (
            (engine.undocumented_backends(), "backend", "docs/backends.md"),
            (engine.undocumented_policies(), "shedding policy", "docs/shedding.md"),
            (engine.undocumented_categories(), "trace category", "docs/observability.md"),
        )
        for entries, noun, doc in checks:
            for owner, line, name in entries:
                if owner.rel != module.rel:
                    continue
                yield self.finding(
                    module, line,
                    f"registered {noun} `{name}` is not documented in {doc}",
                )


@register
class PublicSurfaceRule(Rule):
    id = "R3"
    title = "examples and benchmarks import only the public repro surface"
    explain = """\
examples/ and benchmarks/ are the in-tree consumers of the stable public
API: they may import the `repro` package itself (whose curated __all__ is
the documented surface) and the declared public subpackages —
repro.workloads, repro.bench, and repro.metrics.reporting.  Importing any
other repro.* module from a consumer silently promotes an internal module
to load-bearing API: refactors inside src/ would break examples users
copy-paste, and the curated surface would stop meaning anything.  Fix by
importing the name from `repro` (exporting it there if it genuinely
belongs to the stable surface) or from one of the public subpackages."""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        parts = module.path.parts
        if not any(consumer in parts for consumer in CONSUMER_DIRS):
            return
        for name, line in module.imports:
            if name == "repro" or not name.startswith("repro."):
                continue
            if name in PUBLIC_PACKAGES or name.startswith(
                tuple(pkg + "." for pkg in PUBLIC_PACKAGES)
            ):
                continue
            yield self.finding(
                module, line,
                f"imports internal module {name}; consumers use the public "
                "surface — `repro` itself or "
                f"{', '.join(PUBLIC_PACKAGES)}",
            )

"""Determinism rules: wall clock (D1), RNG (D2), iteration order (D3),
float equality (D4).

The reproduction's guarantees — seed-identical results, tracing-on/off
byte-identical runs, replayable Eq. 7/Eq. 8 decision provenance — hold only
while no code path reads the wall clock, draws from unseeded randomness, or
lets collection-iteration order leak into decisions.  These rules make the
invariants structural instead of test-enforced.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, register
from repro.analysis.index import Module, ModuleIndex, dotted_chain

__all__ = ["WallClockRule", "RngRule", "UnorderedIterationRule", "FloatEqualityRule"]

# -- D1 ---------------------------------------------------------------------

#: Call targets that read the host's wall clock (or block on real time).
WALL_CLOCK_TARGETS = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.sleep",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: Package paths allowed to touch real time: the virtual-time substrate
#: itself, and the bench harness (wall-clock measurement of real runtimes).
WALL_CLOCK_ALLOWED_PREFIXES = ("sim/",)
WALL_CLOCK_ALLOWED_FILES = ("bench/harness.py",)


@register
class WallClockRule(Rule):
    id = "D1"
    title = "no wall clock outside sim/ and the bench harness"
    explain = """\
All time in the reproduction is virtual: the VirtualClock advances with the
event stream, transmission latencies are model draws, and every duration
metric is in virtual microseconds.  A single wall-clock read (time.time,
time.perf_counter, datetime.now/utcnow/today, ...) makes a run depend on
host speed and breaks seed-identical replay and trace diffing.

Allowed locations: the sim/ package (it *implements* the time substrate)
and bench/harness.py (measuring real runtimes is the bench harness's job).
Anywhere else, take `now` from the VirtualClock, or justify the read with
`# eires: allow[D1] reason`."""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        pkg = module.pkg
        if pkg is not None:
            if pkg.startswith(WALL_CLOCK_ALLOWED_PREFIXES) or pkg in WALL_CLOCK_ALLOWED_FILES:
                return
        for target, line in module.calls:
            if target in WALL_CLOCK_TARGETS:
                yield self.finding(
                    module, line,
                    f"wall-clock call {target}() outside sim/ — use the "
                    f"VirtualClock (virtual time) instead",
                )


# -- D2 ---------------------------------------------------------------------

#: The only module allowed to construct generators from the stdlib: the
#: root of the seeded RNG tree.
RNG_ROOT = "sim/rng.py"


@register
class RngRule(Rule):
    id = "D2"
    title = "no random/numpy.random outside sim/rng.py"
    explain = """\
Every stochastic draw flows through the seeded RNG tree rooted in
repro.sim.rng: make_rng(seed) creates the root and spawn(parent, label)
derives decorrelated child streams.  Calling the global `random` module
(random.random(), random.seed(), random.Random(...)) or anything under
numpy.random creates randomness outside the tree, so a single seed no
longer reproduces the run.

Annotating parameters as `random.Random` is fine — the rule flags *calls*
resolving into the random module and any import of numpy.random.  Fix by
accepting an rng parameter or constructing via repro.sim.rng.make_rng /
spawn; justify true exceptions with `# eires: allow[D2] reason`."""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        if module.pkg == RNG_ROOT:
            return
        for name, line in module.imports:
            if name == "numpy.random" or name.startswith("numpy.random."):
                yield self.finding(
                    module, line,
                    "numpy.random imported — all draws must come from the "
                    "seeded RNG tree (repro.sim.rng)",
                )
        for target, line in module.calls:
            if target == "random" or target.startswith("random."):
                yield self.finding(
                    module, line,
                    f"{target}() draws outside the seeded RNG tree — use "
                    f"repro.sim.rng.make_rng/spawn or an injected rng",
                )
            elif target.startswith("numpy.random."):
                yield self.finding(
                    module, line,
                    f"{target}() draws outside the seeded RNG tree",
                )


# -- D3 ---------------------------------------------------------------------

#: Decision-code packages where iteration order can leak into behaviour.
ORDER_SENSITIVE_PREFIXES = ("strategies/", "cache/", "runtime/", "shedding/")

_VIEW_METHODS = frozenset({"keys", "values", "items"})
_SET_BUILTINS = frozenset({"set", "frozenset"})


@register
class UnorderedIterationRule(Rule):
    id = "D3"
    title = "no unsorted set/dict-view iteration in decision code"
    explain = """\
Inside strategies/, cache/, runtime/, and shedding/ — the code that decides
what to fetch, postpone, cache, evict, and shed — iteration order is
behaviour: ties in utility, victim sampling, and obligation resolution are
broken by whichever element comes first.  Sets iterate in hash order (saltable), and dict views
iterate in insertion order, which silently depends on construction history.

The rule flags `for ... in` (and comprehensions) over set literals,
set()/frozenset() calls, and .keys()/.values()/.items() views unless the
iterable is wrapped in sorted(...).  Where insertion order is itself the
documented, deterministic order (e.g. report columns following a declared
counter-key table), keep it and justify with `# eires: allow[D3] reason`."""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        pkg = module.pkg
        if pkg is None or not pkg.startswith(ORDER_SENSITIVE_PREFIXES):
            return
        if module.tree is None:
            return
        for node in ast.walk(module.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for expr in iters:
                reason = self._unordered(expr)
                if reason is not None:
                    yield self.finding(
                        module, expr.lineno,
                        f"iterates over {reason} — wrap in sorted(...) so "
                        f"decision order cannot depend on construction history",
                    )

    @staticmethod
    def _unordered(expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Set):
            return "a set literal"
        if isinstance(expr, ast.SetComp):
            return "a set comprehension"
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in _SET_BUILTINS:
                return f"{func.id}(...)"
            if isinstance(func, ast.Attribute) and func.attr in _VIEW_METHODS and not expr.args:
                return f"an unsorted .{func.attr}() view"
        return None


# -- D4 ---------------------------------------------------------------------

#: The Eq. 5 / Eq. 7 / Eq. 8 modules: utility values and gate thresholds.
FLOAT_GATE_MODULES = (
    "utility/model.py",
    "utility/rates.py",
    "strategies/prefetch.py",
    "strategies/lazy.py",
    "strategies/fetch_plane.py",
    "cache/cost_based.py",
)

#: Calls whose results are float-valued utility/gate quantities.
FLOAT_VALUED_CALLS = frozenset({
    "value",                 # UtilityModel.value — Eq. 5
    "urgent_utility",        # Eq. 3
    "future_utility",        # Eq. 4 / Eq. 6
    "min_utility",           # Eq. 7 threshold
    "estimate",              # monitored latency l-hat
    "estimate_source",
    "effective_estimate",    # fault-adjusted l-hat (Eq. 8 input)
    "extension_rate",        # lambda_i
    "expected_gap",          # 1 / lambda
    "class_count",           # #P_j(k)
})


@register
class FloatEqualityRule(Rule):
    id = "D4"
    title = "no ==/!= on float utility/gate expressions"
    explain = """\
The Eq. 5 utility (omega*UU + (1-omega)*FU), the Eq. 7 admission gate
(candidate utility vs. cache minimum), and the Eq. 8 postponement gate
(delta- vs. delta+) are float computations; exact ==/!= on them encodes a
decision in the last ulp of a rounding pattern, which is exactly the kind
of accidental behaviour a reordered reduction or refactored expression
flips.  Compare with an explicit tolerance (abs(a - b) <= eps,
math.isclose) or an ordering (<, <=), or justify an intentional exact
comparison (e.g. against a sentinel 0.0 that is assigned, never computed)
with `# eires: allow[D4] reason`."""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        if module.pkg not in FLOAT_GATE_MODULES or module.tree is None:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(self._floatish(operand) for operand in operands):
                yield self.finding(
                    module, node.lineno,
                    "float equality on a utility/gate expression — use an "
                    "explicit tolerance or ordering comparison",
                )

    @classmethod
    def _floatish(cls, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Constant):
            return isinstance(expr.value, float)
        if isinstance(expr, ast.UnaryOp):
            return cls._floatish(expr.operand)
        if isinstance(expr, ast.BinOp):
            return cls._floatish(expr.left) or cls._floatish(expr.right)
        if isinstance(expr, ast.Call):
            chain = dotted_chain(expr.func)
            return chain is not None and chain[-1] in FLOAT_VALUED_CALLS
        return False

"""T1–T3: interprocedural taint must not reach the decision surface.

The local determinism rules (D1–D3) catch a wall-clock read, an ambient
RNG draw, or an unsorted iteration *at the offending line*.  These rules
catch the same sources **one or more calls away**: a helper that returns
``perf_counter()``, a random jitter threaded through two functions into a
utility score, a ``set(...)`` return value iterated into a metric update.
Findings anchor at the *source* line — that is the code to fix — and name
the sink the taint reaches, so `--explain` plus the message reconstructs
the chain.

Only cross-function flows are reported here; a source and sink in one
body is already D1/D2/D3's finding, and reporting it twice would just
force double suppressions.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.core import Finding, Rule, register
from repro.analysis.index import KIND_ORDER, KIND_RNG, KIND_WALLCLOCK, Module, ModuleIndex
from repro.analysis.taint import taint_analysis

__all__ = ["WallClockTaintRule", "RngTaintRule", "OrderTaintRule"]


class _TaintRule(Rule):
    scope = "program"
    kind = ""
    noun = ""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        engine = taint_analysis(index)
        for flow in engine.flows_by_source_module().get(module.rel, ()):
            if flow.kind != self.kind:
                continue
            yield self.finding(
                module, flow.source_line,
                f"{self.noun} flows through {flow.hops}+ call(s) into the "
                f"{flow.describe_sink()} — inject the deterministic "
                f"substrate instead of reading ambient state",
            )


@register
class WallClockTaintRule(_TaintRule):
    id = "T1"
    kind = KIND_WALLCLOCK
    noun = "wall-clock value"
    title = "no wall-clock taint may reach emit/metric/utility sinks"
    explain = """\
A `time.*` / `datetime.now`-family read whose value escapes the reading
function — through a return value, an argument, or a `self.` attribute —
and reaches trace emission, a metric update, or the Eq. 5/7/8 utility /
shedding / batching scoring surface, through ANY call chain.

D1 already bans the read at its own line outside sim/; T1 closes the
laundering loophole where a helper in an unrestricted module returns the
stamp and a decision path consumes it two hops later.  Every timestamp
feeding a decision or a record must come from the injected virtual clock
(sim/clock.py).  The finding sits on the source line; the message names
the sink it reaches.  A justified `# eires: allow[D1]` (or `allow[T1]`)
on the source line sanctions the whole downstream flow."""


@register
class RngTaintRule(_TaintRule):
    id = "T2"
    kind = KIND_RNG
    noun = "ambient-RNG draw"
    title = "no ambient-RNG taint may reach emit/metric/utility sinks"
    explain = """\
A `random.*` / `numpy.random.*` draw from the process-global generator
whose value flows — through returns, arguments, or attribute stores —
into trace emission, metric updates, or utility/shedding/batching scoring.

D2 bans the draw at its own line outside sim/rng.py; T2 follows the value
through the call graph.  Randomness that feeds any decision or recorded
artifact must come from the seeded streams in sim/rng.py, or replay
breaks silently.  Suppress at the source line with `# eires: allow[D2]`
(or `allow[T2]`) plus a justification if a draw is genuinely
decision-irrelevant."""


@register
class OrderTaintRule(_TaintRule):
    id = "T3"
    kind = KIND_ORDER
    noun = "unsorted-iteration order"
    title = "no unsorted-iteration-order taint may reach emit/metric/utility sinks"
    explain = """\
A value carrying set / dict-view iteration order — `set(...)`, a bare
`.keys()` / `.values()` / `.items()` view — that crosses a function
boundary and reaches trace emission, metric updates, or scoring.

D3 bans unsorted iteration inside the decision directories; T3 catches
the return-value leak: a helper anywhere returning `set(candidates)`
whose caller iterates it into an emitted record or a metric.  Wrap the
escaping value in `sorted(...)` at the source (the wrapper strips the
taint), or justify with `# eires: allow[D3]` / `allow[T3]` when the
consumer is genuinely order-insensitive."""

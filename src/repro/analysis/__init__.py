"""repro.analysis — plugin-based static analysis for the reproduction.

Enforces, by construction and on every push, the invariants the test suite
can only spot-check: virtual-time discipline (no wall clock), the seeded
RNG tree (no stray randomness), deterministic iteration in decision code,
tolerance-guarded float gates, registered trace/metric names, and the
runtime-layer architecture.  See ``docs/static_analysis.md`` for the rule
catalogue and ``python -m repro.analysis --explain RULE`` for any rule's
rationale.
"""

from repro.analysis.core import (
    AnalysisResult,
    Finding,
    Rule,
    all_rules,
    analyze,
    analyze_index,
    get_rule,
    register,
)
from repro.analysis.index import Module, ModuleIndex

__all__ = [
    "AnalysisResult",
    "Finding",
    "Rule",
    "all_rules",
    "analyze",
    "analyze_index",
    "get_rule",
    "register",
    "Module",
    "ModuleIndex",
]

"""Findings, the rule-plugin registry, and the analysis driver.

A *rule* is a plugin with a stable ID (``D1`` … ``A3``), a one-line title,
and a longer ``explain`` text served by ``--explain``.  Rules receive each
parsed :class:`~repro.analysis.index.Module` together with the shared
:class:`~repro.analysis.index.ModuleIndex` and yield :class:`Finding`
records; the driver applies inline suppressions and returns an
:class:`AnalysisResult`.

Registration is import-driven: defining a ``Rule`` subclass with
``@register`` adds one instance to the registry, and
:mod:`repro.analysis.rules` imports every rule module on package import.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.index import Module, ModuleIndex
from repro.analysis.suppress import Suppression, parse_suppressions

__all__ = [
    "Finding",
    "Rule",
    "AnalysisResult",
    "register",
    "all_rules",
    "get_rule",
    "analyze",
    "analyze_index",
    "FRAMEWORK_RULE",
]

# Findings the framework itself emits (syntax errors, malformed
# suppressions).  Not a plugin, never suppressible.
FRAMEWORK_RULE = "E0"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str           # display path (as the file was reached from the CLI)
    rel: str            # path relative to its scan root
    pkg: str | None     # path relative to the repro package root, if any
    line: int
    message: str

    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline file."""
        basis = f"{self.rule}|{self.pkg or self.rel}|{self.message}"
        return hashlib.sha1(basis.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


class Rule:
    """Base class for rule plugins."""

    id: str = ""
    title: str = ""
    explain: str = ""

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, line: int, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=str(module.path),
            rel=module.rel,
            pkg=module.pkg,
            line=line,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its ID."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    _load_plugins()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule | None:
    _load_plugins()
    return _REGISTRY.get(rule_id)


def _load_plugins() -> None:
    # Import-driven registration; idempotent.
    import repro.analysis.rules  # noqa: F401


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, Suppression]] = field(default_factory=list)
    module_count: int = 0
    rule_ids: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def drop_baselined(self, fingerprints: set[str]) -> list[Finding]:
        """Remove (and return) findings recorded in the baseline."""
        baselined = [f for f in self.findings if f.fingerprint() in fingerprints]
        self.findings = [f for f in self.findings if f.fingerprint() not in fingerprints]
        return baselined


def _select_rules(rule_ids: Iterable[str] | None) -> list[Rule]:
    rules = all_rules()
    if rule_ids is None:
        return rules
    wanted = list(rule_ids)
    known = {rule.id for rule in rules}
    unknown = [rule_id for rule_id in wanted if rule_id not in known]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    return [rule for rule in rules if rule.id in set(wanted)]


def analyze_index(index: ModuleIndex, rule_ids: Iterable[str] | None = None) -> AnalysisResult:
    """Run the selected rules over an existing index."""
    rules = _select_rules(rule_ids)
    result = AnalysisResult(module_count=len(index), rule_ids=[rule.id for rule in rules])
    for module in index:
        if module.syntax_error is not None:
            result.findings.append(
                Finding(
                    rule=FRAMEWORK_RULE,
                    path=str(module.path),
                    rel=module.rel,
                    pkg=module.pkg,
                    line=int(module.syntax_error.split(":", 1)[0] or 1),
                    message=f"unparseable: {module.syntax_error.split(': ', 1)[-1]}",
                )
            )
            continue
        suppressions, malformed = parse_suppressions(module.lines)
        for line, message in malformed:
            result.findings.append(
                Finding(
                    rule=FRAMEWORK_RULE,
                    path=str(module.path),
                    rel=module.rel,
                    pkg=module.pkg,
                    line=line,
                    message=message,
                )
            )
        for rule in rules:
            for finding in rule.check(module, index):
                suppression = suppressions.get(finding.line)
                if suppression is not None and finding.rule in suppression.rule_ids:
                    result.suppressed.append((finding, suppression))
                else:
                    result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.rel, f.line, f.rule, f.message))
    return result


def analyze(
    paths: Iterable[Path | str],
    rule_ids: Iterable[str] | None = None,
    package_root: Path | str | None = None,
) -> AnalysisResult:
    """Index ``paths`` and run the selected rules (all, by default)."""
    return analyze_index(ModuleIndex(paths, package_root=package_root), rule_ids)

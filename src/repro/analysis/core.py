"""Findings, the rule-plugin registry, and the analysis driver.

A *rule* is a plugin with a stable ID (``D1`` … ``A3``), a one-line title,
and a longer ``explain`` text served by ``--explain``.  Rules receive each
parsed :class:`~repro.analysis.index.Module` together with the shared
:class:`~repro.analysis.index.ModuleIndex` and yield :class:`Finding`
records; the driver applies inline suppressions and returns an
:class:`AnalysisResult`.

Registration is import-driven: defining a ``Rule`` subclass with
``@register`` adds one instance to the registry, and
:mod:`repro.analysis.rules` imports every rule module on package import.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.index import Module, ModuleIndex
from repro.analysis.suppress import Suppression, parse_suppressions

__all__ = [
    "Finding",
    "Rule",
    "AnalysisResult",
    "register",
    "all_rules",
    "get_rule",
    "analyze",
    "analyze_index",
    "FRAMEWORK_RULE",
]

# Findings the framework itself emits (syntax errors, malformed
# suppressions).  Not a plugin, never suppressible.
FRAMEWORK_RULE = "E0"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str           # display path (as the file was reached from the CLI)
    rel: str            # path relative to its scan root
    pkg: str | None     # path relative to the repro package root, if any
    line: int
    message: str

    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline file."""
        basis = f"{self.rule}|{self.pkg or self.rel}|{self.message}"
        return hashlib.sha1(basis.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


class Rule:
    """Base class for rule plugins.

    ``scope`` is ``"module"`` for rules whose findings depend only on one
    module's AST (cacheable per content hash) or ``"program"`` for rules
    whose findings depend on the whole index (taint, purity, contract
    drift) — program-scope rules re-run on every pass, cache or not, and
    must work from the extracted facts alone (cached modules carry no AST).
    """

    id: str = ""
    title: str = ""
    explain: str = ""
    scope: str = "module"

    def check(self, module: Module, index: ModuleIndex) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, line: int, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=str(module.path),
            rel=module.rel,
            pkg=module.pkg,
            line=line,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its ID."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    _load_plugins()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule | None:
    _load_plugins()
    return _REGISTRY.get(rule_id)


def _load_plugins() -> None:
    # Import-driven registration; idempotent.
    import repro.analysis.rules  # noqa: F401


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, Suppression]] = field(default_factory=list)
    module_count: int = 0
    rule_ids: list[str] = field(default_factory=list)
    #: modules actually parsed this run (the rest came from the cache).
    parsed_modules: int = 0
    #: modules rebuilt from cached facts without re-parsing.
    cached_modules: int = 0
    #: the --changed-since dirty region (rel paths), when one was computed.
    dirty_region: list[str] | None = None

    @property
    def ok(self) -> bool:
        return not self.findings

    def drop_baselined(self, fingerprints: set[str]) -> list[Finding]:
        """Remove (and return) findings recorded in the baseline."""
        baselined = [f for f in self.findings if f.fingerprint() in fingerprints]
        self.findings = [f for f in self.findings if f.fingerprint() not in fingerprints]
        return baselined


def _select_rules(rule_ids: Iterable[str] | None) -> list[Rule]:
    rules = all_rules()
    if rule_ids is None:
        return rules
    wanted = list(rule_ids)
    known = {rule.id for rule in rules}
    unknown = [rule_id for rule_id in wanted if rule_id not in known]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    return [rule for rule in rules if rule.id in set(wanted)]


def _finding_to_json(finding: Finding) -> dict:
    return {
        "rule": finding.rule, "path": finding.path, "rel": finding.rel,
        "pkg": finding.pkg, "line": finding.line, "message": finding.message,
    }


def _finding_from_json(data: dict) -> Finding:
    return Finding(
        rule=data["rule"], path=data["path"], rel=data["rel"],
        pkg=data["pkg"], line=data["line"], message=data["message"],
    )


def analyze_index(
    index: ModuleIndex,
    rule_ids: Iterable[str] | None = None,
    cache=None,
) -> AnalysisResult:
    """Run the selected rules over an existing index.

    When ``cache`` (an :class:`~repro.analysis.cache.AnalysisCache`) is
    given, modules rebuilt from cached facts reuse their cached
    module-scope findings verbatim; program-scope rules always re-run.
    The cache is only meaningful for all-rules runs — the CLI enforces
    that pairing.
    """
    rules = _select_rules(rule_ids)
    module_rules = [rule for rule in rules if rule.scope == "module"]
    program_rules = [rule for rule in rules if rule.scope == "program"]
    result = AnalysisResult(module_count=len(index), rule_ids=[rule.id for rule in rules])
    for module in index:
        local_findings: list[Finding] = []
        local_suppressed: list[tuple[Finding, Suppression]] = []
        cached_entry = None
        if cache is not None and module.from_cache:
            cached_entry = cache.findings_for(module.rel, module.content_hash)
        if module.from_cache:
            result.cached_modules += 1
        else:
            result.parsed_modules += 1
        suppressions, malformed = parse_suppressions(module.lines)
        if cached_entry is not None:
            # Replay the cached module-scope pass byte-for-byte.
            local_findings = [
                _finding_from_json(f) for f in cached_entry["findings"]
            ]
            local_suppressed = [
                (
                    _finding_from_json(f),
                    Suppression(
                        line=s["line"],
                        rule_ids=frozenset(s["rule_ids"]),
                        reason=s["reason"],
                    ),
                )
                for f, s in cached_entry["suppressed"]
            ]
        else:
            if module.syntax_error is not None:
                local_findings.append(
                    Finding(
                        rule=FRAMEWORK_RULE,
                        path=str(module.path),
                        rel=module.rel,
                        pkg=module.pkg,
                        line=int(module.syntax_error.split(":", 1)[0] or 1),
                        message=f"unparseable: {module.syntax_error.split(': ', 1)[-1]}",
                    )
                )
            else:
                for line, message in malformed:
                    local_findings.append(
                        Finding(
                            rule=FRAMEWORK_RULE,
                            path=str(module.path),
                            rel=module.rel,
                            pkg=module.pkg,
                            line=line,
                            message=message,
                        )
                    )
                for rule in module_rules:
                    for finding in rule.check(module, index):
                        suppression = suppressions.get(finding.line)
                        if suppression is not None and finding.rule in suppression.rule_ids:
                            local_suppressed.append((finding, suppression))
                        else:
                            local_findings.append(finding)
            if cache is not None and rule_ids is None:
                cache.store(
                    module,
                    [_finding_to_json(f) for f in local_findings],
                    [
                        [
                            _finding_to_json(f),
                            {
                                "line": s.line,
                                "rule_ids": sorted(s.rule_ids),
                                "reason": s.reason,
                            },
                        ]
                        for f, s in local_suppressed
                    ],
                )
        result.findings.extend(local_findings)
        result.suppressed.extend(local_suppressed)
        if module.syntax_error is None:
            for rule in program_rules:
                for finding in rule.check(module, index):
                    suppression = suppressions.get(finding.line)
                    if suppression is not None and finding.rule in suppression.rule_ids:
                        result.suppressed.append((finding, suppression))
                    else:
                        result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.rel, f.line, f.rule, f.message))
    result.suppressed.sort(key=lambda pair: (pair[0].rel, pair[0].line, pair[0].rule))
    return result


def analyze(
    paths: Iterable[Path | str],
    rule_ids: Iterable[str] | None = None,
    package_root: Path | str | None = None,
    cache=None,
    docs_root: Path | str | None = None,
) -> AnalysisResult:
    """Index ``paths`` and run the selected rules (all, by default)."""
    # Cached facts are rule-independent, but cached *findings* were written
    # under an all-rules pass — a subset run must not consume or refresh them.
    index_cache = cache if rule_ids is None else None
    index = ModuleIndex(
        paths, package_root=package_root, cache=index_cache, docs_root=docs_root
    )
    return analyze_index(index, rule_ids, cache=index_cache)

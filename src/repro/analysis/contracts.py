"""Contract-drift detection: code vs. registries vs. documentation.

Three registries anchor the observability and extension contracts:

* **trace categories** — the ``CAT_*`` constants in ``obs/trace.py``; the
  validator, the replay tooling, and the docs tables all key on them;
* **metric names** — the ``*_METRIC`` string constants passed to the
  registry factories (``counter``/``gauge``/``histogram``);
* **backend names / shedding policies** — ``register_backend(...)`` in
  ``backends/`` and the ``SHED_POLICIES`` table in ``shedding/policy.py``.

Rule **R1** checks the *code* level: every ``tracer.emit`` category
constant must canonicalise to the defining trace module (a locally minted
``CAT_BOGUS = "bogus"`` satisfies M1's naming check but is invisible to
the validator — exactly the drift R1 exists to catch), and every
non-literal metric-name argument must resolve to a registered ``*_METRIC``
constant.

Rule **R2** checks the *docs* level: every registered backend name and
alias must appear in ``docs/backends.md``, every shedding policy in
``docs/shedding.md``, and every trace category in
``docs/observability.md``.  When the docs tree is absent (fixture runs,
scratch trees), R2 is inert — drift against documentation only exists
where documentation does.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.index import Module, ModuleIndex

__all__ = ["ContractAnalysis", "contract_analysis"]

TRACE_MODULE = "obs/trace.py"
TRACE_DOTTED = "repro.obs.trace"
POLICY_MODULE = "shedding/policy.py"

#: Defining modules are exempt from R1's own checks: they *are* the registry.
DEFINING_MODULES = ("obs/trace.py", "obs/registry.py")

#: docs file -> what it must document.
DOCS_BACKENDS = "backends.md"
DOCS_SHEDDING = "shedding.md"
DOCS_OBSERVABILITY = "observability.md"


class ContractAnalysis:
    """Cross-module registry tables, built once per index."""

    def __init__(self, index: ModuleIndex) -> None:
        self.index = index
        trace = index.module_by_pkg(TRACE_MODULE)
        #: CAT_* constant name -> category string (None when not indexed).
        self.categories: dict[str, str] | None = None
        if trace is not None:
            self.categories = {
                name: value for name, value in trace.constants.items()
                if name.startswith("CAT_") and isinstance(value, str)
            }
        #: every *_METRIC constant defined anywhere in the index.
        self.metric_constants: dict[str, tuple[str, str, int]] = {}
        for module in index:
            for name, value in module.constants.items():
                if name.endswith("_METRIC") and isinstance(value, str):
                    self.metric_constants[name] = (
                        module.rel, value, module.constant_lines.get(name, 1)
                    )
        #: backend registrations across the index.
        self.registrations: list[tuple[Module, dict]] = [
            (module, reg) for module in index for reg in module.registrations
        ]
        #: shedding policy names from the SHED_POLICIES table.
        policy = index.module_by_pkg(POLICY_MODULE)
        self.policies: tuple[str, ...] | None = None
        if policy is not None:
            table = policy.constants.get("SHED_POLICIES")
            if isinstance(table, tuple):
                self.policies = table
        self._docs: dict[str, str | None] = {}

    # -- R1: code-level drift -------------------------------------------------

    def rogue_emit_categories(self, module: Module) -> list[tuple[int, str]]:
        """Emit sites whose category does not trace back to the registry."""
        if module.pkg in DEFINING_MODULES:
            return []
        out = []
        for fact in module.emits:
            chain = fact.get("chain")
            if chain is None:
                continue  # literals are M1's finding, not drift
            origin = fact.get("origin")
            full = ".".join([origin, *chain[1:]]) if origin else None
            terminal = (full or ".".join(chain)).rsplit(".", 1)[-1]
            if not terminal.startswith("CAT_"):
                continue  # M1 owns the naming complaint
            from_registry = full is not None and full.startswith(TRACE_DOTTED + ".")
            if not from_registry:
                out.append((fact["line"], terminal))
            elif self.categories is not None and terminal not in self.categories:
                out.append((fact["line"], terminal))
        return out

    def rogue_metric_names(self, module: Module) -> list[tuple[int, str]]:
        """Metric-factory name args that resolve to no *_METRIC constant."""
        if module.pkg in DEFINING_MODULES:
            return []
        out = []
        for fact in module.metric_calls:
            terminal = fact["chain"][-1]
            if not terminal.endswith("_METRIC"):
                continue  # scoped-registry prefixes etc. — not a constant ref
            local = module.constants.get(terminal)
            if isinstance(local, str):
                continue
            if terminal in self.metric_constants:
                continue
            out.append((fact["line"], terminal))
        return out

    # -- R2: docs-level drift -------------------------------------------------

    def _doc_text(self, name: str) -> str | None:
        if name not in self._docs:
            path = Path(self.index.docs_root) / name
            try:
                self._docs[name] = path.read_text()
            except OSError:
                self._docs[name] = None
        return self._docs[name]

    @staticmethod
    def _documented(text: str, value: str) -> bool:
        return f"`{value}`" in text

    def undocumented_backends(self) -> list[tuple[Module, int, str]]:
        text = self._doc_text(DOCS_BACKENDS)
        if text is None:
            return []
        out = []
        for module, reg in self.registrations:
            for name in [reg["name"], *reg["aliases"]]:
                if not self._documented(text, name):
                    out.append((module, reg["line"], name))
        return out

    def undocumented_policies(self) -> list[tuple[Module, int, str]]:
        text = self._doc_text(DOCS_SHEDDING)
        policy = self.index.module_by_pkg(POLICY_MODULE)
        if text is None or self.policies is None or policy is None:
            return []
        line = policy.constant_lines.get("SHED_POLICIES", 1)
        return [
            (policy, line, name) for name in self.policies
            if not self._documented(text, name)
        ]

    def undocumented_categories(self) -> list[tuple[Module, int, str]]:
        text = self._doc_text(DOCS_OBSERVABILITY)
        trace = self.index.module_by_pkg(TRACE_MODULE)
        if text is None or self.categories is None or trace is None:
            return []
        out = []
        for name, value in sorted(self.categories.items()):
            if not self._documented(text, value):
                out.append((trace, trace.constant_lines.get(name, 1), value))
        return out


def contract_analysis(index: ModuleIndex) -> ContractAnalysis:
    """The memoised contract engine for an index."""
    engine = index.scratch.get("contracts")
    if engine is None:
        engine = ContractAnalysis(index)
        index.scratch["contracts"] = engine
    return engine

"""Interprocedural taint analysis over the call graph.

The lattice is a powerset over three source kinds:

* ``wallclock`` — ``time.*`` / ``datetime.now``-family reads (D1's targets);
* ``rng`` — ambient ``random`` / ``numpy.random`` draws (D2's targets);
* ``order`` — unsorted set / dict-view iteration order (D3's concern).

Propagation follows the per-function atom skeletons the index extracted:
through return values, through arguments into callee parameters (using
each callee's ``param -> return`` summary), and through ``self``-attribute
stores read back by sibling methods.  A Jacobi fixpoint over the call
graph computes, per function:

* ``ret``      — source kinds its return value can carry (with origin sites);
* ``p2r``      — which parameter indices flow into the return value;
* ``p2s``      — which parameter indices reach a sink (transitively);
* ``sinks``    — source kinds reaching each of its sink call sites.

**Sanitizers.**  ``sim/`` modules (the virtual clock and seeded RNG) and
D1's allowed files never *generate* atoms — their reads of the host clock
are the sanctioned implementation of simulated time.  ``sorted(...)`` and
the order-neutral builtins (``len``/``min``/``max``/``any``/``all``)
strip ``order``.  An ``# eires: allow[Dx]`` / ``allow[Tx]`` suppression on
a source line sanctions that source's atoms at the origin, so one
justified comment silences both the local rule and every downstream flow.

**Scope.**  The T-rules report *cross-function* flows only — a source and
sink inside one function body is the local rules' (D1–D3) jurisdiction,
and double-reporting the same line helps nobody.  Findings anchor at the
**source** line (that is the code to fix) and name the sink they reach.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.callgraph import CallGraph, build_call_graph, node_key
from repro.analysis.index import (
    ATOM_CALL,
    ATOM_KIND,
    ATOM_PARAM,
    ATOM_SELF_ATTR,
    ATOM_STRIP_ORDER,
    KIND_ORDER,
    KIND_RNG,
    KIND_WALLCLOCK,
    Module,
    ModuleIndex,
    _atoms_from_json,
)
from repro.analysis.suppress import parse_suppressions

__all__ = ["TaintAnalysis", "TaintFlow", "taint_analysis", "KIND_RULES"]

#: Source kind -> the rule ids whose ``allow`` suppression sanctions it.
KIND_RULES = {
    KIND_WALLCLOCK: frozenset({"D1", "T1"}),
    KIND_RNG: frozenset({"D2", "T2"}),
    KIND_ORDER: frozenset({"D3", "T3"}),
}

#: Modules that are sanitizers wholesale: their host-clock / host-RNG reads
#: ARE the deterministic substrate, so they generate no atoms.
_SANITIZER_PREFIXES = ("sim/",)
_SANITIZER_FILES = ("bench/harness.py",)

_FIXPOINT_CAP = 50


@dataclass(frozen=True)
class TaintFlow:
    """One cross-function source-to-sink flow."""

    kind: str               # wallclock | rng | order
    source_module: Module
    source_line: int
    sink_module: Module
    sink_kind: str          # emit | metric | utility
    sink_name: str
    sink_line: int
    hops: int               # call-graph distance source fn -> sink fn

    def describe_sink(self) -> str:
        where = self.sink_module.pkg or self.sink_module.rel
        return f"{self.sink_kind} sink `{self.sink_name}(...)` at {where}:{self.sink_line}"


@dataclass
class _Summary:
    ret: dict[str, set] = field(default_factory=dict)       # kind -> {(rel, line)}
    p2r: set = field(default_factory=set)                   # param indices
    p2s: dict[int, list] = field(default_factory=dict)      # param -> sink descriptors
    stores: dict[str, dict] = field(default_factory=dict)   # attr -> kind -> origins


class TaintAnalysis:
    """The fixpoint engine; build once per index via :func:`taint_analysis`."""

    def __init__(self, index: ModuleIndex) -> None:
        self.index = index
        self.graph: CallGraph = build_call_graph(index)
        self.summaries: dict[str, _Summary] = {}
        self._suppressed: dict[str, dict[int, frozenset]] = {}
        self._flows: list[TaintFlow] | None = None
        self._prime_suppressions()
        self._fixpoint()

    # -- sanitizer machinery --------------------------------------------------

    def _prime_suppressions(self) -> None:
        for module in self.index:
            suppressions, _ = parse_suppressions(module.lines)
            if suppressions:
                self._suppressed[module.rel] = {
                    line: s.rule_ids for line, s in suppressions.items()
                }

    def _is_sanitizer(self, module: Module) -> bool:
        pkg = module.pkg
        if pkg is None:
            return False
        return pkg.startswith(_SANITIZER_PREFIXES) or pkg in _SANITIZER_FILES

    def _source_allowed(self, module: Module, kind: str, line: int) -> bool:
        rules = self._suppressed.get(module.rel, {}).get(line)
        return rules is not None and bool(rules & KIND_RULES[kind])

    # -- atom evaluation ------------------------------------------------------

    def _eval(self, module: Module, fn: dict, atoms: frozenset,
              guard: set) -> tuple[dict[str, set], set]:
        """Resolve an atom set to (kind -> origin sites, live param indices)."""
        kinds: dict[str, set] = {}
        params: set = set()
        sanitizer = self._is_sanitizer(module)
        key = node_key(module, fn["qual"])
        for atom in atoms:
            sort = atom[0]
            if sort == ATOM_KIND:
                kind, line = atom[1], atom[2]
                if sanitizer or self._source_allowed(module, kind, line):
                    continue
                kinds.setdefault(kind, set()).add((module.rel, line))
            elif sort == ATOM_PARAM:
                params.add(atom[1])
            elif sort == ATOM_STRIP_ORDER:
                inner_kinds, inner_params = self._eval(module, fn, atom[1], guard)
                inner_kinds.pop(KIND_ORDER, None)
                for kind, origins in inner_kinds.items():
                    kinds.setdefault(kind, set()).update(origins)
                params |= inner_params
            elif sort == ATOM_SELF_ATTR:
                attr = atom[1]
                cls = fn.get("cls")
                if cls is None:
                    continue
                store_kinds = self._class_store(module, cls, attr, guard)
                for kind, origins in store_kinds.items():
                    kinds.setdefault(kind, set()).update(origins)
            elif sort == ATOM_CALL:
                call = fn["calls"][atom[1]]
                call_kinds, call_params = self._eval_call(module, fn, call, guard)
                for kind, origins in call_kinds.items():
                    kinds.setdefault(kind, set()).update(origins)
                params |= call_params
        return kinds, params

    def _arg_index(self, callee: str, ref: list, p_index: int) -> int:
        """Map a callee parameter index to the call-site argument index.

        Methods carry ``self`` as parameter 0 but call sites
        (``self.helper(x)``, ``Cls(x)``) do not pass it positionally.
        """
        _, callee_fn = self.graph.functions[callee]
        params = callee_fn["params"]
        if params and params[0] == "self" and ref[0] in ("self", "dotted"):
            return p_index - 1
        return p_index

    def _eval_call(self, module: Module, fn: dict, call: dict,
                   guard: set) -> tuple[dict[str, set], set]:
        """The taint carried by one call's return value."""
        callee = self.graph.resolve(module, call["ref"])
        arg_sets = [_atoms_from_json(a) for a in call["args"]]
        if callee is None:
            # Unresolved call: conservative pass-through of every argument.
            kinds: dict[str, set] = {}
            params: set = set()
            for arg_atoms in arg_sets:
                arg_kinds, arg_params = self._eval(module, fn, arg_atoms, guard)
                for kind, origins in arg_kinds.items():
                    kinds.setdefault(kind, set()).update(origins)
                params |= arg_params
            return kinds, params
        summary = self.summaries.get(callee)
        if summary is None:
            return {}, set()
        kinds = {kind: set(origins) for kind, origins in summary.ret.items()}
        params: set = set()
        for p_index in summary.p2r:
            arg_index = self._arg_index(callee, call["ref"], p_index)
            if 0 <= arg_index < len(arg_sets):
                arg_kinds, arg_params = self._eval(module, fn, arg_sets[arg_index], guard)
                for kind, origins in arg_kinds.items():
                    kinds.setdefault(kind, set()).update(origins)
                params |= arg_params
        return kinds, params

    def _class_store(self, module: Module, cls: str, attr: str,
                     guard: set) -> dict[str, set]:
        """The taint any method of ``cls`` stores into ``self.<attr>``."""
        marker = (module.rel, cls, attr)
        if marker in guard:
            return {}
        guard.add(marker)
        kinds: dict[str, set] = {}
        try:
            for other in module.functions:
                if other.get("cls") != cls:
                    continue
                for store_attr, atoms_json in other.get("stores", ()):
                    if store_attr != attr:
                        continue
                    atoms = _atoms_from_json(atoms_json)
                    store_kinds, _ = self._eval(module, other, atoms, guard)
                    for kind, origins in store_kinds.items():
                        kinds.setdefault(kind, set()).update(origins)
        finally:
            guard.discard(marker)
        return kinds

    # -- fixpoint -------------------------------------------------------------

    def _fixpoint(self) -> None:
        for key in self.graph.functions:
            self.summaries[key] = _Summary()
        for _ in range(_FIXPOINT_CAP):
            changed = False
            for key, (module, fn) in self.graph.functions.items():
                summary = self.summaries[key]
                ret_atoms = _atoms_from_json(fn["ret"])
                kinds, params = self._eval(module, fn, ret_atoms, set())
                if self._is_sanitizer(module):
                    kinds = {}
                for kind, origins in kinds.items():
                    have = summary.ret.setdefault(kind, set())
                    if not origins <= have:
                        have.update(origins)
                        changed = True
                if not params <= summary.p2r:
                    summary.p2r |= params
                    changed = True
                # Transitive param -> sink: a param forwarded into a callee
                # whose own params reach sinks.
                for call in fn["calls"]:
                    callee = self.graph.resolve(module, call["ref"])
                    if callee is None:
                        continue
                    callee_summary = self.summaries.get(callee)
                    if callee_summary is None:
                        continue
                    arg_sets = [_atoms_from_json(a) for a in call["args"]]
                    for p_index, sink_refs in callee_summary.p2s.items():
                        arg_index = self._arg_index(callee, call["ref"], p_index)
                        if not (0 <= arg_index < len(arg_sets)):
                            continue
                        _, arg_params = self._eval(module, fn, arg_sets[arg_index], set())
                        for param in arg_params:
                            have = summary.p2s.setdefault(param, [])
                            for sink_ref in sink_refs:
                                if sink_ref not in have:
                                    have.append(sink_ref)
                                    changed = True
                # Direct param -> sink.
                for sink in fn["sinks"]:
                    atoms = _atoms_from_json(sink["atoms"])
                    _, params_in_sink = self._eval(module, fn, atoms, set())
                    sink_ref = (module.rel, sink["kind"], sink["name"], sink["line"])
                    for param in params_in_sink:
                        have = summary.p2s.setdefault(param, [])
                        if sink_ref not in have:
                            have.append(sink_ref)
                            changed = True
            if not changed:
                break

    # -- findings -------------------------------------------------------------

    def flows(self) -> list[TaintFlow]:
        if self._flows is not None:
            return self._flows
        by_rel = {module.rel: module for module in self.index}
        flows: dict[tuple, TaintFlow] = {}

        def add(kind: str, origins: set, sink_module: Module, sink_kind: str,
                sink_name: str, sink_line: int, hops: int) -> None:
            for rel, line in origins:
                source_module = by_rel.get(rel)
                if source_module is None:
                    continue
                cross = rel != sink_module.rel or hops > 0
                if not cross:
                    continue
                marker = (kind, rel, line, sink_module.rel, sink_kind,
                          sink_name, sink_line)
                existing = flows.get(marker)
                if existing is None or hops < existing.hops:
                    flows[marker] = TaintFlow(
                        kind=kind, source_module=source_module, source_line=line,
                        sink_module=sink_module, sink_kind=sink_kind,
                        sink_name=sink_name, sink_line=sink_line, hops=hops,
                    )

        for key, (module, fn) in self.graph.functions.items():
            if self._is_sanitizer(module):
                continue
            for sink in fn["sinks"]:
                atoms = _atoms_from_json(sink["atoms"])
                kinds, _ = self._eval(module, fn, atoms, set())
                for kind, origins in kinds.items():
                    # Hops: 0 when the origin is this very function's body
                    # (local rules own it), >=1 when it crossed a call.
                    for rel, line in origins:
                        hops = 0 if (rel == module.rel and self._line_in(fn, line)) else 1
                        add(kind, {(rel, line)}, module, sink["kind"],
                            sink["name"], sink["line"], hops)
            # The argument direction: a tainted value passed into a callee
            # whose parameter (transitively) reaches a sink.
            for call in fn["calls"]:
                callee = self.graph.resolve(module, call["ref"])
                if callee is None:
                    continue
                callee_summary = self.summaries.get(callee)
                if callee_summary is None or not callee_summary.p2s:
                    continue
                arg_sets = [_atoms_from_json(a) for a in call["args"]]
                for p_index, sink_refs in callee_summary.p2s.items():
                    arg_index = self._arg_index(callee, call["ref"], p_index)
                    if not (0 <= arg_index < len(arg_sets)):
                        continue
                    kinds, _ = self._eval(module, fn, arg_sets[arg_index], set())
                    for kind, origins in kinds.items():
                        for sink_rel, sink_kind, sink_name, sink_line in sink_refs:
                            sink_module = by_rel.get(sink_rel)
                            if sink_module is None:
                                continue
                            add(kind, origins, sink_module, sink_kind,
                                sink_name, sink_line, 1)
        result = sorted(
            flows.values(),
            key=lambda f: (f.source_module.rel, f.source_line, f.kind,
                           f.sink_module.rel, f.sink_line),
        )
        self._flows = result
        return result

    def _line_in(self, fn: dict, line: int) -> bool:
        """Whether a source line sits inside this function's own call facts."""
        for call in fn["calls"]:
            if call["line"] == line:
                return True
        for atom in _atoms_from_json(fn["ret"]):
            if atom[0] == ATOM_KIND and atom[2] == line:
                return True
        for sink in fn["sinks"]:
            for atom in _atoms_from_json(sink["atoms"]):
                if atom[0] == ATOM_KIND and atom[2] == line:
                    return True
        return False

    def flows_by_source_module(self) -> dict[str, list[TaintFlow]]:
        grouped: dict[str, list[TaintFlow]] = {}
        for flow in self.flows():
            grouped.setdefault(flow.source_module.rel, []).append(flow)
        return grouped


def taint_analysis(index: ModuleIndex) -> TaintAnalysis:
    """The memoised taint engine for an index (one fixpoint per index)."""
    engine = index.scratch.get("taint")
    if engine is None:
        engine = TaintAnalysis(index)
        index.scratch["taint"] = engine
    return engine

"""The ``python -m repro.analysis`` entry point.

Usage::

    python -m repro.analysis [paths ...]        # default: src benchmarks
    python -m repro.analysis --json src
    python -m repro.analysis --explain D2
    python -m repro.analysis --rules A1,A2,A3 --package-root src/repro src
    python -m repro.analysis src --write-baseline

Exit codes: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE, load_baseline, write_baseline
from repro.analysis.core import AnalysisResult, all_rules, analyze, get_rule

__all__ = ["main"]

_DEFAULT_PATHS = ("src", "benchmarks")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis enforcing the reproduction's determinism, "
        "observability, and layering invariants.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to scan (default: src benchmarks)",
    )
    parser.add_argument(
        "--rules", metavar="IDS",
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument("--json", action="store_true", help="emit a JSON report")
    parser.add_argument(
        "--explain", metavar="RULE",
        help="print a rule's rationale and fix guidance, then exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit",
    )
    parser.add_argument(
        "--package-root", metavar="DIR",
        help="treat DIR as the repro package root when scoping package rules "
        "(default: auto-detect a 'repro' path component)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help=f"accepted-findings baseline (default: {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    return parser


def _resolve_paths(raw: list[str]) -> list[Path]:
    if raw:
        paths = [Path(p) for p in raw]
        missing = [str(p) for p in paths if not p.exists()]
        if missing:
            raise FileNotFoundError(f"no such path(s): {', '.join(missing)}")
        return paths
    paths = [Path(p) for p in _DEFAULT_PATHS if Path(p).exists()]
    if not paths:
        raise FileNotFoundError(
            "no paths given and neither ./src nor ./benchmarks exists"
        )
    return paths


def _json_report(result: AnalysisResult, baselined: int) -> dict:
    return {
        "version": 1,
        "rules": result.rule_ids,
        "modules": result.module_count,
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
                "fingerprint": finding.fingerprint(),
            }
            for finding in result.findings
        ],
        "suppressed": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "reason": suppression.reason,
            }
            for finding, suppression in result.suppressed
        ],
        "baselined": baselined,
        "ok": result.ok,
    }


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}")
        return 0

    if args.explain is not None:
        rule = get_rule(args.explain)
        if rule is None:
            known = ", ".join(r.id for r in all_rules())
            print(f"unknown rule {args.explain!r}; registered rules: {known}",
                  file=sys.stderr)
            return 2
        print(f"{rule.id} — {rule.title}\n")
        print(rule.explain)
        return 0

    rule_ids = None
    if args.rules is not None:
        rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]

    try:
        paths = _resolve_paths(args.paths)
        result = analyze(paths, rule_ids=rule_ids, package_root=args.package_root)
    except (FileNotFoundError, ValueError) as error:
        print(f"repro.analysis: {error}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline) if args.baseline else DEFAULT_BASELINE
    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(f"repro.analysis: wrote {len(result.findings)} finding(s) to {baseline_path}")
        return 0

    baselined: list = []
    if args.baseline or baseline_path.exists():
        try:
            fingerprints = load_baseline(baseline_path)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as error:
            print(f"repro.analysis: bad baseline {baseline_path}: {error}", file=sys.stderr)
            return 2
        baselined = result.drop_baselined(fingerprints)

    if args.json:
        print(json.dumps(_json_report(result, len(baselined)), indent=2))
        return 0 if result.ok else 1

    for finding in result.findings:
        print(finding.render())
    status = "FAILED" if result.findings else "OK"
    tail = f", {len(baselined)} baselined" if baselined else ""
    print(
        f"repro.analysis {status}: {len(result.findings)} finding(s) across "
        f"{result.module_count} modules, {len(result.rule_ids)} rules "
        f"({len(result.suppressed)} suppressed{tail})"
    )
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())

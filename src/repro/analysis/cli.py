"""The ``python -m repro.analysis`` entry point.

Usage::

    python -m repro.analysis [paths ...]        # default: src benchmarks tools examples
    python -m repro.analysis --json src
    python -m repro.analysis --explain T1
    python -m repro.analysis --rules A1,A2,A3 --package-root src/repro src
    python -m repro.analysis src --write-baseline
    python -m repro.analysis src --update-baseline
    python -m repro.analysis --cache .analysis_cache.json --changed-since origin/main

Exit codes: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE, load_baseline, write_baseline
from repro.analysis.cache import AnalysisCache, changed_files_since
from repro.analysis.callgraph import build_call_graph
from repro.analysis.core import AnalysisResult, all_rules, analyze_index, get_rule
from repro.analysis.index import ModuleIndex

__all__ = ["main"]

_DEFAULT_PATHS = ("src", "benchmarks", "tools", "examples")

#: Forward-compat marker for the CI gate's JSON consumers.  Bump on any
#: report-shape change; consumers reject versions they do not know.
JSON_SCHEMA_VERSION = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis enforcing the reproduction's determinism, "
        "observability, layering, purity, and contract invariants.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to scan "
        "(default: src benchmarks tools examples, whichever exist)",
    )
    parser.add_argument(
        "--rules", metavar="IDS",
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument("--json", action="store_true", help="emit a JSON report")
    parser.add_argument(
        "--explain", metavar="RULE",
        help="print a rule's rationale and fix guidance, then exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit",
    )
    parser.add_argument(
        "--package-root", metavar="DIR",
        help="treat DIR as the repro package root when scoping package rules "
        "(default: auto-detect a 'repro' path component)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help=f"accepted-findings baseline (default: {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="refresh the baseline in place: drop fingerprints that no longer "
        "occur, add current unbaselined findings, keep the rest",
    )
    parser.add_argument(
        "--cache", metavar="FILE",
        help="persisted facts/findings cache enabling incremental runs "
        "(only consulted for all-rules runs; created if missing)",
    )
    parser.add_argument(
        "--changed-since", metavar="REV",
        help="report the dirty import-SCC region for changes since a git "
        "revision (advisory: content hashes decide what actually re-parses)",
    )
    return parser


def _resolve_paths(raw: list[str]) -> list[Path]:
    if raw:
        paths = [Path(p) for p in raw]
        missing = [str(p) for p in paths if not p.exists()]
        if missing:
            raise FileNotFoundError(f"no such path(s): {', '.join(missing)}")
        return paths
    paths = [Path(p) for p in _DEFAULT_PATHS if Path(p).exists()]
    if not paths:
        raise FileNotFoundError(
            "no paths given and none of ./src ./benchmarks ./tools ./examples exists"
        )
    return paths


def _json_report(result: AnalysisResult, baselined: int) -> dict:
    return {
        "schema_version": JSON_SCHEMA_VERSION,
        "rules": result.rule_ids,
        "modules": result.module_count,
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
                "fingerprint": finding.fingerprint(),
            }
            for finding in result.findings
        ],
        "suppressed": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "reason": suppression.reason,
            }
            for finding, suppression in result.suppressed
        ],
        "baselined": baselined,
        "incremental": {
            "parsed": result.parsed_modules,
            "cached": result.cached_modules,
            "dirty_region": result.dirty_region,
        },
        "ok": result.ok,
    }


def _update_baseline(path: Path, result: AnalysisResult) -> tuple[int, int, int]:
    """Refresh the baseline against current findings: (kept, added, removed)."""
    try:
        existing = load_baseline(path) if path.exists() else set()
    except (OSError, ValueError, KeyError, json.JSONDecodeError):
        existing = set()
    current = {finding.fingerprint(): finding for finding in result.findings}
    kept = existing & set(current)
    removed = existing - set(current)
    added = set(current) - existing
    write_baseline(path, [current[fp] for fp in sorted(kept | added)])
    return len(kept), len(added), len(removed)


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}")
        return 0

    if args.explain is not None:
        rule = get_rule(args.explain)
        if rule is None:
            known = ", ".join(r.id for r in all_rules())
            print(f"unknown rule {args.explain!r}; registered rules: {known}",
                  file=sys.stderr)
            return 2
        print(f"{rule.id} — {rule.title}\n")
        print(rule.explain)
        return 0

    rule_ids = None
    if args.rules is not None:
        rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]

    cache = None
    if args.cache is not None:
        if rule_ids is not None:
            print(
                "repro.analysis: --cache is ignored with --rules "
                "(cached findings cover all-rules runs only)",
                file=sys.stderr,
            )
        else:
            cache = AnalysisCache(args.cache)

    try:
        paths = _resolve_paths(args.paths)
        index = ModuleIndex(paths, package_root=args.package_root, cache=cache)
        result = analyze_index(index, rule_ids, cache=cache)
    except (FileNotFoundError, ValueError) as error:
        print(f"repro.analysis: {error}", file=sys.stderr)
        return 2

    if args.changed_since is not None:
        changed = changed_files_since(args.changed_since)
        if changed is None:
            print(
                f"repro.analysis: git diff against {args.changed_since!r} failed; "
                f"treating the whole tree as dirty",
                file=sys.stderr,
            )
        else:
            graph = build_call_graph(index)
            by_name = {Path(module.path).resolve(): module.rel for module in index}
            dirty_rels = {
                by_name[resolved]
                for name in changed
                for resolved in [Path(name).resolve()]
                if resolved in by_name
            }
            result.dirty_region = graph.dirty_region(dirty_rels)

    if cache is not None:
        cache.write()

    baseline_path = Path(args.baseline) if args.baseline else DEFAULT_BASELINE
    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(f"repro.analysis: wrote {len(result.findings)} finding(s) to {baseline_path}")
        return 0
    if args.update_baseline:
        kept, added, removed = _update_baseline(baseline_path, result)
        print(
            f"repro.analysis: baseline {baseline_path} refreshed — "
            f"{kept} kept, {added} added, {removed} removed"
        )
        return 0

    baselined: list = []
    if args.baseline or baseline_path.exists():
        try:
            fingerprints = load_baseline(baseline_path)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as error:
            print(f"repro.analysis: bad baseline {baseline_path}: {error}", file=sys.stderr)
            return 2
        baselined = result.drop_baselined(fingerprints)

    if args.json:
        print(json.dumps(_json_report(result, len(baselined)), indent=2))
        return 0 if result.ok else 1

    for finding in result.findings:
        print(finding.render())
    status = "FAILED" if result.findings else "OK"
    tail = f", {len(baselined)} baselined" if baselined else ""
    if cache is not None:
        tail += (
            f"; incremental: {result.parsed_modules} parsed, "
            f"{result.cached_modules} from cache"
        )
    if result.dirty_region is not None:
        tail += f"; dirty region: {len(result.dirty_region)} module(s)"
    print(
        f"repro.analysis {status}: {len(result.findings)} finding(s) across "
        f"{result.module_count} modules, {len(result.rule_ids)} rules "
        f"({len(result.suppressed)} suppressed{tail})"
    )
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())

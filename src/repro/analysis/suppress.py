"""Inline suppressions: ``# eires: allow[D2] reason``.

A suppression names the rule IDs it silences (comma-separated inside the
brackets) and MUST carry a non-empty justification after the bracket — an
unexplained suppression is itself reported as a framework finding, because
a determinism waiver nobody can audit is exactly the hole the analysis
exists to close.  Suppressions apply to findings on their own line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Suppression", "parse_suppressions"]

_MARKER = re.compile(r"#\s*eires:")
_ALLOW = re.compile(r"#\s*eires:\s*allow\[([A-Za-z0-9_,\s]*)\]\s*(.*)$")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``allow`` comment."""

    line: int
    rule_ids: frozenset[str]
    reason: str


def parse_suppressions(
    lines: list[str],
) -> tuple[dict[int, Suppression], list[tuple[int, str]]]:
    """Suppressions by line number, plus malformed-marker findings.

    Returns ``(suppressions, malformed)`` where ``malformed`` is a list of
    ``(line, message)`` pairs for ``eires:`` comment markers that either do
    not parse as ``allow[IDS]``, name no rules, or omit the justification.
    """
    suppressions: dict[int, Suppression] = {}
    malformed: list[tuple[int, str]] = []
    for lineno, text in enumerate(lines, start=1):
        if _MARKER.search(text) is None:
            continue
        match = _ALLOW.search(text)
        if match is None:
            malformed.append(
                (lineno, "malformed suppression: expected '# eires: allow[RULE] justification'")
            )
            continue
        rule_ids = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        reason = match.group(2).strip()
        if not rule_ids:
            malformed.append((lineno, "suppression names no rule ids"))
            continue
        if not reason:
            malformed.append(
                (lineno, "suppression must carry a justification after the bracket")
            )
            continue
        suppressions[lineno] = Suppression(lineno, rule_ids, reason)
    return suppressions, malformed

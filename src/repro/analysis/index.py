"""The shared module index: one parse per file, reused by every rule.

A :class:`ModuleIndex` walks the requested paths once, parses every
``*.py`` file with :mod:`ast`, and precomputes the facts the rule plugins
need:

* **import records** — every imported module path with its line number;
* **name bindings** — a per-module symbol table mapping local names to the
  dotted origin they were imported from (``import numpy as np`` binds
  ``np -> numpy``; ``from repro.obs.trace import CAT_FETCH`` binds
  ``CAT_FETCH -> repro.obs.trace.CAT_FETCH``), so rules can resolve
  attribute chains like ``np.random.rand`` without re-walking imports;
* **call records** — every call site whose target resolves through the
  bindings to a dotted name, plus the bare class-name constructor calls the
  architecture rules consume;
* **string-tuple constants** — simple module-level assignments of strings
  and tuples of strings (the registered counter-key tables), exposed so
  rules can reason about the declared constant tables.

Package-relative paths drive rule scoping (``sim/``-only wall clock,
``strategies/``-only iteration discipline): a module's ``pkg`` is its path
relative to the ``repro`` package root.  The root is either passed
explicitly (``package_root`` — the architecture shim scans scratch trees
laid out *as* a package) or auto-detected from a ``repro`` directory
component in the file's path.  Files outside any package (``benchmarks/``)
carry ``pkg=None`` and are still scanned by the unscoped rules.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator

__all__ = ["Module", "ModuleIndex", "resolve_call_target", "dotted_chain"]


def dotted_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def resolve_call_target(node: ast.AST, bindings: dict[str, str]) -> str | None:
    """The dotted origin of a call target, resolved through the bindings.

    ``perf_counter()`` with ``from time import perf_counter`` resolves to
    ``time.perf_counter``; ``np.random.rand(...)`` with ``import numpy as
    np`` resolves to ``numpy.random.rand``.  Calls on local objects
    (``rng.random()``) resolve to None — their base name is not an import.
    """
    parts = dotted_chain(node)
    if parts is None:
        return None
    origin = bindings.get(parts[0])
    if origin is None:
        return None
    return ".".join([origin, *parts[1:]]) if len(parts) > 1 else origin


def _string_tuple(node: ast.AST):
    """The value of a str / tuple-of-str literal expression, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Tuple):
        items = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                items.append(element.value)
            else:
                return None
        return tuple(items)
    return None


class Module:
    """One parsed source file plus the precomputed facts rules consume."""

    __slots__ = (
        "path", "rel", "pkg", "source", "lines", "tree", "syntax_error",
        "imports", "bindings", "calls", "constructed", "constants",
    )

    def __init__(self, path: Path, rel: str, pkg: str | None) -> None:
        self.path = path
        self.rel = rel
        self.pkg = pkg
        self.source = path.read_text()
        self.lines = self.source.splitlines()
        self.syntax_error: str | None = None
        # (module path, line) for every import statement.
        self.imports: list[tuple[str, int]] = []
        # local name -> dotted origin.
        self.bindings: dict[str, str] = {}
        # (resolved dotted target, line) for calls whose base is an import.
        self.calls: list[tuple[str, int]] = []
        # (bare class-ish name, line) for C(...) and m.C(...) calls.
        self.constructed: list[tuple[str, int]] = []
        # module-level NAME = "str" | ("str", ...) assignments.
        self.constants: dict[str, str | tuple[str, ...]] = {}
        try:
            self.tree: ast.Module | None = ast.parse(self.source, filename=str(path))
        except SyntaxError as error:
            self.tree = None
            self.syntax_error = f"{error.lineno}: {error.msg}"
            return
        self._scan()

    def _scan(self) -> None:
        assert self.tree is not None
        for node in self.tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if isinstance(target, ast.Name):
                    literal = _string_tuple(value)
                    if literal is not None:
                        self.constants[target.id] = literal
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports.append((alias.name, node.lineno))
                    if alias.asname is not None:
                        self.bindings[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a``; chains resolve onward.
                        self.bindings[alias.name.split(".")[0]] = alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                self.imports.append((node.module, node.lineno))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname if alias.asname is not None else alias.name
                    self.bindings[local] = f"{node.module}.{alias.name}"
            elif isinstance(node, ast.Call):
                resolved = resolve_call_target(node.func, self.bindings)
                if resolved is not None:
                    self.calls.append((resolved, node.lineno))
                name = None
                if isinstance(node.func, ast.Name):
                    name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                if name is not None:
                    self.constructed.append((name, node.lineno))

    @property
    def pkg_top(self) -> str | None:
        """The top-level package directory (``"engine"`` for engine/tree.py)."""
        if self.pkg is None or "/" not in self.pkg:
            return None
        return self.pkg.split("/", 1)[0]


def _package_path(path: Path, package_root: Path | None) -> str | None:
    if package_root is not None:
        try:
            return path.resolve().relative_to(package_root.resolve()).as_posix()
        except ValueError:
            return None
    parts = path.resolve().parts
    if "repro" not in parts:
        return None
    anchor = len(parts) - 1 - parts[::-1].index("repro")
    inner = parts[anchor + 1:]
    return "/".join(inner) if inner else None


def discover(paths: Iterable[Path]) -> Iterator[tuple[Path, str]]:
    """All ``*.py`` files under ``paths`` with scan-root-relative names."""
    for root in paths:
        root = Path(root)
        if root.is_file():
            yield root, root.name
            continue
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            yield path, path.relative_to(root).as_posix()


class ModuleIndex:
    """Every scanned module, parsed once, in deterministic (sorted) order."""

    def __init__(self, paths: Iterable[Path | str], package_root: Path | str | None = None) -> None:
        self.package_root = Path(package_root) if package_root is not None else None
        self.modules: list[Module] = []
        seen: set[Path] = set()
        for path, rel in discover(Path(p) for p in paths):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            self.modules.append(Module(path, rel, _package_path(path, self.package_root)))
        self.modules.sort(key=lambda module: module.rel)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    def import_graph(self) -> dict[str, list[str]]:
        """Scanned module -> the ``repro.*`` modules it imports (sorted)."""
        graph: dict[str, list[str]] = {}
        for module in self.modules:
            repro_imports = sorted(
                {name for name, _ in module.imports
                 if name == "repro" or name.startswith("repro.")}
            )
            graph[module.rel] = repro_imports
        return graph

    def constant_table(self, name: str) -> tuple[str, ...] | None:
        """A registered string-tuple constant, looked up across the index."""
        for module in self.modules:
            value = module.constants.get(name)
            if isinstance(value, tuple):
                return value
        return None

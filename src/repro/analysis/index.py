"""The shared module index: one parse per file, reused by every rule.

A :class:`ModuleIndex` walks the requested paths once, parses every
``*.py`` file with :mod:`ast`, and precomputes the facts the rule plugins
need:

* **import records** — every imported module path with its line number;
* **name bindings** — a per-module symbol table mapping local names to the
  dotted origin they were imported from (``import numpy as np`` binds
  ``np -> numpy``; ``from repro.obs.trace import CAT_FETCH`` binds
  ``CAT_FETCH -> repro.obs.trace.CAT_FETCH``), so rules can resolve
  attribute chains like ``np.random.rand`` without re-walking imports;
* **call records** — every call site whose target resolves through the
  bindings to a dotted name, plus the bare class-name constructor calls the
  architecture rules consume;
* **string-tuple constants** — simple module-level assignments of strings
  and tuples of strings (the registered counter-key tables), exposed so
  rules can reason about the declared constant tables;
* **function facts** — per-function dataflow skeletons (parameters, call
  sites with argument taint atoms, sink records, return atoms, effect
  records, ``self``-attribute stores) consumed by the whole-program
  call-graph, taint, and effect analyses in :mod:`repro.analysis.callgraph`,
  :mod:`repro.analysis.taint`, and :mod:`repro.analysis.effects`;
* **contract facts** — trace-emission categories, metric-name constants,
  and backend registrations, consumed by :mod:`repro.analysis.contracts`.

Two resolution passes close the gaps a single-module view cannot see:

* **re-export canonicalisation** — ``from repro import EiresConfig``
  resolves through the package ``__init__`` re-export chain to
  ``repro.core.config.EiresConfig``, so aliased imports cannot evade a
  rule or drop a call-graph edge;
* **``self``-method resolution** — ``self.helper(...)`` inside a class
  resolves to the defining method's dotted name, so intraclass call
  chains participate in the interprocedural analyses.

Package-relative paths drive rule scoping (``sim/``-only wall clock,
``strategies/``-only iteration discipline): a module's ``pkg`` is its path
relative to the ``repro`` package root.  The root is either passed
explicitly (``package_root`` — the architecture shim scans scratch trees
laid out *as* a package) or auto-detected from a ``repro`` directory
component in the file's path.  Files outside any package (``benchmarks/``)
carry ``pkg=None`` and are still scanned by the unscoped rules.

Every fact is JSON-serialisable (:meth:`Module.facts` /
:meth:`Module.from_facts`): the incremental cache
(:mod:`repro.analysis.cache`) persists them per content hash so warm runs
re-parse only modules whose source actually changed.
"""

from __future__ import annotations

import ast
import hashlib
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = [
    "Module",
    "ModuleIndex",
    "resolve_call_target",
    "dotted_chain",
    "ATOM_KIND",
    "ATOM_PARAM",
    "ATOM_CALL",
    "ATOM_SELF_ATTR",
    "ATOM_STRIP_ORDER",
    "KIND_WALLCLOCK",
    "KIND_RNG",
    "KIND_ORDER",
]

FACTS_VERSION = 1

# -- taint atoms --------------------------------------------------------------
#
# The per-function dataflow skeleton describes values as *atom sets*.  An
# atom is a tuple whose first element names its sort:
#
#   ("k", kind, line)   a taint source of ``kind`` introduced at ``line``
#   ("p", i)            the function's i-th positional parameter
#   ("c", i)            the return value of the function's i-th call site
#   ("sa", name)        a read of ``self.<name>``
#   ("so", (atoms...))  an order-sanitised wrapper (``sorted(...)`` et al.)
#
# Atoms are mechanism, not policy: the taint engine decides which kinds a
# module may generate (sanitizers, allowed files, suppressions).

ATOM_KIND = "k"
ATOM_PARAM = "p"
ATOM_CALL = "c"
ATOM_SELF_ATTR = "sa"
ATOM_STRIP_ORDER = "so"

KIND_WALLCLOCK = "wallclock"
KIND_RNG = "rng"
KIND_ORDER = "order"

#: Call targets that read the host's wall clock (shared with rule D1).
WALL_CLOCK_SOURCES = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: Builtins whose result preserves argument taint (thin wrappers).
_PASSTHROUGH_BUILTINS = frozenset({
    "list", "tuple", "dict", "str", "repr", "float", "int", "abs", "round",
    "sum", "reversed", "next", "iter", "zip", "enumerate", "map", "filter",
})

#: Builtins whose result is order-insensitive even over unordered input.
_ORDER_NEUTRAL_BUILTINS = frozenset({"sorted", "len", "min", "max", "any", "all"})

#: Constructors producing fresh (function-local) containers: mutating them
#: is not an observable side effect.
_FRESH_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "tuple", "frozenset", "deque", "defaultdict",
    "Counter", "OrderedDict", "bytearray",
})

#: Dotted call targets returning freshly allocated containers/arrays.
_FRESH_DOTTED = frozenset({
    "numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full",
    "numpy.array", "numpy.arange", "numpy.zeros_like", "numpy.ones_like",
    "numpy.empty_like", "numpy.full_like",
    "collections.deque", "collections.defaultdict", "collections.Counter",
    "collections.OrderedDict",
})

#: Method names that mutate their receiver.
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "add", "update", "pop",
    "popleft", "popitem", "remove", "discard", "clear", "setdefault", "sort",
    "reverse", "write", "writelines", "inc", "set", "observe", "emit",
    "advance", "push", "record",
})

#: Sink families for the interprocedural taint rules (T1–T3): trace
#: emission, metric updates, and the Eq. 5/7/8 utility / shed / batch
#: scoring surface.  A sink only matters when a tainted value reaches it.
_SINK_EMIT = frozenset({"emit"})
_SINK_METRIC = frozenset({"inc", "set", "observe"})
_SINK_UTILITY = frozenset({
    "value", "urgent_utility", "future_utility", "min_utility", "estimate",
    "effective_estimate", "extension_rate", "expected_gap", "class_count",
    "partial_match_utility", "event_utility", "shed_lowest", "submit",
})

_DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})
_SET_BUILTINS = frozenset({"set", "frozenset"})

_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})


def dotted_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def resolve_call_target(node: ast.AST, bindings: dict[str, str]) -> str | None:
    """The dotted origin of a call target, resolved through the bindings.

    ``perf_counter()`` with ``from time import perf_counter`` resolves to
    ``time.perf_counter``; ``np.random.rand(...)`` with ``import numpy as
    np`` resolves to ``numpy.random.rand``.  Calls on local objects
    (``rng.random()``) resolve to None — their base name is not an import.
    """
    parts = dotted_chain(node)
    if parts is None:
        return None
    origin = bindings.get(parts[0])
    if origin is None:
        return None
    return ".".join([origin, *parts[1:]]) if len(parts) > 1 else origin


def _string_tuple(node: ast.AST, constants: dict[str, Any] | None = None):
    """The value of a str / tuple-of-str literal expression, else None.

    Tuple elements may also be *names of previously assigned string
    constants* (``CATEGORIES = (CAT_EVENT, CAT_RUN, ...)``) — the declared
    registry tables are built exactly that way.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Tuple):
        items = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                items.append(element.value)
            elif (
                constants is not None
                and isinstance(element, ast.Name)
                and isinstance(constants.get(element.id), str)
            ):
                items.append(constants[element.id])
            else:
                return None
        return tuple(items)
    return None


def _dict_key_tuple(node: ast.AST, constants: dict[str, Any]):
    """The string keys of a dict literal (``SHED_POLICIES``-style registries)."""
    if not isinstance(node, ast.Dict):
        return None
    keys = []
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append(key.value)
        elif isinstance(key, ast.Name) and isinstance(constants.get(key.id), str):
            keys.append(constants[key.id])
        else:
            return None
    return tuple(keys)


def _atoms_to_json(atoms) -> list:
    out = []
    for atom in sorted(atoms, key=repr):
        if atom[0] == ATOM_STRIP_ORDER:
            out.append([ATOM_STRIP_ORDER, _atoms_to_json(atom[1])])
        else:
            out.append(list(atom))
    return out


def _atoms_from_json(data) -> frozenset:
    atoms = set()
    for item in data:
        if item[0] == ATOM_STRIP_ORDER:
            atoms.add((ATOM_STRIP_ORDER, _atoms_from_json(item[1])))
        else:
            atoms.add(tuple(item))
    return frozenset(atoms)


class _FunctionScanner:
    """Flow-insensitive intra-function dataflow over one function body.

    Two passes: the first seeds the local-name environment (so loops and
    use-before-def inside a body converge), the second records call, sink,
    effect, and store facts.  The result is a serialisable fact dict.
    """

    def __init__(self, module: "Module", qual: str, cls: str | None,
                 node: ast.AST, params: list[str], lineno: int) -> None:
        self.module = module
        self.qual = qual
        self.cls = cls
        self.node = node
        self.params = params
        self.lineno = lineno
        self.env: dict[str, set] = {}
        # name -> ("fresh",) | ("attr", name) | ("param", name)
        self.origins: dict[str, tuple] = {}
        self.calls: list[dict] = []
        self.sinks: list[dict] = []
        self.effects: list[tuple] = []
        self.stores: list[tuple] = []
        self.ret: set = set()
        self.record = False

    def run(self) -> dict:
        body = getattr(self.node, "body", [])
        if isinstance(body, ast.expr):  # lambda
            body = [ast.Return(value=body)]
        for final in (False, True):
            self.record = final
            self.calls, self.sinks, self.effects, self.stores = [], [], [], []
            self.ret = set()
            for stmt in body:
                self._stmt(stmt)
        return {
            "qual": self.qual,
            "cls": self.cls,
            "line": self.lineno,
            "params": self.params,
            "calls": self.calls,
            "sinks": self.sinks,
            "ret": _atoms_to_json(self.ret),
            "effects": [list(effect) for effect in self.effects],
            "stores": [[attr, _atoms_to_json(atoms)] for attr, atoms in self.stores],
        }

    # -- statements -----------------------------------------------------------

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions are scanned as their own functions
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._assign(node)
        elif isinstance(node, ast.Return) and node.value is not None:
            self.ret |= self._expr(node.value)
        elif isinstance(node, ast.Expr):
            value = node.value
            atoms = self._expr(value)
            if isinstance(value, (ast.Yield, ast.YieldFrom)):
                self.ret |= atoms
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            atoms = self._expr(node.iter)
            self._bind_target(node.target, atoms)
            for child in node.body + node.orelse:
                self._stmt(child)
        elif isinstance(node, (ast.While, ast.If)):
            self._expr(node.test)
            for child in node.body + node.orelse:
                self._stmt(child)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                atoms = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, atoms)
            for child in node.body:
                self._stmt(child)
        elif isinstance(node, ast.Try):
            for child in node.body + node.orelse + node.finalbody:
                self._stmt(child)
            for handler in node.handlers:
                for child in handler.body:
                    self._stmt(child)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            if self.record:
                for name in node.names:
                    self.effects.append(("global", name, node.lineno))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    self._store_effect(target, node.lineno)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self._expr(node.exc)
        elif isinstance(node, ast.Assert):
            self._expr(node.test)
        elif isinstance(node, (ast.Import, ast.ImportFrom, ast.Pass,
                               ast.Break, ast.Continue)):
            pass
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child)
                elif isinstance(child, ast.stmt):
                    self._stmt(child)

    def _assign(self, node) -> None:
        value = node.value
        if value is None:
            return
        atoms = self._expr(value)
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(node, ast.AugAssign) and isinstance(target, ast.Name):
                self.env[target.id] = self.env.get(target.id, set()) | atoms
                continue
            self._bind_target(target, atoms, value)

    def _bind_target(self, target: ast.expr, atoms: set,
                     value: ast.expr | None = None) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = self.env.get(target.id, set()) | atoms
            if value is not None and target.id not in self.params:
                origin = self._value_origin(value)
                if origin is not None:
                    self.origins.setdefault(target.id, origin)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, atoms)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, atoms)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._store_effect(target, target.lineno)
            chain = dotted_chain(target if isinstance(target, ast.Attribute) else None)
            if chain and chain[0] == "self" and len(chain) == 2 and self.record:
                self.stores.append((chain[1], frozenset(atoms)))

    def _value_origin(self, value: ast.expr) -> tuple | None:
        """Classify what a local name aliases: fresh container or self attr."""
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.Tuple,
                              ast.ListComp, ast.DictComp, ast.SetComp)):
            return ("fresh",)
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) \
                and value.func.id in _FRESH_CONSTRUCTORS:
            return ("fresh",)
        if isinstance(value, ast.Call):
            dotted = resolve_call_target(value.func, self.module.bindings)
            if dotted is not None and dotted in _FRESH_DOTTED:
                return ("fresh",)
            if isinstance(value.func, ast.Attribute) and value.func.attr == "copy":
                return ("fresh",)
        if isinstance(value, ast.BinOp):
            left = self._value_origin(value.left)
            right = self._value_origin(value.right)
            return left or right
        chain = dotted_chain(value)
        if chain and chain[0] == "self" and len(chain) == 2:
            return ("attr", chain[1])
        return None

    def _base_effect(self, base: ast.expr, lineno: int) -> tuple | None:
        """The effect record for a store/mutation whose receiver is ``base``."""
        chain = dotted_chain(base)
        if chain is None:
            return ("obj", "<expr>", lineno)
        if chain[0] == "self":
            return ("attr", chain[1] if len(chain) > 1 else "self", lineno)
        name = chain[0]
        origin = self.origins.get(name)
        if origin is not None and origin[0] == "fresh":
            return None  # mutating a function-local container is pure
        if origin is not None and origin[0] == "attr":
            return ("attr", origin[1], lineno)
        if name in self.params:
            return ("param", name, lineno)
        if name in self.env or name in self.origins:
            return ("obj", name, lineno)
        return ("global", name, lineno)

    def _store_effect(self, target: ast.expr, lineno: int) -> None:
        if not self.record:
            return
        base = target.value if isinstance(target, (ast.Attribute, ast.Subscript)) else target
        while isinstance(base, ast.Subscript):
            base = base.value
        effect = self._base_effect(base, lineno)
        if effect is not None:
            self.effects.append(effect)

    # -- expressions ----------------------------------------------------------

    def _expr(self, node: ast.expr) -> set:
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Name):
            atoms = set(self.env.get(node.id, ()))
            if node.id in self.params:
                atoms.add((ATOM_PARAM, self.params.index(node.id)))
            return atoms
        if isinstance(node, ast.Attribute):
            atoms = self._expr(node.value)
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                atoms = atoms | {(ATOM_SELF_ATTR, node.attr)}
            return atoms
        if isinstance(node, (ast.Set,)):
            atoms = set().union(*(self._expr(e) for e in node.elts)) if node.elts else set()
            return atoms | {(ATOM_KIND, KIND_ORDER, node.lineno)}
        if isinstance(node, ast.SetComp):
            atoms = self._comprehension(node.generators, node.elt)
            return atoms | {(ATOM_KIND, KIND_ORDER, node.lineno)}
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._comprehension(node.generators, node.elt)
        if isinstance(node, ast.DictComp):
            atoms = self._comprehension(node.generators, node.key)
            return atoms | self._expr(node.value)
        if isinstance(node, (ast.List, ast.Tuple)):
            return set().union(*(self._expr(e) for e in node.elts)) if node.elts else set()
        if isinstance(node, ast.Dict):
            atoms: set = set()
            for key in node.keys:
                if key is not None:
                    atoms |= self._expr(key)
            for value in node.values:
                atoms |= self._expr(value)
            return atoms
        if isinstance(node, ast.BoolOp):
            return set().union(*(self._expr(v) for v in node.values))
        if isinstance(node, ast.BinOp):
            return self._expr(node.left) | self._expr(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._expr(node.operand)
        if isinstance(node, ast.Compare):
            return set().union(self._expr(node.left),
                               *(self._expr(c) for c in node.comparators))
        if isinstance(node, ast.IfExp):
            return self._expr(node.test) | self._expr(node.body) | self._expr(node.orelse)
        if isinstance(node, ast.Subscript):
            return self._expr(node.value) | self._expr(node.slice)
        if isinstance(node, ast.Slice):
            atoms = set()
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    atoms |= self._expr(part)
            return atoms
        if isinstance(node, ast.JoinedStr):
            atoms = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    atoms |= self._expr(value.value)
            return atoms
        if isinstance(node, ast.FormattedValue):
            return self._expr(node.value)
        if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
            return self._expr(node.value) if node.value is not None else set()
        if isinstance(node, ast.NamedExpr):
            atoms = self._expr(node.value)
            self._bind_target(node.target, atoms, node.value)
            return atoms
        if isinstance(node, ast.Starred):
            return self._expr(node.value)
        if isinstance(node, ast.Lambda):
            return set()
        return set()

    def _comprehension(self, generators, element: ast.expr) -> set:
        atoms: set = set()
        for gen in generators:
            iter_atoms = self._expr(gen.iter)
            atoms |= iter_atoms
            self._bind_target(gen.target, iter_atoms)
            for condition in gen.ifs:
                self._expr(condition)
        return atoms | self._expr(element)

    def _call(self, node: ast.Call) -> set:
        func = node.func
        arg_sets = [self._expr(arg) for arg in node.args]
        kw_sets = [self._expr(kw.value) for kw in node.keywords]
        carry: set = set().union(*arg_sets, *kw_sets) if (arg_sets or kw_sets) else set()
        chain = dotted_chain(func)
        terminal = chain[-1] if chain else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if chain is None and isinstance(func, ast.Attribute):
            self._expr(func.value)  # chained receiver: record its own facts
        dotted = resolve_call_target(func, self.module.bindings)

        # Builtin special cases: sanitisers, order sources, passthroughs.
        if isinstance(func, ast.Name) and func.id not in self.module.bindings:
            name = func.id
            if name in _ORDER_NEUTRAL_BUILTINS:
                return {(ATOM_STRIP_ORDER, frozenset(carry))} if carry else set()
            if name in _SET_BUILTINS:
                return carry | {(ATOM_KIND, KIND_ORDER, node.lineno)}
            if name in _PASSTHROUGH_BUILTINS:
                return carry

        if dotted is not None:
            if dotted in WALL_CLOCK_SOURCES:
                return carry | {(ATOM_KIND, KIND_WALLCLOCK, node.lineno)}
            if dotted == "random" or dotted.startswith("random.") \
                    or dotted.startswith("numpy.random."):
                return carry | {(ATOM_KIND, KIND_RNG, node.lineno)}

        # Unsorted dict-view reads: .keys()/.values()/.items() with no args.
        if isinstance(func, ast.Attribute) and func.attr in _DICT_VIEW_METHODS \
                and not node.args and not node.keywords:
            return self._expr(func.value) | {(ATOM_KIND, KIND_ORDER, node.lineno)}

        if not self.record:
            return carry

        # Mutator-method effects (purity facts).
        if isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS:
            effect = self._base_effect(func.value, node.lineno)
            if effect is not None:
                self.effects.append((effect[0], effect[1], node.lineno))

        # Sink records (taint facts).
        if terminal is not None:
            sink_kind = None
            if terminal in _SINK_EMIT:
                sink_kind = "emit"
            elif terminal in _SINK_METRIC and isinstance(func, ast.Attribute):
                sink_kind = "metric"
            elif terminal in _SINK_UTILITY:
                sink_kind = "utility"
            if sink_kind is not None and carry:
                self.sinks.append({
                    "kind": sink_kind,
                    "name": terminal,
                    "line": node.lineno,
                    "atoms": _atoms_to_json(carry),
                })

        # Call facts (call-graph edges + interprocedural flow).
        ref = None
        if dotted is not None:
            ref = ["dotted", dotted]
        elif chain and chain[0] == "self" and len(chain) == 2 and self.cls:
            ref = ["self", f"{self.cls}.{chain[1]}"]
        elif isinstance(func, ast.Name):
            ref = ["local", func.id]
        else:
            ref = ["unknown", terminal or ""]
        index = len(self.calls)
        self.calls.append({
            "ref": ref,
            "line": node.lineno,
            "args": [_atoms_to_json(a) for a in arg_sets + kw_sets],
        })
        return {(ATOM_CALL, index)}


class Module:
    """One parsed source file plus the precomputed facts rules consume."""

    __slots__ = (
        "path", "rel", "pkg", "source", "lines", "tree", "syntax_error",
        "imports", "bindings", "calls", "constructed", "constants",
        "constant_lines", "functions", "emits", "metric_calls",
        "registrations", "content_hash", "from_cache",
    )

    def __init__(self, path: Path, rel: str, pkg: str | None,
                 source: str | None = None) -> None:
        self.path = path
        self.rel = rel
        self.pkg = pkg
        self.source = path.read_text() if source is None else source
        self.lines = self.source.splitlines()
        self.content_hash = hashlib.sha1(self.source.encode("utf-8")).hexdigest()
        self.from_cache = False
        self.syntax_error: str | None = None
        # (module path, line) for every import statement.
        self.imports: list[tuple[str, int]] = []
        # local name -> dotted origin.
        self.bindings: dict[str, str] = {}
        # (resolved dotted target, line) for calls whose base is an import
        # or a ``self``-method (resolved to its defining class).
        self.calls: list[tuple[str, int]] = []
        # (bare class-ish name, line) for C(...) and m.C(...) calls.
        self.constructed: list[tuple[str, int]] = []
        # module-level NAME = "str" | ("str", ...) assignments (plus dict
        # registries captured by their string keys).
        self.constants: dict[str, str | tuple[str, ...]] = {}
        self.constant_lines: dict[str, int] = {}
        # per-function dataflow facts (see module docstring).
        self.functions: list[dict] = []
        # contract facts: tracer.emit category args, metric-name constants,
        # register_backend(...) calls.
        self.emits: list[dict] = []
        self.metric_calls: list[dict] = []
        self.registrations: list[dict] = []
        try:
            self.tree: ast.Module | None = ast.parse(self.source, filename=str(path))
        except SyntaxError as error:
            self.tree = None
            self.syntax_error = f"{error.lineno}: {error.msg}"
            return
        self._scan()

    # -- scanning -------------------------------------------------------------

    def _scan(self) -> None:
        assert self.tree is not None
        # Imports first: bindings drive every later resolution.
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports.append((alias.name, node.lineno))
                    if alias.asname is not None:
                        self.bindings[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a``; chains resolve onward.
                        self.bindings[alias.name.split(".")[0]] = alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                self.imports.append((node.module, node.lineno))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname if alias.asname is not None else alias.name
                    self.bindings[local] = f"{node.module}.{alias.name}"
        # Module-level constant tables.
        for node in self.tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if isinstance(target, ast.Name):
                    literal = _string_tuple(value, self.constants)
                    if literal is None:
                        literal = _dict_key_tuple(value, self.constants)
                    if literal is not None:
                        self.constants[target.id] = literal
                        self.constant_lines[target.id] = node.lineno
        # Legacy flat call records (D1/D2/A-rules) + contract facts.
        class_stack = self._class_membership()
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call_target(node.func, self.bindings)
            if resolved is not None:
                self.calls.append((resolved, node.lineno))
            else:
                chain = dotted_chain(node.func)
                if chain and chain[0] == "self" and len(chain) == 2:
                    owner = class_stack.get(id(node))
                    if owner is not None:
                        dotted = self.dotted_name()
                        if dotted is not None:
                            self.calls.append(
                                (f"{dotted}.{owner}.{chain[1]}", node.lineno)
                            )
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name is not None:
                self.constructed.append((name, node.lineno))
            self._contract_facts(node, name)
        # Per-function dataflow facts.
        self._scan_functions()

    def _class_membership(self) -> dict[int, str]:
        """Map every AST node id to its enclosing class name (if any)."""
        owners: dict[int, str] = {}

        def walk(node: ast.AST, cls: str | None) -> None:
            if isinstance(node, ast.ClassDef):
                cls = node.name
            owners[id(node)] = cls  # type: ignore[assignment]
            for child in ast.iter_child_nodes(node):
                walk(child, cls)

        assert self.tree is not None
        walk(self.tree, None)
        return {k: v for k, v in owners.items() if v is not None}

    def _contract_facts(self, node: ast.Call, name: str | None) -> None:
        if name == "emit" and isinstance(node.func, ast.Attribute) and node.args:
            arg = node.args[0]
            fact: dict = {"line": arg.lineno, "literal": None, "chain": None,
                          "origin": None}
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                fact["literal"] = arg.value
            else:
                chain = dotted_chain(arg)
                if chain is not None:
                    fact["chain"] = chain
                    fact["origin"] = self.bindings.get(chain[0])
            self.emits.append(fact)
        elif name in _METRIC_FACTORIES and isinstance(node.func, ast.Attribute) \
                and node.args:
            arg = node.args[0]
            if isinstance(arg, (ast.Constant, ast.JoinedStr)):
                return  # literals are M1's job; f-strings are accepted dynamics
            chain = dotted_chain(arg)
            if chain is None:
                return
            self.metric_calls.append({
                "factory": name,
                "chain": chain,
                "origin": self.bindings.get(chain[0]),
                "line": arg.lineno,
            })
        elif name == "register_backend":
            reg: dict = {"line": node.lineno, "name": None, "aliases": []}
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                reg["name"] = node.args[0].value
            for kw in node.keywords:
                if kw.arg == "aliases":
                    aliases = _string_tuple(kw.value, self.constants)
                    if isinstance(aliases, tuple):
                        reg["aliases"] = list(aliases)
            if reg["name"] is not None:
                self.registrations.append(reg)

    def _scan_functions(self) -> None:
        assert self.tree is not None

        def params_of(node) -> list[str]:
            args = node.args
            names = [a.arg for a in args.posonlyargs + args.args]
            names += [a.arg for a in args.kwonlyargs]
            return names

        def visit(body, prefix: str, cls: str | None) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}{node.name}"
                    scanner = _FunctionScanner(
                        self, qual, cls, node, params_of(node), node.lineno
                    )
                    self.functions.append(scanner.run())
                    visit(node.body, f"{qual}.", cls)
                elif isinstance(node, ast.ClassDef):
                    visit(node.body, f"{prefix}{node.name}.", node.name)

        visit(self.tree.body, "", None)
        # Module-level statements form a synthetic "<module>" function so
        # top-level sources and sinks participate in the analyses.
        top_level = [
            stmt for stmt in self.tree.body
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef, ast.Import, ast.ImportFrom))
        ]
        holder = ast.Module(body=top_level, type_ignores=[])
        scanner = _FunctionScanner(self, "<module>", None, holder, [], 1)
        self.functions.append(scanner.run())

    # -- serialisation (the incremental cache) --------------------------------

    def facts(self) -> dict:
        """Every parse-derived fact as one JSON-serialisable dict."""
        return {
            "version": FACTS_VERSION,
            "syntax_error": self.syntax_error,
            "imports": [list(item) for item in self.imports],
            "bindings": dict(self.bindings),
            "calls": [list(item) for item in self.calls],
            "constructed": [list(item) for item in self.constructed],
            "constants": {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in self.constants.items()
            },
            "constant_tuples": sorted(
                key for key, value in self.constants.items()
                if isinstance(value, tuple)
            ),
            "constant_lines": dict(self.constant_lines),
            "functions": self.functions,
            "emits": self.emits,
            "metric_calls": self.metric_calls,
            "registrations": self.registrations,
        }

    @classmethod
    def from_facts(cls, path: Path, rel: str, pkg: str | None, source: str,
                   facts: dict) -> "Module":
        """Rebuild a module from cached facts without re-parsing."""
        module = object.__new__(cls)
        module.path = path
        module.rel = rel
        module.pkg = pkg
        module.source = source
        module.lines = source.splitlines()
        module.content_hash = hashlib.sha1(source.encode("utf-8")).hexdigest()
        module.from_cache = True
        module.tree = None
        module.syntax_error = facts.get("syntax_error")
        module.imports = [tuple(item) for item in facts.get("imports", [])]
        module.bindings = dict(facts.get("bindings", {}))
        module.calls = [tuple(item) for item in facts.get("calls", [])]
        module.constructed = [tuple(item) for item in facts.get("constructed", [])]
        tuples = set(facts.get("constant_tuples", []))
        module.constants = {
            key: tuple(value) if key in tuples else value
            for key, value in facts.get("constants", {}).items()
        }
        module.constant_lines = dict(facts.get("constant_lines", {}))
        module.functions = facts.get("functions", [])
        module.emits = facts.get("emits", [])
        module.metric_calls = facts.get("metric_calls", [])
        module.registrations = facts.get("registrations", [])
        return module

    # -- derived --------------------------------------------------------------

    @property
    def pkg_top(self) -> str | None:
        """The top-level package directory (``"engine"`` for engine/tree.py)."""
        if self.pkg is None or "/" not in self.pkg:
            return None
        return self.pkg.split("/", 1)[0]

    def dotted_name(self) -> str | None:
        """The module's dotted import name (``repro.obs.trace``), if packaged."""
        if self.pkg is None:
            return None
        stem = self.pkg[:-3] if self.pkg.endswith(".py") else self.pkg
        if stem == "__init__":
            return "repro"
        if stem.endswith("/__init__"):
            stem = stem[: -len("/__init__")]
        return "repro." + stem.replace("/", ".")


def _package_path(path: Path, package_root: Path | None) -> str | None:
    if package_root is not None:
        try:
            return path.resolve().relative_to(package_root.resolve()).as_posix()
        except ValueError:
            return None
    parts = path.resolve().parts
    if "repro" not in parts:
        return None
    anchor = len(parts) - 1 - parts[::-1].index("repro")
    inner = parts[anchor + 1:]
    return "/".join(inner) if inner else None


def discover(paths: Iterable[Path]) -> Iterator[tuple[Path, str]]:
    """All ``*.py`` files under ``paths`` with scan-root-relative names."""
    for root in paths:
        root = Path(root)
        if root.is_file():
            yield root, root.name
            continue
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            yield path, path.relative_to(root).as_posix()


class ModuleIndex:
    """Every scanned module, parsed once, in deterministic (sorted) order.

    ``cache`` is an optional object with a ``lookup(rel, content_hash)``
    method returning cached facts (see :mod:`repro.analysis.cache`); when a
    file's content hash matches, its module is rebuilt from facts instead
    of re-parsed.  ``docs_root`` points the contract rules at the rendered
    documentation tables (default: ``./docs`` when present).
    """

    def __init__(
        self,
        paths: Iterable[Path | str],
        package_root: Path | str | None = None,
        cache: Any = None,
        docs_root: Path | str | None = None,
    ) -> None:
        self.package_root = Path(package_root) if package_root is not None else None
        self.docs_root = Path(docs_root) if docs_root is not None else Path("docs")
        self.modules: list[Module] = []
        #: scratch space for whole-program analyses memoised per index.
        self.scratch: dict[str, Any] = {}
        seen: set[Path] = set()
        for path, rel in discover(Path(p) for p in paths):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            pkg = _package_path(path, self.package_root)
            source = path.read_text()
            module: Module | None = None
            if cache is not None:
                digest = hashlib.sha1(source.encode("utf-8")).hexdigest()
                facts = cache.lookup(rel, digest)
                if facts is not None:
                    module = Module.from_facts(path, rel, pkg, source, facts)
            if module is None:
                module = Module(path, rel, pkg, source=source)
            self.modules.append(module)
        self.modules.sort(key=lambda module: module.rel)
        self._canonicalize()

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    # -- re-export canonicalisation -------------------------------------------

    def _canonicalize(self) -> None:
        """Resolve names through package ``__init__`` re-export chains.

        ``from repro import EiresConfig`` binds ``EiresConfig ->
        repro.EiresConfig``; ``repro/__init__.py`` re-exports it from
        ``repro.core.config``, so the canonical origin is
        ``repro.core.config.EiresConfig``.  Without this pass those aliases
        resolve to a name no rule or call-graph node matches, silently
        dropping the edge.
        """
        exports: dict[str, str] = {}
        for module in self.modules:
            if module.pkg is None or not module.pkg.endswith("__init__.py"):
                continue
            dotted = module.dotted_name()
            if dotted is None:
                continue
            for local, origin in module.bindings.items():
                exports[f"{dotted}.{local}"] = origin
        if not exports:
            return
        self._exports = exports
        for module in self.modules:
            module.bindings = {
                local: self.canonical_name(origin)
                for local, origin in module.bindings.items()
            }
            module.calls = [
                (self.canonical_name(target), line) for target, line in module.calls
            ]
            for fact in module.emits + module.metric_calls:
                if fact.get("origin"):
                    fact["origin"] = self.canonical_name(fact["origin"])
            for fn in module.functions:
                for call in fn["calls"]:
                    if call["ref"][0] == "dotted":
                        call["ref"][1] = self.canonical_name(call["ref"][1])

    def canonical_name(self, name: str) -> str:
        """Follow re-export aliases to the defining module's dotted name."""
        exports = getattr(self, "_exports", None)
        if not exports:
            return name
        for _ in range(16):
            parts = name.split(".")
            replaced = False
            for cut in range(len(parts), 0, -1):
                prefix = ".".join(parts[:cut])
                target = exports.get(prefix)
                if target is not None and target != prefix:
                    name = ".".join([target, *parts[cut:]])
                    replaced = True
                    break
            if not replaced:
                return name
        return name

    # -- derived tables -------------------------------------------------------

    def import_graph(self) -> dict[str, list[str]]:
        """Scanned module -> the ``repro.*`` modules it imports (sorted)."""
        graph: dict[str, list[str]] = {}
        for module in self.modules:
            repro_imports = sorted(
                {name for name, _ in module.imports
                 if name == "repro" or name.startswith("repro.")}
            )
            graph[module.rel] = repro_imports
        return graph

    def constant_table(self, name: str) -> tuple[str, ...] | None:
        """A registered string-tuple constant, looked up across the index."""
        for module in self.modules:
            value = module.constants.get(name)
            if isinstance(value, tuple):
                return value
        return None

    def module_by_pkg(self, pkg: str) -> Module | None:
        for module in self.modules:
            if module.pkg == pkg:
                return module
        return None

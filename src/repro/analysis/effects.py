"""Purity / effect inference over the call graph.

Each function's *direct* effects come from the per-function facts the
index extracted:

* ``("attr", name, line)``   — a store into / mutation of ``self.<name>``;
* ``("param", name, line)``  — a mutation of a caller-supplied argument;
* ``("global", name, line)`` — a store into module / global state;
* ``("obj", name, line)``    — a mutation of some other non-fresh object.

Mutating a container the function itself created (``out = []; out.append``)
is *not* an effect — the facts layer tracks fresh locals and drops those.

Effects close transitively over resolved call edges: a caller inherits the
``attr`` / ``global`` / ``obj`` effects of everything it calls.  ``param``
effects stay local — the callee mutates *its* argument; whether that is
observable depends on what the caller passed, and the plan-phase contracts
below only pass freshly built containers.

The purity *contracts* — which functions the reproduction promises are
effect-free, and which effect allowances they carry — live in
``PURE_CONTRACTS``.  The vectorized backend's plan phase is the canonical
example: `_plan_transition` legitimately writes the staged plan dict and
its instrumentation counters (``_plan`` / ``vector_stats``), but anything
beyond that whitelist (touching run state, matches, cache entries) would
break the plan/apply split that makes the backend byte-equivalent to the
reference, and rule P1 reports it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.index import Module, ModuleIndex

__all__ = ["EffectAnalysis", "Effect", "PURE_CONTRACTS", "effect_analysis"]

#: (pkg, qualname) -> attribute names the function may legitimately touch.
#: Everything listed is a promised-pure function: the plan phase of the
#: vectorized backend and the Eq. 5/7/8 scoring surface.  An empty tuple
#: means strictly effect-free.
PURE_CONTRACTS: dict[tuple[str, str], tuple[str, ...]] = {
    # Eq. 5/7/8 utility scoring (strategies consume these every decision).
    ("utility/model.py", "required_keys"): (),
    ("utility/model.py", "UtilityModel.urgent_utility"): (),
    ("utility/model.py", "UtilityModel._residual_life_events"): (),
    ("utility/model.py", "UtilityModel.future_utility"): (),
    ("utility/model.py", "UtilityModel.value"): (),
    ("utility/model.py", "UtilityModel.class_count"): (),
    ("utility/rates.py", "RateEstimator.event_rate"): (),
    ("utility/rates.py", "RateEstimator.type_rate"): (),
    ("utility/rates.py", "RateEstimator.extension_rate"): (),
    ("utility/rates.py", "RateEstimator.expected_gap"): (),
    # Shedding utility scoring (eSPICE-style drop ordering).
    ("shedding/policy.py", "partial_match_utility"): (),
    ("shedding/policy.py", "event_utility"): (),
    # The vectorized backend's plan phase: stages decisions into ``_plan``
    # and counts work in ``vector_stats``; must touch nothing else.
    ("backends/vectorized.py", "VectorizedBackend._plan_partition"):
        ("_plan", "vector_stats"),
    ("backends/vectorized.py", "VectorizedBackend._plan_transition"):
        ("_plan", "vector_stats"),
    ("backends/vectorized.py", "VectorizedBackend._eval_vector"):
        ("vector_stats",),
    ("backends/vectorized.py", "VectorizedBackend._gather"): (),
}


@dataclass(frozen=True)
class Effect:
    """One observable side effect, with the call chain that reaches it."""

    kind: str       # attr | global | obj
    name: str       # attribute / global / object name
    rel: str        # module where the effect happens
    line: int
    via: str        # "" for direct effects, else the callee qualname chain


class EffectAnalysis:
    """Transitive effect sets per call-graph node."""

    def __init__(self, index: ModuleIndex) -> None:
        self.index = index
        self.graph: CallGraph = build_call_graph(index)
        #: node key -> frozenset[Effect]
        self.effects: dict[str, frozenset] = {}
        self._compute()

    def _direct(self, module: Module, fn: dict) -> set:
        effects = set()
        for kind, name, line in fn.get("effects", ()):
            if kind == "param":
                continue  # local to the callee; see module docstring
            effects.add(Effect(kind=kind, name=name, rel=module.rel,
                               line=line, via=""))
        return effects

    def _compute(self) -> None:
        # Jacobi fixpoint: inherit callee effects until stable.  The call
        # graph is small enough that a handful of rounds converges.
        direct: dict[str, set] = {}
        for key, (module, fn) in self.graph.functions.items():
            direct[key] = self._direct(module, fn)
        current = {key: set(value) for key, value in direct.items()}
        for _ in range(50):
            changed = False
            for key, (module, fn) in self.graph.functions.items():
                mine = current[key]
                before = len(mine)
                for _, callee in self.graph.edges[key]:
                    if callee is None or callee == key:
                        continue
                    callee_fn = self.graph.functions[callee][1]
                    for effect in current[callee]:
                        inherited = Effect(
                            kind=effect.kind, name=effect.name,
                            rel=effect.rel, line=effect.line,
                            via=effect.via or callee_fn["qual"],
                        )
                        mine.add(inherited)
                if len(mine) != before:
                    changed = True
            if not changed:
                break
        self.effects = {key: frozenset(value) for key, value in current.items()}

    def effects_of(self, module: Module, qual: str) -> frozenset:
        from repro.analysis.callgraph import node_key
        return self.effects.get(node_key(module, qual), frozenset())

    def violations(self, module: Module) -> list[tuple[str, tuple[str, ...], Effect]]:
        """Contract breaches in one module: (qualname, allowed, effect)."""
        if module.pkg is None:
            return []
        out = []
        for fn in module.functions:
            contract = PURE_CONTRACTS.get((module.pkg, fn["qual"]))
            if contract is None:
                continue
            allowed = set(contract)
            for effect in sorted(self.effects_of(module, fn["qual"]),
                                 key=lambda e: (e.rel, e.line, e.kind, e.name)):
                if effect.kind == "attr" and effect.name in allowed:
                    continue
                out.append((fn["qual"], contract, effect))
        return out


def effect_analysis(index: ModuleIndex) -> EffectAnalysis:
    """The memoised effect engine for an index."""
    engine = index.scratch.get("effects")
    if engine is None:
        engine = EffectAnalysis(index)
        index.scratch["effects"] = engine
    return engine

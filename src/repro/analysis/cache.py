"""The persisted, content-hashed facts cache behind incremental runs.

The cache is one JSON file::

    {
      "schema": 1,
      "signature": "<sha1 over the analysis package's own sources>",
      "modules": {
        "<rel>": {
          "hash": "<sha1 of the module source>",
          "pkg": "...", "path": "...",
          "facts": { ... Module.facts() ... },
          "findings": [ ... module-scope findings ... ],
          "suppressed": [ ... suppressed module-scope findings ... ]
        }, ...
      }
    }

A warm run looks up each discovered file by content hash: a hit rebuilds
the :class:`~repro.analysis.index.Module` from cached facts (no
``ast.parse``) and reuses its cached module-scope findings verbatim.
Program-scope rules (the T/P/R families) always re-run — they are cheap
over facts and their results depend on *other* modules, which is exactly
what a per-module cache cannot know.

Two hard validity guards:

* the **signature** hashes every source file of ``repro.analysis`` itself,
  so changing a rule or the facts extractor invalidates everything;
* the cache is only consulted / written for **all-rules** runs — findings
  cached under ``--rules D1`` would silently miss every other rule.

``--changed-since REV`` is advisory UX on top: the content hashes remain
the authority for what re-parses, the git diff merely names the region the
CLI reports (and lets CI log the dirty SCC set).
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from pathlib import Path

__all__ = ["AnalysisCache", "analysis_signature", "changed_files_since"]

CACHE_SCHEMA = 1


def analysis_signature() -> str:
    """sha1 over the analysis package's own sources (rule-config identity)."""
    package_dir = Path(__file__).resolve().parent
    digest = hashlib.sha1()
    digest.update(f"schema={CACHE_SCHEMA}".encode())
    for path in sorted(package_dir.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(path.relative_to(package_dir).as_posix().encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


class AnalysisCache:
    """Load-modify-store wrapper around the cache file."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self.signature = analysis_signature()
        self.modules: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self.valid = False
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(data, dict) or data.get("schema") != CACHE_SCHEMA:
            return
        if data.get("signature") != self.signature:
            return  # the analyzer itself changed: every cached fact is suspect
        modules = data.get("modules")
        if isinstance(modules, dict):
            self.modules = modules
            self.valid = True

    # -- the ModuleIndex hook -------------------------------------------------

    def lookup(self, rel: str, content_hash: str) -> dict | None:
        entry = self.modules.get(rel)
        if entry is not None and entry.get("hash") == content_hash:
            self.hits += 1
            return entry.get("facts")
        self.misses += 1
        return None

    # -- cached per-module findings -------------------------------------------

    def findings_for(self, rel: str, content_hash: str) -> dict | None:
        entry = self.modules.get(rel)
        if entry is not None and entry.get("hash") == content_hash:
            return {
                "findings": entry.get("findings", []),
                "suppressed": entry.get("suppressed", []),
            }
        return None

    def store(self, module, findings: list[dict], suppressed: list[dict]) -> None:
        self.modules[module.rel] = {
            "hash": module.content_hash,
            "pkg": module.pkg,
            "path": str(module.path),
            "facts": module.facts(),
            "findings": findings,
            "suppressed": suppressed,
        }

    def write(self) -> None:
        payload = {
            "schema": CACHE_SCHEMA,
            "signature": self.signature,
            "modules": {rel: self.modules[rel] for rel in sorted(self.modules)},
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(payload, indent=1, sort_keys=True))


def changed_files_since(rev: str, repo_root: Path | str = ".") -> list[str] | None:
    """``git diff --name-only REV`` as repo-relative paths; None if git fails."""
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", rev, "--", "*.py"],
            cwd=str(repo_root), capture_output=True, text=True, timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return sorted(line.strip() for line in proc.stdout.splitlines() if line.strip())

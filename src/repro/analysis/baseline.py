"""The committed findings baseline.

A baseline records *accepted* pre-existing findings by line-independent
fingerprint so the analysis can be turned on strict for new code while a
legacy violation is being worked off.  The repo ships an **empty** baseline
(``tools/analysis_baseline.json``) — the tree is clean — and CI runs
against it; any new finding therefore fails the build.

Workflow::

    python -m repro.analysis src benchmarks --write-baseline   # accept debt
    python -m repro.analysis src benchmarks                    # strict run

Fingerprints hash the rule ID, the package/scan-relative path, and the
message — not the line number — so unrelated edits above a baselined
finding do not churn the file.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.core import Finding

__all__ = ["DEFAULT_BASELINE", "load_baseline", "write_baseline"]

#: Where the committed baseline lives, relative to the repo root (cwd).
DEFAULT_BASELINE = Path("tools") / "analysis_baseline.json"

_VERSION = 1


def load_baseline(path: Path) -> set[str]:
    """The accepted fingerprints in ``path`` (raises on unknown versions)."""
    data = json.loads(path.read_text())
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported baseline version in {path}: {data.get('version')!r}")
    return {entry["fingerprint"] for entry in data.get("findings", [])}


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Serialise ``findings`` as the new accepted baseline."""
    entries = [
        {
            "rule": finding.rule,
            "path": finding.pkg or finding.rel,
            "message": finding.message,
            "fingerprint": finding.fingerprint(),
        }
        for finding in sorted(findings, key=lambda f: (f.rule, f.pkg or f.rel, f.message))
    ]
    payload = {"version": _VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n")

"""The whole-program call graph over a :class:`ModuleIndex`.

Nodes are functions, keyed ``"<rel>::<qualname>"`` (the synthetic
``"<rel>::<module>"`` node holds top-level statements).  Edges come from
the per-function call facts the index extracted:

* ``("dotted", name)`` — calls resolved through imports, canonicalised
  through package re-exports (``repro.EiresConfig`` ->
  ``repro.core.config.EiresConfig``).  A dotted name matches a function if
  it equals ``<module dotted>.<qualname>``; a bare class name
  (``pkg.mod.Cls``) resolves to ``Cls.__init__`` when that method exists.
* ``("self", "Cls.meth")`` — intraclass method calls, resolved inside the
  defining module.
* ``("local", name)`` — same-module function calls.
* ``("unknown", attr)`` — method calls on arbitrary objects; not resolved
  (the taint engine treats them as conservative pass-throughs).

The graph also condenses the *module import graph* into strongly-connected
components (Tarjan) so the incremental cache can compute the dirty region:
a changed module invalidates its own SCC plus every module that can reach
it through imports — exactly the set whose whole-program facts could have
changed.
"""

from __future__ import annotations

from repro.analysis.index import Module, ModuleIndex

__all__ = ["CallGraph", "build_call_graph"]


def node_key(module: Module, qual: str) -> str:
    return f"{module.rel}::{qual}"


class CallGraph:
    """Resolved function-level edges plus module-level SCC machinery."""

    def __init__(self, index: ModuleIndex) -> None:
        self.index = index
        #: node key -> (module, function-fact dict)
        self.functions: dict[str, tuple[Module, dict]] = {}
        #: dotted symbol (``repro.obs.trace.Tracer.emit``) -> node key
        self.symbols: dict[str, str] = {}
        #: node key -> list of (call index, callee node key | None)
        self.edges: dict[str, list[tuple[int, str | None]]] = {}
        self._build()

    # -- construction ---------------------------------------------------------

    def _build(self) -> None:
        for module in self.index:
            dotted = module.dotted_name()
            for fn in module.functions:
                key = node_key(module, fn["qual"])
                self.functions[key] = (module, fn)
                if dotted is not None and fn["qual"] != "<module>":
                    self.symbols[f"{dotted}.{fn['qual']}"] = key
        # Bare class names resolve to their constructor.
        for symbol in list(self.symbols):
            if symbol.endswith(".__init__"):
                cls_symbol = symbol[: -len(".__init__")]
                self.symbols.setdefault(cls_symbol, self.symbols[symbol])
        for key, (module, fn) in self.functions.items():
            self.edges[key] = [
                (i, self.resolve(module, call["ref"]))
                for i, call in enumerate(fn["calls"])
            ]

    def resolve(self, module: Module, ref: list) -> str | None:
        """The callee node key for one call fact, or None if unresolved."""
        kind, name = ref[0], ref[1]
        if kind == "dotted":
            target = self.symbols.get(name)
            if target is not None:
                return target
            # ``pkg.mod.func`` where only the module is indexed but the
            # name is an attribute chain on an instance — no match.
            return None
        if kind == "self":
            # Cls.meth in the same module; fall back to any class in the
            # module defining ``meth`` (mixins resolve to the local def).
            direct = node_key(module, name)
            if direct in self.functions:
                return direct
            meth = name.split(".", 1)[1]
            for fn in module.functions:
                if fn["qual"].endswith(f".{meth}") and fn.get("cls"):
                    return node_key(module, fn["qual"])
            return None
        if kind == "local":
            direct = node_key(module, name)
            if direct in self.functions:
                return direct
            dotted = module.dotted_name()
            if dotted is not None:
                return self.symbols.get(f"{dotted}.{name}")
            return None
        return None

    # -- module-level SCCs (incremental invalidation) -------------------------

    def module_sccs(self) -> list[list[str]]:
        """Tarjan SCCs over the module import graph (rel-path nodes)."""
        dotted_to_rel = {}
        for module in self.index:
            dotted = module.dotted_name()
            if dotted is not None:
                dotted_to_rel[dotted] = module.rel
        graph: dict[str, list[str]] = {}
        for module in self.index:
            deps = []
            for name, _ in module.imports:
                rel = dotted_to_rel.get(name)
                if rel is None and "." in name:
                    # ``from repro.obs.trace import CAT_FETCH`` records the
                    # module; ``from repro.obs import trace`` records the
                    # package — try the trailing-component module too.
                    rel = dotted_to_rel.get(name.rsplit(".", 1)[0])
                if rel is not None and rel != module.rel:
                    deps.append(rel)
            graph[module.rel] = sorted(set(deps))

        index_of: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = [0]

        def strongconnect(node: str) -> None:
            # Iterative Tarjan: (node, iterator-position) frames.
            work = [(node, 0)]
            while work:
                current, pos = work.pop()
                if pos == 0:
                    index_of[current] = lowlink[current] = counter[0]
                    counter[0] += 1
                    stack.append(current)
                    on_stack.add(current)
                recursed = False
                deps = graph.get(current, [])
                for i in range(pos, len(deps)):
                    dep = deps[i]
                    if dep not in graph:
                        continue
                    if dep not in index_of:
                        work.append((current, i + 1))
                        work.append((dep, 0))
                        recursed = True
                        break
                    if dep in on_stack:
                        lowlink[current] = min(lowlink[current], index_of[dep])
                if recursed:
                    continue
                if lowlink[current] == index_of[current]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.remove(member)
                        component.append(member)
                        if member == current:
                            break
                    sccs.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])

        for node in sorted(graph):
            if node not in index_of:
                strongconnect(node)
        return sccs

    def dirty_region(self, dirty_rels: set[str]) -> list[str]:
        """Modules whose analysis results a change to ``dirty_rels`` can move.

        The region is the dirty modules' SCCs plus every module that
        (transitively) imports into them: those are the callers whose
        interprocedural summaries flow through the changed code.
        """
        sccs = self.module_sccs()
        scc_of: dict[str, int] = {}
        for i, component in enumerate(sccs):
            for member in component:
                scc_of[member] = i
        # Reverse import edges at SCC granularity.
        dotted_to_rel = {}
        for module in self.index:
            dotted = module.dotted_name()
            if dotted is not None:
                dotted_to_rel[dotted] = module.rel
        importers: dict[int, set[int]] = {i: set() for i in range(len(sccs))}
        for module in self.index:
            src = scc_of[module.rel]
            for name, _ in module.imports:
                rel = dotted_to_rel.get(name) or (
                    dotted_to_rel.get(name.rsplit(".", 1)[0]) if "." in name else None
                )
                if rel is not None and rel in scc_of and scc_of[rel] != src:
                    importers[scc_of[rel]].add(src)
        dirty_sccs = {scc_of[rel] for rel in dirty_rels if rel in scc_of}
        frontier = list(dirty_sccs)
        while frontier:
            current = frontier.pop()
            for importer in importers.get(current, ()):
                if importer not in dirty_sccs:
                    dirty_sccs.add(importer)
                    frontier.append(importer)
        region = sorted(
            member for i in dirty_sccs for member in sccs[i]
        )
        return region


def build_call_graph(index: ModuleIndex) -> CallGraph:
    """The memoised call graph for an index (one build per index)."""
    graph = index.scratch.get("callgraph")
    if graph is None:
        graph = CallGraph(index)
        index.scratch["callgraph"] = graph
    return graph

"""EIRES: Efficient Integration of Remote Data in Event Stream Processing.

A complete Python reproduction of the SIGMOD 2021 paper by Zhao, van der Aa,
Nguyen, Nguyen, and Weidlich.  The package provides:

* a SASE-style CEP query language, compiler, and automata-based engine with
  greedy / non-greedy selection policies (:mod:`repro.query`,
  :mod:`repro.nfa`, :mod:`repro.engine`);
* a remote-data substrate with per-element transmission latency and
  hierarchical data elements (:mod:`repro.remote`);
* the EIRES utility model, prefetching (PFetch), lazy evaluation (LzEval),
  the Hybrid strategy, and the baselines BL1-BL3 (:mod:`repro.utility`,
  :mod:`repro.strategies`);
* LRU and cost-based cache management (:mod:`repro.cache`);
* workload generators and a benchmark harness regenerating every figure of
  the paper's evaluation (:mod:`repro.workloads`, :mod:`repro.bench`);
* a multi-tenant fleet layer partitioning tenants across worker shards
  over one shared remote-data plane (:mod:`repro.serving`).

Quick start::

    from repro import EIRES, EiresConfig, parse_query

See ``examples/quickstart.py`` for a runnable end-to-end script.

This ``__all__`` is the *curated public surface*: together with the
public subpackages — :mod:`repro.workloads`, :mod:`repro.bench`, and
:mod:`repro.metrics.reporting` — it is everything in-tree consumers
(``examples/``, ``benchmarks/``) may import, and analysis rule R3 fails
the build if they reach deeper.  Adding a name here is an API commitment;
removing one is a breaking change.
"""

from repro.backends import EvalBackend, backend_unavailable_reason, list_backends
from repro.core.config import CACHE_COST, CACHE_LRU, EiresConfig
from repro.core.framework import EIRES
from repro.core.multi import MultiQueryEIRES, QuerySpec
from repro.core.pipeline import RunResult
from repro.runtime import RuntimeBuilder
from repro.engine.engine import GREEDY, NON_GREEDY
from repro.events.event import Event, EventSchema
from repro.events.stream import Stream
from repro.query.ast import EventAtom, OrPattern, Query, SeqPattern, Window
from repro.query.parser import parse_pattern, parse_query
from repro.remote.batching import BatchStats
from repro.remote.store import RemoteStore
from repro.remote.transport import (
    FetchRequest,
    FixedLatency,
    PerSourceLatency,
    UniformLatency,
)
from repro.serving import FleetBuilder, FleetResult, TenantSpec
from repro.sim.rng import make_rng
from repro.strategies import STRATEGIES, make_strategy

__version__ = "1.0.0"

__all__ = [
    "EIRES",
    "MultiQueryEIRES",
    "QuerySpec",
    "RuntimeBuilder",
    "FleetBuilder",
    "TenantSpec",
    "FleetResult",
    "EiresConfig",
    "RunResult",
    "GREEDY",
    "NON_GREEDY",
    "EvalBackend",
    "list_backends",
    "backend_unavailable_reason",
    "CACHE_LRU",
    "CACHE_COST",
    "Event",
    "EventSchema",
    "Stream",
    "Query",
    "EventAtom",
    "SeqPattern",
    "OrPattern",
    "Window",
    "parse_query",
    "parse_pattern",
    "RemoteStore",
    "FetchRequest",
    "BatchStats",
    "FixedLatency",
    "UniformLatency",
    "PerSourceLatency",
    "STRATEGIES",
    "make_strategy",
    "make_rng",
    "__version__",
]

"""Multi-query EIRES: several CEP queries sharing one cache and cost model.

§4.1 of the paper: *"our utility model is able to cope with multiple queries
in a straightforward manner: the utility of a data element is assessed based
on its related current and future partial matches, regardless of the query
for which these partial matches have been created. Sharing of data elements
among queries is thereby captured directly in our cost model. If queries are
assigned priorities, these need to be used as weights in the utility
definition in Eq. 3."*

:class:`MultiQueryEIRES` realises exactly that: each query gets its own
engine, fetch strategy, utility model, and rate estimators, while the
virtual clock, the transport (and its latency monitor), and the cache are
shared.  The cache's utility function sums the per-query utilities weighted
by the queries' priorities, so an element needed by several queries — or by
one high-priority query — is retained over single-use data.

Events are processed by every engine in priority order; the shared clock
makes cross-query interference (one query's stall delaying another's
detection) directly observable, just like in a real shared deployment.
"""

from __future__ import annotations

from typing import Sequence

from repro.cache.base import Cache
from repro.cache.cost_based import CostBasedCache
from repro.cache.history import HitHistory
from repro.cache.lru import LRUCache
from repro.core.config import CACHE_COST, CACHE_LRU, EiresConfig
from repro.core.pipeline import RunResult
from repro.engine.engine import Engine
from repro.engine.interface import MatchRecord
from repro.events.stream import Stream
from repro.metrics.latency import LatencyCollector
from repro.metrics.throughput import ThroughputMeter
from repro.nfa.compiler import compile_query
from repro.query.ast import Query
from repro.remote.monitor import LatencyMonitor
from repro.remote.store import RemoteStore
from repro.remote.transport import LatencyModel, Transport
from repro.sim.clock import VirtualClock
from repro.sim.rng import make_rng, spawn
from repro.sim.scheduler import FutureScheduler
from repro.strategies import make_strategy
from repro.strategies.base import RuntimeContext
from repro.utility.model import UtilityModel
from repro.utility.noise import NoiseModel
from repro.utility.rates import RateEstimator

__all__ = ["MultiQueryEIRES", "QuerySpec"]


class QuerySpec:
    """One query registered with the shared runtime."""

    __slots__ = ("query", "priority", "strategy_name")

    def __init__(self, query: Query, priority: float = 1.0, strategy: str = "Hybrid") -> None:
        if priority <= 0:
            raise ValueError(f"query priority must be positive: {priority}")
        self.query = query
        self.priority = priority
        self.strategy_name = strategy

    def __repr__(self) -> str:
        return f"QuerySpec({self.query.name!r}, priority={self.priority}, {self.strategy_name})"


class _QueryRuntime:
    """Per-query moving parts around the shared substrate."""

    __slots__ = ("spec", "automaton", "engine", "strategy", "utility", "rates", "matches", "latency")

    def __init__(self, spec, automaton, engine, strategy, utility, rates):
        self.spec = spec
        self.automaton = automaton
        self.engine = engine
        self.strategy = strategy
        self.utility = utility
        self.rates = rates
        self.matches: list[MatchRecord] = []
        self.latency = LatencyCollector()


class MultiQueryEIRES:
    """Shared-cache, shared-clock evaluation of multiple CEP queries."""

    def __init__(
        self,
        specs: Sequence[QuerySpec],
        store: RemoteStore,
        latency_model: LatencyModel,
        config: EiresConfig | None = None,
    ) -> None:
        if not specs:
            raise ValueError("at least one query is required")
        names = [spec.query.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"query names must be unique: {names}")
        self.config = config if config is not None else EiresConfig()
        self.clock = VirtualClock()
        rng = make_rng(self.config.seed)
        self.monitor = LatencyMonitor()
        self.transport = Transport(store, latency_model, spawn(rng, "transport"), self.monitor)
        self.noise = NoiseModel(self.config.noise_ratio, seed=self.config.seed)
        self._runtimes: list[_QueryRuntime] = []
        self.cache = self._build_cache()

        for spec in sorted(specs, key=lambda s: -s.priority):
            automaton = compile_query(spec.query)
            utility = UtilityModel(automaton, store, self.monitor, noise=self.noise)
            rates = RateEstimator()
            strategy = make_strategy(spec.strategy_name)
            strategy.attach(
                RuntimeContext(
                    automaton=automaton,
                    clock=self.clock,
                    transport=self.transport,
                    cache=self.cache if strategy.uses_cache else None,
                    utility=utility,
                    rates=rates,
                    scheduler=FutureScheduler(),  # per query: payloads are site-specific
                    history=HitHistory(
                        miss_threshold=self.config.history_miss_threshold,
                        reset_after=self.config.history_reset_after,
                    ),
                    noise=self.noise,
                    omega_fetch=self.config.omega_fetch,
                    ell_pm=self.config.cost_model.per_guard_cost,
                    lookahead_enabled=self.config.lookahead_enabled,
                    prefetch_gate_enabled=self.config.prefetch_gate_enabled,
                    lazy_gate_enabled=self.config.lazy_gate_enabled,
                    utility_tick_interval=self.config.utility_tick_interval,
                )
            )
            engine = Engine(
                automaton,
                self.clock,
                cost_model=self.config.cost_model,
                policy=self.config.policy,
                max_partial_matches=self.config.max_partial_matches,
            )
            strategy.bind_engine(engine)
            self._runtimes.append(_QueryRuntime(spec, automaton, engine, strategy, utility, rates))

    def _build_cache(self) -> Cache:
        if self.config.cache_policy == CACHE_LRU:
            return LRUCache(self.config.cache_capacity)
        if self.config.cache_policy == CACHE_COST:
            return CostBasedCache(self.config.cache_capacity, utility_fn=self._shared_utility)
        raise ValueError(f"unknown cache policy {self.config.cache_policy!r}")

    def _shared_utility(self, key) -> float:
        """Priority-weighted sum of the per-query utilities (Eq. 3 weights)."""
        omega = self.config.omega_cache
        return sum(
            runtime.spec.priority * runtime.utility.value(key, omega)
            for runtime in self._runtimes
        )

    def run(self, stream: Stream) -> dict[str, RunResult]:
        """Replay ``stream`` through every query; results keyed by query name."""
        throughput = ThroughputMeter()
        start = self.clock.now
        for index, event in enumerate(stream):
            self.clock.advance_to(event.t)
            for runtime in self._runtimes:
                runtime.strategy.on_event_start(event, index)
                step_matches = runtime.engine.process_event(event, runtime.strategy)
                runtime.strategy.on_event_end(event, step_matches)
                for match in step_matches:
                    runtime.latency.record(match.latency)
                runtime.matches.extend(step_matches)
            throughput.record_event(self.clock.now)

        results: dict[str, RunResult] = {}
        for runtime in self._runtimes:
            runtime.strategy.end_of_stream()
            runtime.engine.flush(runtime.strategy)
            results[runtime.spec.query.name] = RunResult(
                strategy_name=runtime.strategy.name,
                matches=runtime.matches,
                latency=runtime.latency,
                throughput=throughput,
                engine_stats=runtime.engine.stats.as_dict(),
                strategy_stats=runtime.strategy.stats.as_dict(),
                cache_stats=self.cache.stats.as_dict(),
                transport_stats={
                    "blocking_fetches": self.transport.blocking_fetches,
                    "async_fetches": self.transport.async_fetches,
                    "coalesced": self.transport.coalesced,
                },
                duration_us=self.clock.now - start,
            )
        return results

    def __repr__(self) -> str:
        names = ", ".join(runtime.spec.query.name for runtime in self._runtimes)
        return f"MultiQueryEIRES([{names}], cache={self.config.cache_policy})"

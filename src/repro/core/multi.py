"""Multi-query EIRES: several CEP queries sharing one cache and cost model.

§4.1 of the paper: *"our utility model is able to cope with multiple queries
in a straightforward manner: the utility of a data element is assessed based
on its related current and future partial matches, regardless of the query
for which these partial matches have been created. Sharing of data elements
among queries is thereby captured directly in our cost model. If queries are
assigned priorities, these need to be used as weights in the utility
definition in Eq. 3."*

:class:`MultiQueryEIRES` realises exactly that, as a thin facade over the
unified runtime layer: :class:`~repro.runtime.builder.RuntimeBuilder`
assembles one substrate (virtual clock, transport with fault injection and
breakers, shared cache, tracer, metrics registry) and one
:class:`~repro.runtime.session.QuerySession` per query, and
:func:`~repro.runtime.dispatch.dispatch` drives every engine in priority
order — the same composition root and the same loop as the single-query
:class:`~repro.core.framework.EIRES` facade.  The shared cache's utility
function sums the per-query utilities weighted by the queries' priorities,
so an element needed by several queries — or by one high-priority query —
is retained over single-use data.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import EiresConfig
from repro.core.pipeline import RunResult
from repro.events.stream import Stream
from repro.obs.trace import Tracer
from repro.remote.store import RemoteStore
from repro.remote.transport import LatencyModel
from repro.runtime.builder import CACHE_ALWAYS, RuntimeBuilder
from repro.runtime.session import QuerySession, QuerySpec

__all__ = ["MultiQueryEIRES", "QuerySpec"]


class MultiQueryEIRES:
    """Shared-cache, shared-clock evaluation of multiple CEP queries."""

    def __init__(
        self,
        specs: Sequence[QuerySpec],
        store: RemoteStore,
        latency_model: LatencyModel,
        config: EiresConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        builder = RuntimeBuilder(
            store, latency_model, config=config, tracer=tracer,
            cache_mode=CACHE_ALWAYS,
        )
        for spec in specs:
            builder.add_spec(spec)
        self.runtime = builder.build()
        self.config = self.runtime.config
        self.clock = self.runtime.clock
        self.metrics = self.runtime.metrics
        self.tracer = self.runtime.tracer
        self.monitor = self.runtime.monitor
        self.transport = self.runtime.transport
        self.cache = self.runtime.cache
        self.noise = self.runtime.noise

    @property
    def sessions(self) -> list[QuerySession]:
        """The per-query sessions, in descending priority order."""
        return self.runtime.sessions

    # Historical aliases, kept for callers of the pre-runtime-layer surface.
    @property
    def _runtimes(self) -> list[QuerySession]:
        return self.runtime.sessions

    def _shared_utility(self, key) -> float:
        """Priority-weighted sum of the per-query utilities (Eq. 3 weights)."""
        return self.runtime.shared_utility(key)

    def run(self, stream: Stream, smoothing_window: int = 1) -> dict[str, RunResult]:
        """Replay ``stream`` through every query; results keyed by query name."""
        return self.runtime.run(stream, smoothing_window=smoothing_window)

    def __repr__(self) -> str:
        names = ", ".join(session.name for session in self.runtime.sessions)
        return f"MultiQueryEIRES([{names}], cache={self.config.cache_policy})"

"""Configuration for an assembled EIRES instance.

One :class:`EiresConfig` captures every tunable of the framework — the
paper's system parameters (selection policy, cache policy and capacity, the
utility weighting factors ``omega_fetch``/``omega_cache`` of Eq. 5, the
estimation-noise ratio of Fig. 8a) plus the cost-model constants of the
virtual-time simulation.  The benchmark harness sweeps these fields to
regenerate the sensitivity figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.engine.engine import GREEDY, NON_GREEDY
from repro.engine.interface import CostModel
from repro.shedding.policy import SHED_NONE, SHED_POLICIES
from repro.strategies.base import FAIL_CLOSED, FAIL_OPEN

__all__ = ["EiresConfig", "CACHE_LRU", "CACHE_COST"]

CACHE_LRU = "lru"
CACHE_COST = "cost"


@dataclass(frozen=True)
class EiresConfig:
    """All knobs of one EIRES deployment."""

    # CEP semantics (§2.1)
    policy: str = GREEDY
    max_partial_matches: int | None = None

    # Cache management (§6)
    cache_policy: str = CACHE_COST
    cache_capacity: int = 10_000

    # Utility model (§4)
    omega_fetch: float = 0.7
    omega_cache: float = 0.5
    utility_tick_interval: int = 1
    noise_ratio: float = 0.0

    # Prefetch timing/selection (§5.1)
    lookahead_enabled: bool = True
    prefetch_gate_enabled: bool = True
    history_miss_threshold: int = 3
    history_reset_after: float = 1_000_000.0

    # Lazy evaluation (§5.2)
    lazy_gate_enabled: bool = True

    # Fault tolerance: injection profile, retry policy, circuit breakers,
    # graceful degradation.  ``fault_profile="none"`` keeps the substrate
    # byte-identical to a fault-free build (no fault RNG draws).
    fault_profile: str = "none"
    retry_max_attempts: int = 3
    retry_backoff_base: float = 25.0
    retry_backoff_factor: float = 2.0
    retry_jitter: float = 0.1
    retry_attempt_timeout: float = 400.0
    retry_deadline: float = 4_000.0
    breaker_enabled: bool = True
    breaker_window: int = 32
    breaker_failure_threshold: float = 0.5
    breaker_min_samples: int = 8
    breaker_cooldown: float = 2_000.0
    failure_mode: str = FAIL_CLOSED
    stale_serve_enabled: bool = True

    # Batched fetch plane: async requests per source coalesce for up to
    # ``batch_window`` virtual us (at most ``batch_max_keys`` keys) into one
    # wire request costing ``batch_fixed_latency + n * batch_per_key_latency``.
    # The defaults disable batching, keeping runs byte-identical to the
    # single-key substrate.
    batch_window: float = 0.0
    batch_max_keys: int = 1
    batch_fixed_latency: float = 40.0
    batch_per_key_latency: float = 8.0

    # Load shedding (overload control).  ``shed_policy="none"`` builds no
    # shedding plane at all — byte-identical to a build predating it.  The
    # other policies require at least one bound: ``latency_bound`` (maximum
    # tolerable queueing delay, virtual us) and/or ``run_budget`` (maximum
    # live partial matches per session).
    shed_policy: str = "none"
    latency_bound: float | None = None
    run_budget: int | None = None
    shed_event_threshold: float = 0.0
    omega_shed: float = 0.5

    # Observability: percentile surfaces, the virtual-time series sampler,
    # and the SLO/health plane.  The defaults build no sampler and no SLO
    # plane — byte-identical (and metric-identical) to a build predating
    # them.  ``series_interval`` is the sampling cadence in virtual us
    # (0 = off); the ``slo_*`` objectives are evaluated as burn rates into
    # registered ``slo.*`` metrics, and ``slo_in_detector`` lets the
    # shedding OverloadDetector treat a burn above 1.0 as overload.
    report_percentiles: tuple = (5, 25, 50, 75, 95, 99)
    histogram_percentiles: tuple = (50, 95, 99)
    series_interval: float = 0.0
    slo_latency_bound: float | None = None
    slo_recall_floor: float | None = None
    slo_fetch_budget: float | None = None
    slo_in_detector: bool = False

    # Virtual-time cost model
    cost_model: CostModel = field(default_factory=CostModel)

    # Reproducibility
    seed: int = 42

    def __post_init__(self) -> None:
        if self.policy not in (GREEDY, NON_GREEDY):
            raise ValueError(f"unknown selection policy {self.policy!r}")
        if self.cache_policy not in (CACHE_LRU, CACHE_COST):
            raise ValueError(f"unknown cache policy {self.cache_policy!r}")
        if self.cache_capacity <= 0:
            raise ValueError(f"cache capacity must be positive: {self.cache_capacity}")
        for name in ("omega_fetch", "omega_cache", "noise_ratio"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {value}")
        if self.utility_tick_interval < 1:
            raise ValueError("utility tick interval must be >= 1")
        if self.failure_mode not in (FAIL_OPEN, FAIL_CLOSED):
            raise ValueError(f"unknown failure mode {self.failure_mode!r}")
        if self.retry_max_attempts < 1:
            raise ValueError(f"retry_max_attempts must be >= 1: {self.retry_max_attempts}")
        if self.breaker_window < 1:
            raise ValueError(f"breaker_window must be >= 1: {self.breaker_window}")
        if not 0.0 < self.breaker_failure_threshold <= 1.0:
            raise ValueError(
                f"breaker_failure_threshold must be in (0, 1]: {self.breaker_failure_threshold}"
            )
        if self.batch_window < 0:
            raise ValueError(f"batch_window must be non-negative: {self.batch_window}")
        if self.batch_max_keys < 1:
            raise ValueError(f"batch_max_keys must be >= 1: {self.batch_max_keys}")
        if self.batch_fixed_latency < 0:
            raise ValueError(
                f"batch_fixed_latency must be non-negative: {self.batch_fixed_latency}"
            )
        if self.batch_per_key_latency < 0:
            raise ValueError(
                f"batch_per_key_latency must be non-negative: {self.batch_per_key_latency}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shedding policy {self.shed_policy!r}; choose from "
                f"{sorted(SHED_POLICIES)}"
            )
        if self.latency_bound is not None and self.latency_bound <= 0:
            raise ValueError(f"latency_bound must be positive: {self.latency_bound}")
        if self.run_budget is not None and self.run_budget < 1:
            raise ValueError(f"run_budget must be >= 1: {self.run_budget}")
        if (
            self.shed_policy != SHED_NONE
            and self.latency_bound is None
            and self.run_budget is None
            and not self.slo_in_detector
        ):
            # SLO-consuming detectors may shed on burn rates alone; everything
            # else needs an explicit overload bound to ever trigger.
            raise ValueError(
                f"shed_policy={self.shed_policy!r} needs --latency-bound, "
                f"--run-budget, and/or --slo-in-detector"
            )
        if not 0.0 <= self.omega_shed <= 1.0:
            raise ValueError(f"omega_shed must be in [0, 1]: {self.omega_shed}")
        if self.shed_event_threshold < 0:
            raise ValueError(
                f"shed_event_threshold must be non-negative: {self.shed_event_threshold}"
            )
        for name in ("report_percentiles", "histogram_percentiles"):
            qs = getattr(self, name)
            if not qs:
                raise ValueError(f"{name} must name at least one percentile")
            for q in qs:
                if not 0 <= q <= 100:
                    raise ValueError(f"{name} entries must be in [0, 100]: {q}")
        if self.series_interval < 0:
            raise ValueError(f"series_interval must be non-negative: {self.series_interval}")
        if self.slo_latency_bound is not None and self.slo_latency_bound <= 0:
            raise ValueError(f"slo_latency_bound must be positive: {self.slo_latency_bound}")
        if self.slo_recall_floor is not None and not 0.0 <= self.slo_recall_floor <= 1.0:
            raise ValueError(f"slo_recall_floor must be in [0, 1]: {self.slo_recall_floor}")
        if self.slo_fetch_budget is not None and self.slo_fetch_budget <= 0:
            raise ValueError(f"slo_fetch_budget must be positive: {self.slo_fetch_budget}")
        if self.slo_in_detector and not self.has_slo:
            raise ValueError("slo_in_detector needs at least one slo_* objective set")

    @property
    def has_slo(self) -> bool:
        """Whether any SLO objective is declared (builds the SloPlane)."""
        return (
            self.slo_latency_bound is not None
            or self.slo_recall_floor is not None
            or self.slo_fetch_budget is not None
        )

    def with_(self, **changes) -> "EiresConfig":
        """A copy with some fields replaced (sweep convenience)."""
        return replace(self, **changes)

"""The EIRES facade: assemble all components and evaluate queries.

:class:`EIRES` wires together the components of Fig. 4 — the CEP engine, the
cache, the utility model, and the remote-data fetching strategy — for one
query over one remote store.  Typical use::

    from repro import EIRES, EiresConfig, parse_query
    from repro.remote import RemoteStore, UniformLatency

    query = parse_query("SEQ(A a, B b) WHERE a.v1 IN REMOTE[b.v1] WITHIN 100",
                        name="demo")
    store = RemoteStore()
    store.put("v1", 7, {1, 2, 3})

    eires = EIRES(query, store, UniformLatency(10, 100),
                  strategy="Hybrid", config=EiresConfig())
    result = eires.run(stream)
    print(result.latency_percentiles())
"""

from __future__ import annotations

from repro.cache.base import Cache
from repro.cache.cost_based import CostBasedCache
from repro.cache.history import HitHistory
from repro.cache.lru import LRUCache
from repro.core.config import CACHE_COST, CACHE_LRU, EiresConfig
from repro.core.pipeline import Pipeline, RunResult
from repro.engine.engine import Engine
from repro.events.stream import Stream
from repro.nfa.automaton import Automaton
from repro.nfa.compiler import compile_query
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.query.ast import Query
from repro.remote.faults import make_fault_model
from repro.remote.monitor import BreakerBoard, LatencyMonitor
from repro.remote.retry import RetryPolicy
from repro.remote.store import RemoteStore
from repro.remote.transport import LatencyModel, Transport
from repro.sim.clock import VirtualClock
from repro.sim.rng import make_rng, spawn
from repro.sim.scheduler import FutureScheduler
from repro.strategies import make_strategy
from repro.strategies.base import FetchStrategy, RuntimeContext
from repro.utility.model import UtilityModel
from repro.utility.noise import NoiseModel
from repro.utility.rates import RateEstimator

__all__ = ["EIRES"]


class EIRES:
    """One assembled instance of the framework for a single query."""

    def __init__(
        self,
        query: Query,
        store: RemoteStore,
        latency_model: LatencyModel,
        strategy: str | FetchStrategy = "Hybrid",
        config: EiresConfig | None = None,
        backend: str = "automaton",
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config if config is not None else EiresConfig()
        self.query = query
        self.automaton: Automaton = compile_query(query)
        self.clock = VirtualClock()
        self.metrics = MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        rng = make_rng(self.config.seed)
        self.monitor = LatencyMonitor()
        # The fault rng is a *separate* stream spawned after the transport's:
        # with fault_profile="none" no fault draws happen at all, so latency
        # samples are byte-identical to a build without the fault machinery.
        fault_model = make_fault_model(self.config.fault_profile)
        retry_policy = RetryPolicy(
            max_attempts=self.config.retry_max_attempts,
            backoff_base=self.config.retry_backoff_base,
            backoff_factor=self.config.retry_backoff_factor,
            jitter=self.config.retry_jitter,
            attempt_timeout=self.config.retry_attempt_timeout,
            deadline=self.config.retry_deadline,
        )
        breakers = (
            BreakerBoard(
                window_size=self.config.breaker_window,
                failure_threshold=self.config.breaker_failure_threshold,
                min_samples=self.config.breaker_min_samples,
                cooldown=self.config.breaker_cooldown,
                tracer=self.tracer,
            )
            if self.config.breaker_enabled
            else None
        )
        self.transport = Transport(
            store,
            latency_model,
            spawn(rng, "transport"),
            self.monitor,
            fault_model=fault_model,
            fault_rng=spawn(rng, "faults"),
            retry_policy=retry_policy,
            breakers=breakers,
        )
        self.strategy = make_strategy(strategy) if isinstance(strategy, str) else strategy
        if self.tracer.enabled and not self.tracer.track:
            # Default the trace track to the strategy so multi-strategy
            # comparisons land on separate rows in the Chrome viewer.
            self.tracer.track = self.strategy.name
        self.transport.bind_observability(self.metrics, self.tracer)
        self.cache = self._build_cache()
        if self.cache is not None:
            self.cache.bind_observability(self.metrics, self.tracer)
        self.noise = NoiseModel(self.config.noise_ratio, seed=self.config.seed)
        self.utility = UtilityModel(self.automaton, store, self.monitor, noise=self.noise)
        self.rates = RateEstimator()
        self.scheduler = FutureScheduler()
        self.history = HitHistory(
            miss_threshold=self.config.history_miss_threshold,
            reset_after=self.config.history_reset_after,
        )
        self.strategy.attach(
            RuntimeContext(
                automaton=self.automaton,
                clock=self.clock,
                transport=self.transport,
                cache=self.cache,
                utility=self.utility,
                rates=self.rates,
                scheduler=self.scheduler,
                history=self.history,
                noise=self.noise,
                omega_fetch=self.config.omega_fetch,
                ell_pm=self.config.cost_model.per_guard_cost,
                lookahead_enabled=self.config.lookahead_enabled,
                prefetch_gate_enabled=self.config.prefetch_gate_enabled,
                lazy_gate_enabled=self.config.lazy_gate_enabled,
                utility_tick_interval=self.config.utility_tick_interval,
                failure_mode=self.config.failure_mode,
                stale_serve_enabled=self.config.stale_serve_enabled,
                metrics=self.metrics,
                tracer=self.tracer,
            )
        )
        if backend == "automaton":
            self.engine = Engine(
                self.automaton,
                self.clock,
                cost_model=self.config.cost_model,
                policy=self.config.policy,
                max_partial_matches=self.config.max_partial_matches,
            )
        elif backend == "tree":
            # The §9 tree-based execution model; linear SEQ + greedy only.
            from repro.engine.tree import TreeEngine

            if self.config.policy != "greedy":
                raise ValueError("the tree backend implements greedy selection only")
            self.engine = TreeEngine(
                self.automaton, self.clock, cost_model=self.config.cost_model
            )
        else:
            raise ValueError(f"unknown backend {backend!r}; use 'automaton' or 'tree'")
        self.backend = backend
        self.pipeline = Pipeline(self.engine, self.strategy)

    def _build_cache(self) -> Cache | None:
        if not self.strategy.uses_cache:
            return None
        if self.config.cache_policy == CACHE_LRU:
            return LRUCache(self.config.cache_capacity)
        if self.config.cache_policy == CACHE_COST:
            # Bound to the utility model lazily: the model is built right
            # after the cache, so close over the attribute lookup.
            return CostBasedCache(
                self.config.cache_capacity,
                utility_fn=lambda key: self.utility.value(key, self.config.omega_cache),
            )
        raise ValueError(f"unknown cache policy {self.config.cache_policy!r}")

    def run(self, stream: Stream, smoothing_window: int = 1) -> RunResult:
        """Evaluate the query over ``stream`` and return all measurements."""
        return self.pipeline.run(stream, smoothing_window=smoothing_window)

    def __repr__(self) -> str:
        return (
            f"EIRES(query={self.query.name!r}, strategy={self.strategy.name}, "
            f"policy={self.config.policy}, cache={self.config.cache_policy})"
        )

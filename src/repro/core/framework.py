"""The EIRES facade: a single query on the unified runtime layer.

:class:`EIRES` is a thin shell over :class:`repro.runtime.RuntimeBuilder` —
the same composition root that assembles multi-query deployments — exposing
the components of Fig. 4 as plain attributes for one query over one remote
store.  Typical use::

    from repro import EIRES, EiresConfig, parse_query
    from repro.remote import RemoteStore, UniformLatency

    query = parse_query("SEQ(A a, B b) WHERE a.v1 IN REMOTE[b.v1] WITHIN 100",
                        name="demo")
    store = RemoteStore()
    store.put("v1", 7, {1, 2, 3})

    eires = EIRES(query, store, UniformLatency(10, 100),
                  strategy="Hybrid", config=EiresConfig())
    result = eires.run(stream)
    print(result.latency_percentiles())
"""

from __future__ import annotations

from repro.core.config import EiresConfig
from repro.core.pipeline import RunResult
from repro.events.stream import Stream
from repro.obs.trace import Tracer
from repro.query.ast import Query
from repro.remote.store import RemoteStore
from repro.remote.transport import LatencyModel
from repro.runtime.builder import RuntimeBuilder
from repro.strategies.base import FetchStrategy

__all__ = ["EIRES"]


class EIRES:
    """One assembled instance of the framework for a single query."""

    def __init__(
        self,
        query: Query,
        store: RemoteStore,
        latency_model: LatencyModel,
        strategy: str | FetchStrategy = "Hybrid",
        config: EiresConfig | None = None,
        backend: str = "automaton",
        tracer: Tracer | None = None,
    ) -> None:
        self.runtime = (
            RuntimeBuilder(store, latency_model, config=config, tracer=tracer)
            .add_query(query, strategy=strategy, backend=backend)
            .build()
        )
        session = self.runtime.sessions[0]
        ctx = session.strategy.ctx
        # The assembled components, exposed flat for inspection and tests.
        self.config = self.runtime.config
        self.query = query
        self.automaton = session.automaton
        self.clock = self.runtime.clock
        self.metrics = self.runtime.metrics
        self.tracer = self.runtime.tracer
        self.monitor = self.runtime.monitor
        self.transport = self.runtime.transport
        self.cache = ctx.cache
        self.noise = self.runtime.noise
        self.utility = session.utility
        self.rates = session.rates
        self.scheduler = ctx.scheduler
        self.history = ctx.history
        self.strategy = session.strategy
        self.engine = session.engine
        # Canonical registry name (aliases like "automaton" normalised).
        self.backend = session.spec.backend

    def run(self, stream: Stream, smoothing_window: int = 1) -> RunResult:
        """Evaluate the query over ``stream`` and return all measurements."""
        results = self.runtime.run(stream, smoothing_window=smoothing_window)
        return results[self.query.name]

    def __repr__(self) -> str:
        return (
            f"EIRES(query={self.query.name!r}, strategy={self.strategy.name}, "
            f"policy={self.config.policy}, cache={self.config.cache_policy})"
        )

"""The event-processing pipeline: stream -> strategy -> engine -> metrics.

This is the outer loop of Alg. 1.  For each input event the pipeline

1. idles the engine forward to the event's arrival time (if the engine is
   already behind — e.g. it stalled on a blocking fetch — the event has been
   queueing and its waiting time will show up in match latency);
2. lets the strategy deliver due async responses into the cache, fire
   offset-timed prefetches, and refresh its estimates;
3. runs the engine's ``f_Q`` step;
4. records matches and throughput.
"""

from __future__ import annotations

from typing import Any

from repro.engine.engine import Engine
from repro.engine.interface import MatchRecord
from repro.events.stream import Stream
from repro.metrics.latency import LatencyCollector
from repro.metrics.throughput import ThroughputMeter
from repro.obs.trace import CAT_EVENT, CAT_MATCH, NULL_TRACER
from repro.remote.transport import TRANSPORT_COUNTER_KEYS
from repro.strategies.base import FetchStrategy

__all__ = ["RunResult", "Pipeline"]


class RunResult:
    """Everything measured during one stream replay."""

    def __init__(
        self,
        strategy_name: str,
        matches: list[MatchRecord],
        latency: LatencyCollector,
        throughput: ThroughputMeter,
        engine_stats: dict[str, Any],
        strategy_stats: dict[str, Any],
        cache_stats: dict[str, Any] | None,
        transport_stats: dict[str, Any],
        duration_us: float,
        metrics: dict[str, Any] | None = None,
    ) -> None:
        self.strategy_name = strategy_name
        self.matches = matches
        self.latency = latency
        self.throughput = throughput
        self.engine_stats = engine_stats
        self.strategy_stats = strategy_stats
        self.cache_stats = cache_stats
        self.transport_stats = transport_stats
        self.duration_us = duration_us
        # Full registry snapshot when the run was assembled with one; not
        # part of summary() so observability cannot change reported results.
        self.metrics = metrics

    @property
    def match_count(self) -> int:
        return len(self.matches)

    def match_signatures(self) -> set[tuple]:
        """Canonical match identities, for cross-strategy equivalence checks."""
        return {match.signature() for match in self.matches}

    def latency_percentiles(self) -> dict[float, float]:
        return self.latency.percentiles()

    def summary(self) -> dict[str, Any]:
        """Flat summary used by reports and EXPERIMENTS.md tables."""
        data: dict[str, Any] = {
            "strategy": self.strategy_name,
            "matches": self.match_count,
            "throughput_eps": round(self.throughput.events_per_second(), 1),
        }
        for q, value in self.latency_percentiles().items():
            data[f"p{int(q)}"] = round(value, 2)
        data.update({f"engine.{k}": v for k, v in self.engine_stats.items()})
        data.update({f"fetch.{k}": v for k, v in self.strategy_stats.items()})
        if self.cache_stats is not None:
            data.update({f"cache.{k}": v for k, v in self.cache_stats.items()})
        data.update({f"transport.{k}": v for k, v in self.transport_stats.items()})
        return data

    def __repr__(self) -> str:
        p = self.latency_percentiles()
        return (
            f"RunResult({self.strategy_name}: {self.match_count} matches, "
            f"p50={p[50]:.1f}us, p95={p[95]:.1f}us, "
            f"{self.throughput.events_per_second():.0f} ev/s)"
        )


class Pipeline:
    """Drives one engine/strategy pair over a stream."""

    def __init__(self, engine: Engine, strategy: FetchStrategy) -> None:
        self.engine = engine
        self.strategy = strategy
        strategy.bind_engine(engine)

    def run(self, stream: Stream, smoothing_window: int = 1) -> RunResult:
        """Replay ``stream`` to completion and collect all measurements."""
        engine = self.engine
        strategy = self.strategy
        clock = engine.clock
        latency = LatencyCollector(smoothing_window=smoothing_window)
        throughput = ThroughputMeter()
        matches: list[MatchRecord] = []
        start = clock.now
        ctx = strategy.ctx
        tracer = ctx.tracer if ctx is not None else NULL_TRACER

        for index, event in enumerate(stream):
            # The engine picks the event up at arrival or when it frees up,
            # whichever is later — queueing delay is real latency.
            clock.advance_to(event.t)
            if tracer.enabled:
                tracer.emit(CAT_EVENT, "arrival", event.t, seq_no=event.seq, picked_up=clock.now)
            strategy.on_event_start(event, index)
            step_matches = engine.process_event(event, strategy)
            strategy.on_event_end(event, step_matches)
            for match in step_matches:
                latency.record(match.latency)
                if tracer.enabled:
                    tracer.emit(
                        CAT_MATCH,
                        "emit",
                        match.detected_at,
                        latency=match.latency,
                        fetch_wait=match.fetch_wait,
                        events=[
                            [binding, bound.seq]
                            for binding, bound in sorted(match.events.items())
                        ],
                    )
            matches.extend(step_matches)
            throughput.record_event(clock.now)

        strategy.end_of_stream()
        engine.flush(strategy)

        cache = ctx.cache if ctx is not None else None
        transport = ctx.transport if ctx is not None else None
        return RunResult(
            strategy_name=strategy.name,
            matches=matches,
            latency=latency,
            throughput=throughput,
            engine_stats=engine.stats.as_dict(),
            strategy_stats=strategy.stats.as_dict(),
            cache_stats=cache.stats.as_dict() if cache is not None else None,
            transport_stats={
                key: getattr(transport, key) for key in TRANSPORT_COUNTER_KEYS
            }
            if transport is not None
            else {},
            duration_us=clock.now - start,
            metrics=ctx.metrics.snapshot()
            if ctx is not None and ctx.metrics is not None
            else None,
        )

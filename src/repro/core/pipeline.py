"""Compatibility shim over the runtime layer's dispatch loop.

The event loop itself lives in :mod:`repro.runtime.dispatch` — the single
dispatch implementation for single- and multi-query evaluation.  This
module keeps the historical import surface alive:

* :class:`RunResult` is re-exported from the runtime layer;
* :class:`Pipeline` wraps one engine/strategy pair in a throwaway
  :class:`~repro.runtime.session.QuerySession` and delegates to
  :func:`~repro.runtime.dispatch.dispatch`.
"""

from __future__ import annotations

from repro.engine.engine import Engine
from repro.events.stream import Stream
from repro.obs.trace import NULL_TRACER
from repro.runtime.dispatch import RunResult, dispatch
from repro.runtime.session import QuerySession
from repro.strategies.base import FetchStrategy

__all__ = ["RunResult", "Pipeline"]


class Pipeline:
    """Drives one engine/strategy pair over a stream (legacy surface).

    New code should assemble a :class:`~repro.runtime.builder.Runtime` via
    :class:`~repro.runtime.builder.RuntimeBuilder` and call ``run`` on it;
    this wrapper exists for callers that hold a hand-built engine and
    strategy (unit tests, notebooks).
    """

    def __init__(self, engine: Engine, strategy: FetchStrategy) -> None:
        self.engine = engine
        self.strategy = strategy
        strategy.bind_engine(engine)

    def run(self, stream: Stream, smoothing_window: int = 1) -> RunResult:
        """Replay ``stream`` to completion and collect all measurements."""
        ctx = self.strategy.ctx
        session = QuerySession(
            spec=None,
            automaton=self.engine.automaton,
            engine=self.engine,
            strategy=self.strategy,
            utility=ctx.utility if ctx is not None else None,
            rates=ctx.rates if ctx is not None else None,
        )
        tracer = ctx.tracer if ctx is not None else NULL_TRACER
        [result] = dispatch(
            self.engine.clock,
            [session],
            stream,
            tracer=tracer,
            smoothing_window=smoothing_window,
        )
        return result

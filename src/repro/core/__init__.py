"""Framework assembly: configuration and the EIRES facades.

The actual composition root and dispatch loop live one layer down, in
:mod:`repro.runtime`; this package holds the configuration schema and the
thin public facades over it.
"""

from repro.core.config import CACHE_COST, CACHE_LRU, EiresConfig
from repro.core.framework import EIRES
from repro.core.multi import MultiQueryEIRES, QuerySpec
from repro.core.pipeline import Pipeline, RunResult

__all__ = [
    "EIRES",
    "MultiQueryEIRES",
    "QuerySpec",
    "EiresConfig",
    "Pipeline",
    "RunResult",
    "CACHE_LRU",
    "CACHE_COST",
]

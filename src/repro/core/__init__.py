"""Framework assembly: configuration, pipeline, and the EIRES facade."""

from repro.core.config import CACHE_COST, CACHE_LRU, EiresConfig
from repro.core.framework import EIRES
from repro.core.pipeline import Pipeline, RunResult

__all__ = ["EIRES", "EiresConfig", "Pipeline", "RunResult", "CACHE_LRU", "CACHE_COST"]

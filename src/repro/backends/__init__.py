"""Evaluation backends: pluggable engines behind the :class:`EvalBackend` interface.

Importing this package populates the registry.  The ``reference`` and
``tree`` backends always register; the ``vectorized`` backend needs NumPy
(the ``[vector]`` optional extra) and registers *conditionally* — when the
import fails (or is suppressed via ``REPRO_DISABLE_NUMPY=1``, the knob CI
uses to prove the NumPy-free path) the name is marked unavailable with a
reason, which surfaces as a clean CLI error and a pytest skip message
instead of an ``ImportError``.
"""

from __future__ import annotations

import os

from repro.backends.base import (
    BackendCapabilities,
    BackendCapabilityError,
    BackendListing,
    BackendUnavailableError,
    EvalBackend,
    backend_names,
    backend_unavailable_reason,
    get_backend,
    list_backends,
    make_backend,
    mark_backend_unavailable,
    register_backend,
    resolve_backend,
)
from repro.backends.reference import ReferenceBackend
from repro.backends.tree import TreeBackend

__all__ = [
    "BackendCapabilities",
    "BackendCapabilityError",
    "BackendListing",
    "BackendUnavailableError",
    "EvalBackend",
    "ReferenceBackend",
    "TreeBackend",
    "backend_names",
    "backend_unavailable_reason",
    "get_backend",
    "list_backends",
    "make_backend",
    "mark_backend_unavailable",
    "register_backend",
    "resolve_backend",
]

_VECTOR_HINT = (
    "the vectorized backend needs NumPy — install the [vector] extra "
    "(pip install 'eires-repro[vector]')"
)

if os.environ.get("REPRO_DISABLE_NUMPY"):
    mark_backend_unavailable(
        "vectorized", f"disabled by REPRO_DISABLE_NUMPY; {_VECTOR_HINT}"
    )
else:
    try:
        from repro.backends.vectorized import VectorizedBackend  # noqa: F401

        __all__.append("VectorizedBackend")
    except ImportError:
        mark_backend_unavailable("vectorized", _VECTOR_HINT)

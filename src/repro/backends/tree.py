"""The ``tree`` backend: the left-deep buffer engine, capability-limited.

:class:`~repro.engine.tree.TreeEngine` trades generality for a different
evaluation shape (per-step event buffers joined left-to-right, as in
tree-based CEP evaluation).  Its limits used to live as ad-hoc
``ValueError``\\ s inside the builder; here they are *declared* — greedy
selection only, no shedding surface, no per-run obligation records — and
the builder refuses unsupported configurations generically through
:meth:`EvalBackend.require`.

``exact_replay`` is ``False``: the tree engine produces the same *match
set* as the reference backend on the queries it supports, but its virtual
cost accounting and stats counters follow its own evaluation order, so the
conformance suite compares match signatures only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.backends.base import BackendCapabilities, EvalBackend, register_backend
from repro.engine.engine import GREEDY
from repro.engine.interface import CostModel
from repro.engine.tree import TreeEngine

if TYPE_CHECKING:
    from repro.nfa.automaton import Automaton
    from repro.sim.clock import VirtualClock

__all__ = ["TreeBackend"]


@register_backend(
    "tree",
    capabilities=BackendCapabilities(
        policies=(GREEDY,),
        shedding=False,
        obligations=False,
        exact_replay=False,
    ),
    description="left-deep buffer engine for linear SEQ queries (greedy only)",
)
class TreeBackend(TreeEngine, EvalBackend):
    """The :class:`TreeEngine` published through the backend registry."""

    @classmethod
    def build(
        cls,
        automaton: "Automaton",
        clock: "VirtualClock",
        *,
        cost_model: CostModel | None = None,
        policy: str = GREEDY,
        max_partial_matches: int | None = None,
    ) -> "TreeBackend":
        # ``policy`` and ``max_partial_matches`` are capability-gated: the
        # builder has already refused any configuration that relies on them.
        return cls(automaton, clock, cost_model=cost_model)

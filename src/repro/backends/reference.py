"""The ``reference`` backend: today's automaton :class:`Engine`, unchanged.

Every result in the repository — the committed bench baselines, the golden
byte-identity regressions, the paper figures — was produced by this engine,
so it is the semantics oracle the conformance suite holds every
``exact_replay`` backend against.  The class adds nothing but the uniform
:meth:`build` factory and the registry metadata; the evaluation path is the
:class:`~repro.engine.engine.Engine` hot path byte-for-byte.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.backends.base import BackendCapabilities, EvalBackend, register_backend
from repro.engine.engine import GREEDY, NON_GREEDY, Engine
from repro.engine.interface import CostModel

if TYPE_CHECKING:
    from repro.nfa.automaton import Automaton
    from repro.sim.clock import VirtualClock

__all__ = ["ReferenceBackend"]


@register_backend(
    "reference",
    aliases=("automaton",),
    capabilities=BackendCapabilities(
        policies=(GREEDY, NON_GREEDY),
        shedding=True,
        obligations=True,
        exact_replay=True,
    ),
    description="the NFA run engine (the reproduction's reference semantics)",
)
class ReferenceBackend(Engine, EvalBackend):
    """The :class:`Engine` published through the backend registry."""

    @classmethod
    def build(
        cls,
        automaton: "Automaton",
        clock: "VirtualClock",
        *,
        cost_model: CostModel | None = None,
        policy: str = GREEDY,
        max_partial_matches: int | None = None,
    ) -> "ReferenceBackend":
        return cls(
            automaton,
            clock,
            cost_model=cost_model,
            policy=policy,
            max_partial_matches=max_partial_matches,
        )

"""The evaluation-backend registry: pluggable engines behind one interface.

Kolchinsky & Schuster (arXiv 1801.09413) argue that CEP query *semantics*
should be independent of the evaluation *mechanism*, so mechanisms can be
swapped and compared under one cost model.  This module is that separation
for the reproduction: an :class:`EvalBackend` is any engine that can play
the ``f_Q`` role in the dispatch loop — consume one input event, advance the
virtual clock by the declared costs, and produce
:class:`~repro.engine.interface.MatchRecord` objects — and the registry maps
backend names to implementations the composition root
(:class:`~repro.runtime.builder.RuntimeBuilder`) instantiates.

The registry mirrors the shedding-policy registry
(:mod:`repro.shedding.policy`): implementations self-register under a
canonical name (plus optional aliases) via :func:`register_backend`, lookups
go through :func:`get_backend` / :func:`make_backend`, and unknown names
fail with the full catalogue.  Unlike shedding policies, backends differ in
*capability*: the tree engine implements only the greedy selection policy
and exposes no shedding surface.  Those limits are declared as
:class:`BackendCapabilities` flags, and the builder checks them generically
through :meth:`EvalBackend.require` — one error-message format for every
policy/shedding/obligation mismatch, instead of scattered ``ValueError``\\ s.

Backends that need an optional dependency (the ``vectorized`` backend needs
NumPy) register *conditionally*: when the import fails, the package marks
the name unavailable with a reason via :func:`mark_backend_unavailable`, so
``--engine-backend vectorized`` produces an actionable error and the
conformance suite can skip with the same message.

Only :mod:`repro.runtime` (the composition root) and this package may call
:func:`get_backend` / :func:`make_backend` — analysis rule A6 enforces it —
so which engine evaluates a query is decided in exactly one place.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

from repro.engine.engine import GREEDY
from repro.engine.interface import CostModel, MatchRecord, StrategyProtocol

if TYPE_CHECKING:
    from repro.events.event import Event
    from repro.nfa.automaton import Automaton
    from repro.sim.clock import VirtualClock

__all__ = [
    "BackendCapabilities",
    "BackendCapabilityError",
    "BackendListing",
    "BackendUnavailableError",
    "EvalBackend",
    "backend_names",
    "backend_unavailable_reason",
    "get_backend",
    "list_backends",
    "make_backend",
    "mark_backend_unavailable",
    "register_backend",
    "resolve_backend",
]


class BackendUnavailableError(ValueError):
    """A registered backend cannot run here (missing optional dependency)."""


class BackendCapabilityError(ValueError):
    """The configuration asks a backend for something it does not support."""


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can do; the builder checks these declaratively.

    ``policies``
        The selection policies (§2.1) the backend implements.
    ``shedding``
        Whether the backend exposes the load-shedding surface —
        ``extendable_runs`` / ``shed_lowest`` / ``iter_runs`` — required by
        any shedding policy and by the ``max_partial_matches`` run cap.
    ``obligations``
        Whether the backend keeps per-run :class:`~repro.nfa.run.Obligation`
        records; the run-shedding utility score reads them.
    ``exact_replay``
        Whether the backend promises *byte-identical* results to the
        ``reference`` backend — same match signatures, same
        :class:`~repro.engine.interface.EngineStats` counters, same virtual
        clock advances, same trace stream.  The conformance suite holds
        exact-replay backends to full equality and the others (``tree``) to
        match-set equivalence only.
    """

    policies: tuple[str, ...]
    shedding: bool
    obligations: bool
    exact_replay: bool

    def require(
        self,
        backend: str,
        *,
        policy: str | None = None,
        shedding: bool = False,
        obligations: bool = False,
    ) -> None:
        """Raise :class:`BackendCapabilityError` unless every need is met.

        All mismatches are reported in one message so a config asking for
        several unsupported things fails with the complete list.
        """
        missing: list[str] = []
        if policy is not None and policy not in self.policies:
            supported = ", ".join(self.policies)
            missing.append(f"selection policy {policy!r} (supported: {supported})")
        if shedding and not self.shedding:
            missing.append(
                "load shedding (no extendable_runs/shed_lowest surface)"
            )
        if obligations and not self.obligations:
            missing.append("run obligations (no per-run obligation records)")
        if missing:
            raise BackendCapabilityError(
                f"backend {backend!r} does not support " + "; nor ".join(missing)
            )


class EvalBackend(abc.ABC):
    """The narrow interface every evaluation backend implements.

    The dispatch loop (:func:`repro.runtime.dispatch.dispatch`) drives a
    backend exclusively through this surface:

    * :meth:`process_event` — one ``f_Q`` step, charging the cost model
      against the shared virtual clock and returning finished matches;
    * :meth:`flush` — drop remaining partial state at end of stream;
    * :attr:`stats` — an :class:`~repro.engine.interface.EngineStats`;
    * :attr:`active_runs` / :meth:`runs_per_state` — the live-partial-match
      surface the strategies' utility ticks read.

    Backends declaring ``capabilities.shedding`` additionally provide
    ``extendable_runs(event)``, ``shed_lowest(count, score, strategy,
    reason)``, and ``iter_runs()`` (see :class:`~repro.engine.engine.Engine`
    for the reference signatures) — the builder refuses shedding configs on
    backends without the flag, so the dispatch loop never probes for them.

    Concrete backends subclass an engine implementation *first* and this
    interface second (``class TreeBackend(TreeEngine, EvalBackend)``) so the
    engine's concrete methods win the MRO, then register with
    :func:`register_backend`, which fills the class-level metadata.
    """

    #: Canonical registry name; set by :func:`register_backend`.
    name: ClassVar[str] = ""
    #: Alternate names accepted by :func:`resolve_backend`.
    aliases: ClassVar[tuple[str, ...]] = ()
    #: Declared capability flags the builder checks.
    capabilities: ClassVar[BackendCapabilities]
    #: One-line description shown by ``list_backends()``.
    description: ClassVar[str] = ""

    @classmethod
    @abc.abstractmethod
    def build(
        cls,
        automaton: "Automaton",
        clock: "VirtualClock",
        *,
        cost_model: CostModel | None = None,
        policy: str = GREEDY,
        max_partial_matches: int | None = None,
    ) -> "EvalBackend":
        """Construct an instance from the uniform factory signature.

        Backends ignore arguments their capabilities exclude (the tree
        backend takes no policy), but the builder has already refused any
        config that *relies* on an ignored argument via :meth:`require`.
        """

    @abc.abstractmethod
    def process_event(self, event: "Event", strategy: StrategyProtocol) -> list[MatchRecord]:
        """Advance the evaluation by one input event (the ``f_Q`` step)."""

    @abc.abstractmethod
    def flush(self, strategy: StrategyProtocol) -> None:
        """Drop all remaining partial matches (end of stream)."""

    @property
    @abc.abstractmethod
    def active_runs(self) -> int:
        """Current number of live partial matches."""

    @abc.abstractmethod
    def runs_per_state(self) -> dict[int, int]:
        """Live partial matches per class (for #P_j monitoring)."""

    @classmethod
    def require(
        cls,
        *,
        policy: str | None = None,
        shedding: bool = False,
        obligations: bool = False,
    ) -> None:
        """Capability check under this backend's name (builder entry point)."""
        cls.capabilities.require(
            cls.name, policy=policy, shedding=shedding, obligations=obligations
        )


@dataclass(frozen=True)
class BackendListing:
    """One row of :func:`list_backends` — registry metadata, no classes."""

    name: str
    available: bool
    aliases: tuple[str, ...]
    capabilities: BackendCapabilities | None
    description: str
    unavailable_reason: str | None


_BACKENDS: dict[str, type[EvalBackend]] = {}
_ALIASES: dict[str, str] = {}
_UNAVAILABLE: dict[str, tuple[str, tuple[str, ...]]] = {}  # name -> (reason, aliases)


def _claim_names(name: str, aliases: tuple[str, ...]) -> None:
    for label in (name, *aliases):
        if label in _BACKENDS or label in _ALIASES or label in _UNAVAILABLE:
            raise ValueError(f"backend {label!r} is already registered")
    for alias in aliases:
        _ALIASES[alias] = name


def register_backend(
    name: str,
    *,
    aliases: tuple[str, ...] = (),
    capabilities: BackendCapabilities,
    description: str = "",
):
    """Class decorator: register an :class:`EvalBackend` implementation.

    Usage mirrors the rule registry of :mod:`repro.analysis`::

        @register_backend("tree", capabilities=BackendCapabilities(...))
        class TreeBackend(TreeEngine, EvalBackend): ...

    Duplicate names (canonical or alias, against any earlier registration)
    raise ``ValueError``.
    """

    def decorate(cls: type[EvalBackend]) -> type[EvalBackend]:
        if not issubclass(cls, EvalBackend):
            raise TypeError(f"{cls.__name__} does not implement EvalBackend")
        _claim_names(name, aliases)
        cls.name = name
        cls.aliases = tuple(aliases)
        cls.capabilities = capabilities
        cls.description = description
        _BACKENDS[name] = cls
        return cls

    return decorate


def mark_backend_unavailable(
    name: str, reason: str, *, aliases: tuple[str, ...] = ()
) -> None:
    """Record a backend that exists but cannot load here (and why).

    The name stays *known* — it appears in :func:`list_backends` and CLI
    choices — but resolving it raises :class:`BackendUnavailableError`
    carrying ``reason``, and the conformance suite turns the same reason
    into a pytest skip.
    """
    _claim_names(name, aliases)
    _UNAVAILABLE[name] = (reason, tuple(aliases))


def backend_names(include_unavailable: bool = True) -> list[str]:
    """Canonical backend names, sorted; optionally only the loadable ones."""
    names = list(_BACKENDS)
    if include_unavailable:
        names.extend(_UNAVAILABLE)
    return sorted(names)


def resolve_backend(name: str) -> str:
    """The canonical name for ``name`` (aliases resolved, availability checked).

    Raises ``ValueError`` (``unknown backend ...``) for names never
    registered and :class:`BackendUnavailableError` for registered-but-
    unloadable ones.
    """
    canonical = _ALIASES.get(name, name)
    if canonical in _BACKENDS:
        return canonical
    if canonical in _UNAVAILABLE:
        reason, _ = _UNAVAILABLE[canonical]
        raise BackendUnavailableError(f"backend {canonical!r} is unavailable: {reason}")
    catalogue = ", ".join(backend_names())
    raise ValueError(f"unknown backend {name!r}; registered backends: {catalogue}")


def backend_unavailable_reason(name: str) -> str | None:
    """Why ``name`` cannot load here, or ``None`` when it can.

    Unknown names raise ``ValueError`` like :func:`resolve_backend` — a
    typo must not read as "available".
    """
    canonical = _ALIASES.get(name, name)
    if canonical in _BACKENDS:
        return None
    if canonical in _UNAVAILABLE:
        return _UNAVAILABLE[canonical][0]
    catalogue = ", ".join(backend_names())
    raise ValueError(f"unknown backend {name!r}; registered backends: {catalogue}")


def get_backend(name: str) -> type[EvalBackend]:
    """The backend class for ``name`` (composition-root entry point, A6)."""
    return _BACKENDS[resolve_backend(name)]


def make_backend(
    name: str,
    automaton: "Automaton",
    clock: "VirtualClock",
    *,
    cost_model: CostModel | None = None,
    policy: str = GREEDY,
    max_partial_matches: int | None = None,
) -> EvalBackend:
    """Construct the named backend (composition-root entry point, A6)."""
    return get_backend(name).build(
        automaton,
        clock,
        cost_model=cost_model,
        policy=policy,
        max_partial_matches=max_partial_matches,
    )


def list_backends() -> list[BackendListing]:
    """Every known backend — loadable or not — as metadata rows, sorted."""
    rows = [
        BackendListing(
            name=cls.name,
            available=True,
            aliases=cls.aliases,
            capabilities=cls.capabilities,
            description=cls.description,
            unavailable_reason=None,
        )
        for cls in _BACKENDS.values()
    ]
    rows.extend(
        BackendListing(
            name=name,
            available=False,
            aliases=aliases,
            capabilities=None,
            description="",
            unavailable_reason=reason,
        )
        for name, (reason, aliases) in _UNAVAILABLE.items()
    )
    rows.sort(key=lambda row: row.name)
    return rows

"""The ``vectorized`` backend: NumPy batch evaluation of local guards.

The profile of the reference engine on q1 is dominated by the local guard
phase — tens of thousands of tiny ``Comparison.evaluate`` calls plus a
fresh ``dict(run.env)`` copy per guard attempt.  This backend exploits a
simple fact: for one input event, every extendable run in a partition
evaluates the *same* local predicates against the *same* input event, with
only the bound-event attributes varying per run.  That is a columnar
computation, so the backend gathers each predicate operand into a NumPy
array across the partition's runs and decides all guards in a handful of
ufunc calls (the *plan* phase), then replays the engine's per-run protocol
consuming the precomputed verdicts (the *apply* phase).

Byte-identity with ``reference`` is a hard requirement, not an aspiration:

* The plan phase is *pure* — local predicates cannot touch remote data
  (the resolver raises), run environments are immutable, and window
  admission is a pure function — so precomputing verdicts cannot observe
  or disturb engine state.
* The apply phase replays the *identical* sequence of individual
  ``clock.advance`` calls and counter increments as the scalar loop —
  including charging only the predicates up to the first failure — so
  virtual time (float accumulation order and all), ``EngineStats``, and
  strategy observation order reproduce exactly.
* Any operand the gather cannot prove safe to vectorize (non-primitive or
  type-mixed attribute columns, ``Membership``/``FunctionPredicate``
  guards, operand type errors) falls back to evaluating *that predicate*
  scalar-per-run inside the plan, with identical results.

The remote phase, obligations, shedding, expiry, and selection-policy
mechanics are inherited from :class:`~repro.engine.engine.Engine`
unchanged.  The speedup is real nonetheless: failing guards — the vast
majority under partition-correlated workloads — never pay the per-run
``dict`` copy, and passing ones pay it once in either phase.

This module is the *only* place in the tree allowed to import NumPy
(analysis rule A6); it registers conditionally from
:mod:`repro.backends.__init__` so the rest of the system degrades to a
named unavailability reason instead of an ``ImportError``.
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING

import numpy as np

from repro.backends.base import BackendCapabilities, EvalBackend, register_backend
from repro.engine.engine import GREEDY, NON_GREEDY, Engine, _no_remote
from repro.engine.interface import CostModel, MatchRecord, StrategyProtocol
from repro.nfa.run import Obligation, Run
from repro.query.predicates import Attr, Comparison, Const, Predicate

if TYPE_CHECKING:
    from repro.events.event import Event
    from repro.nfa.automaton import Automaton, Transition
    from repro.sim.clock import VirtualClock

__all__ = ["VectorizedBackend"]

#: Comparison operators with element-wise NumPy semantics matching Python's.
_OPS = {
    "=": operator.eq,
    "==": operator.eq,
    "<>": operator.ne,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Payload types whose NumPy comparison semantics provably match Python's
#: (homogeneous columns only; mixed columns fall back to scalar).
_PRIMITIVES = (bool, int, float, str)


@register_backend(
    "vectorized",
    capabilities=BackendCapabilities(
        policies=(GREEDY, NON_GREEDY),
        shedding=True,
        obligations=True,
        exact_replay=True,
    ),
    description="reference semantics with NumPy-batched local guard evaluation",
)
class VectorizedBackend(Engine, EvalBackend):
    """:class:`Engine` with a columnar local-guard plan per partition step."""

    #: Partitions smaller than this stay on the scalar path: below it the
    #: array set-up costs more than the per-run loop it replaces.
    MIN_BATCH = 8

    def __init__(
        self,
        automaton: "Automaton",
        clock: "VirtualClock",
        cost_model: CostModel | None = None,
        policy: str = GREEDY,
        max_partial_matches: int | None = None,
        expiry_interval: int = 16,
    ) -> None:
        super().__init__(
            automaton,
            clock,
            cost_model=cost_model,
            policy=policy,
            max_partial_matches=max_partial_matches,
            expiry_interval=expiry_interval,
        )
        #: Wall-clock-free instrumentation of the batching machinery itself;
        #: deliberately *not* part of ``EngineStats`` (whose dict must stay
        #: byte-identical to the reference backend's).
        self.vector_stats = {
            "batches": 0,
            "vector_predicate_evals": 0,
            "scalar_fallback_evals": 0,
        }
        # (run_id, id(transition)) -> (local_ok, n_evaluated, env | None),
        # valid for the duration of one _step_partition call.
        self._plan: dict[tuple[int, int], tuple[bool, int, dict | None]] = {}

    @classmethod
    def build(
        cls,
        automaton: "Automaton",
        clock: "VirtualClock",
        *,
        cost_model: CostModel | None = None,
        policy: str = GREEDY,
        max_partial_matches: int | None = None,
    ) -> "VectorizedBackend":
        return cls(
            automaton,
            clock,
            cost_model=cost_model,
            policy=policy,
            max_partial_matches=max_partial_matches,
        )

    # -- plan phase ----------------------------------------------------------
    def _step_partition(
        self,
        runs: list[Run],
        transitions: list["Transition"],
        event: "Event",
        strategy: StrategyProtocol,
        new_runs: list[Run],
        matches: list[MatchRecord],
    ) -> list[Run]:
        if len(runs) >= self.MIN_BATCH:
            self._plan_partition(runs, transitions, event)
        try:
            return super()._step_partition(
                runs, transitions, event, strategy, new_runs, matches
            )
        finally:
            if self._plan:
                self._plan.clear()

    def _plan_partition(
        self, runs: list[Run], transitions: list["Transition"], event: "Event"
    ) -> None:
        """Precompute local-guard verdicts for every (run, transition) pair.

        Only runs the window still admits participate — the scalar loop
        drops the others before ever reaching their guards, so planning
        them would be wasted work (never *wrong* work: verdicts are looked
        up by run, and a dropped run's entry is simply never read).
        """
        window = self.automaton.window
        candidates = [
            run
            for run in runs
            if window.admits(run.first_t, run.first_seq, event.t, event.seq)
        ]
        if len(candidates) < self.MIN_BATCH:
            return
        for transition in transitions:
            if transition.local_predicates:
                self._plan_transition(candidates, transition, event)

    def _plan_transition(
        self, candidates: list[Run], transition: "Transition", event: "Event"
    ) -> None:
        """Full-width plan: every predicate evaluated as one column operation.

        ``alive`` tracks which runs still pass (the conjunction so far) and
        ``counts`` how many predicates each run was charged for — a run is
        charged exactly for the predicates up to and including its first
        failure, replicating the scalar short-circuit.  Vectorizable
        predicates are computed over the *whole* batch (cheaper than masked
        fancy-indexing; evaluating a pure predicate for an already-failed
        run is wasted-but-harmless work and is never charged), while
        fallback predicates evaluate scalar under the alive mask only, so
        any exception they raise appears on exactly the runs the reference
        engine would have touched.
        """
        n = len(candidates)
        alive: "np.ndarray | None" = None  # None = all runs still passing
        counts = np.zeros(n, dtype=np.int64)
        envs: list[dict | None] = [None] * n
        for predicate in transition.local_predicates:
            if alive is None:
                counts += 1
            else:
                if not alive.any():
                    break
                counts += alive
            verdicts = self._eval_vector(
                candidates, alive, predicate, transition, event
            )
            if verdicts is None:
                verdicts = self._eval_scalar(
                    candidates, alive, predicate, transition, event, envs
                )
            alive = verdicts if alive is None else alive & verdicts
        self.vector_stats["batches"] += 1
        transition_key = id(transition)
        ok_list = [True] * n if alive is None else alive.tolist()
        count_list = counts.tolist()
        plan = self._plan
        for i, run in enumerate(candidates):
            plan[(run.run_id, transition_key)] = (ok_list[i], count_list[i], envs[i])

    def _eval_vector(
        self,
        candidates: list[Run],
        alive,
        predicate: Predicate,
        transition: "Transition",
        event: "Event",
    ):
        """Full-width verdicts for ``predicate``, or None when unprovable."""
        if type(predicate) is not Comparison:
            return None
        fn = _OPS.get(predicate.op)
        if fn is None:
            return None
        left = self._gather(predicate.left, candidates, transition.binding, event)
        if left is None:
            return None
        right = self._gather(predicate.right, candidates, transition.binding, event)
        if right is None:
            return None
        try:
            result = fn(left, right)
        except TypeError:
            # e.g. ordering a numeric column against a string constant:
            # Python raises per-run, so let the scalar path do exactly that.
            return None
        n = len(candidates)
        if isinstance(result, np.ndarray):
            if result.shape != (n,):
                return None
            verdicts = result.astype(bool, copy=False)
        else:
            # Both operands were scalars (constant vs current-event
            # attribute): one verdict covers the whole batch.
            verdicts = np.full(n, bool(result), dtype=bool)
        self.vector_stats["vector_predicate_evals"] += (
            n if alive is None else int(alive.sum())
        )
        return verdicts

    def _gather(self, expr, candidates: list[Run], binding: str, event: "Event"):
        """An operand as a batch-aligned column, a scalar, or None (give up)."""
        if type(expr) is Const:
            value = expr.value
            return value if isinstance(value, _PRIMITIVES) else None
        if type(expr) is not Attr:
            return None
        attr = expr.attr
        if expr.binding == binding:
            # The current input event: one scalar shared by every run.
            try:
                value = event[attr]
            except Exception:
                return None
            return value if isinstance(value, _PRIMITIVES) else None
        name = expr.binding
        try:
            values = [run.env[name].attrs[attr] for run in candidates]
        except Exception:
            # Unbound binding / missing attribute: the scalar path raises a
            # per-run diagnostic; reproduce it there.
            return None
        try:
            column = np.asarray(values)
        except Exception:
            return None
        if column.shape != (len(candidates),):
            return None
        kind = column.dtype.kind
        if kind in "bif":
            # A numeric dtype proves every element was a Python
            # bool/int/float (anything else would have produced a U or
            # object column), and mixed-numeric comparisons are value-based
            # in NumPy exactly as in Python.
            return column
        if kind == "U" and all(type(value) is str for value in values):
            return column
        # Anything else (object columns, or a U column hiding coerced
        # non-strings like ``[1, "a"]``) could silently change comparison
        # semantics — let the scalar path handle it.
        return None

    def _eval_scalar(
        self,
        candidates: list[Run],
        alive,
        predicate: Predicate,
        transition: "Transition",
        event: "Event",
        envs: list,
    ):
        """Per-run fallback inside the plan: identical results, no batching.

        Evaluates only the still-alive runs (exactly the runs the scalar
        engine would reach).  The environment dicts it builds are memoised
        in ``envs`` so the apply phase (and later fallback predicates of
        the same guard) reuse them — matching the scalar engine, which
        builds one env per guard attempt.
        """
        binding = transition.binding
        n = len(candidates)
        out = np.zeros(n, dtype=bool)
        index_iter = range(n) if alive is None else np.flatnonzero(alive)
        evaluated = 0
        for raw in index_iter:
            i = int(raw)
            env = envs[i]
            if env is None:
                env = dict(candidates[i].env)
                env[binding] = event
                envs[i] = env
            out[i] = predicate.evaluate(env, _no_remote)
            evaluated += 1
        self.vector_stats["scalar_fallback_evals"] += evaluated
        return out

    # -- apply phase ---------------------------------------------------------
    def _try_transition(
        self,
        run: Run,
        transition: "Transition",
        event: "Event",
        strategy: StrategyProtocol,
    ) -> tuple[Run, Obligation | None] | None:
        plan = self._plan.get((run.run_id, id(transition)))
        if plan is None:
            return super()._try_transition(run, transition, event, strategy)
        local_ok, n_evaluated, env = plan
        # Replay the scalar loop's exact charge sequence: one guard charge,
        # then each predicate actually evaluated (up to the first failure),
        # as individual advances — float accumulation order is part of the
        # byte-identity contract.
        clock = self.clock
        stats = self.stats
        clock.advance(self.cost_model.per_guard_cost)
        stats.guard_evaluations += 1
        predicates = transition.local_predicates
        for i in range(n_evaluated):
            clock.advance(predicates[i].eval_cost)
        stats.predicate_evaluations += n_evaluated
        strategy.observe_guard(transition, local_ok)
        if not local_ok:
            return None
        if env is None:
            env = dict(run.env)
            env[transition.binding] = event
        return self._resolve_remote(run, transition, event, env, strategy)

"""Bursty/skewed arrivals: the overload scenario for the shedding plane.

The synthetic Q1 scenario with a phase-modulated arrival process: calm
phases at the §7.1 mean inter-arrival gap alternate with bursts whose gap
is divided by ``overload_factor`` (~5x the sustainable rate by default) and
whose partition ids concentrate on a small hot set.  Both distortions
compound: the burst delivers events faster than the engine's per-guard cost
budget can absorb, while the skew multiplies the live partial matches per
hot partition — exactly the regime where queueing lag (virtual clock past
the event's arrival time) grows without bound unless something is dropped.

The query, remote tables and latency model are Q1's own, so recall against
the unshedded run is directly comparable: ``benchmarks/bench_shedding.py``
replays this stream under every shedding policy and reports recall vs.
detection latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.event import Event
from repro.events.stream import Stream
from repro.remote.transport import UniformLatency
from repro.sim.rng import make_rng
from repro.workloads.base import Workload
from repro.workloads.synthetic import EVENT_TYPES, SyntheticConfig, make_store, q1_query

__all__ = ["BurstyConfig", "make_bursty_stream", "bursty_workload"]


@dataclass(frozen=True)
class BurstyConfig:
    """Knobs of the overload scenario."""

    n_events: int = 8_000
    #: Mean inter-arrival gap during calm phases (the §7.1 value).
    calm_gap_us: float = 25.0
    #: Burst arrival rate as a multiple of the calm rate (gap divided by this).
    overload_factor: float = 5.0
    #: Phase lengths, in events: ``calm_events`` calm, then ``burst_events``
    #: bursting, repeating.
    calm_events: int = 400
    burst_events: int = 400
    id_domain: int = 20
    #: During bursts, ids concentrate on the first ``hot_ids`` ids with
    #: probability ``hot_fraction`` (partition skew multiplies run counts).
    hot_ids: int = 5
    hot_fraction: float = 0.7
    key_domain: int = 100_000
    remote_density: float = 0.35
    window_events: int = 250
    latency_low_us: float = 10.0
    latency_high_us: float = 100.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_events < 0:
            raise ValueError("n_events must be non-negative")
        if self.calm_gap_us <= 0:
            raise ValueError("calm_gap_us must be positive")
        if self.overload_factor < 1.0:
            raise ValueError(f"overload_factor must be >= 1: {self.overload_factor}")
        if self.calm_events < 1 or self.burst_events < 1:
            raise ValueError("phase lengths must be >= 1 event")
        if not 1 <= self.hot_ids <= self.id_domain:
            raise ValueError(f"hot_ids must be in [1, id_domain]: {self.hot_ids}")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in [0, 1]: {self.hot_fraction}")

    def synthetic(self) -> SyntheticConfig:
        """The equivalent calm-only scenario (query/store/capacity source)."""
        return SyntheticConfig(
            n_events=self.n_events,
            mean_gap_us=self.calm_gap_us,
            id_domain=self.id_domain,
            key_domain=self.key_domain,
            remote_density=self.remote_density,
            window_events=self.window_events,
            seed=self.seed,
        )


def make_bursty_stream(config: BurstyConfig) -> Stream:
    """Phase-modulated Poisson arrivals with hot-partition skew in bursts."""
    rng = make_rng(config.seed)
    burst_gap = config.calm_gap_us / config.overload_factor
    cycle = config.calm_events + config.burst_events
    events = []
    t = 0.0
    for index in range(config.n_events):
        bursting = index % cycle >= config.calm_events
        gap = burst_gap if bursting else config.calm_gap_us
        t += rng.expovariate(1.0 / gap)
        if bursting and rng.random() < config.hot_fraction:
            event_id = rng.randint(1, config.hot_ids)
        else:
            event_id = rng.randint(1, config.id_domain)
        events.append(
            Event(
                t,
                {
                    "type": rng.choice(EVENT_TYPES),
                    "id": event_id,
                    "v1": rng.randint(1, config.key_domain),
                    "v2": rng.randint(1, config.key_domain),
                },
            )
        )
    return Stream(events, validate=False)


def bursty_workload(config: BurstyConfig | None = None) -> Workload:
    """Q1 under phase-modulated overload (the shedding benchmark scenario)."""
    config = config if config is not None else BurstyConfig()
    synthetic = config.synthetic()
    return Workload(
        name="bursty-q1",
        query=q1_query(synthetic),
        store=make_store(synthetic),
        stream=make_bursty_stream(config),
        latency_model=UniformLatency(config.latency_low_us, config.latency_high_us),
        notes={
            "cache_capacity": max(config.key_domain // 10, 1),
            "config": config,
            "overload_factor": config.overload_factor,
        },
    )

"""Workload generators: synthetic Q1/Q2, bursty overload, fraud, bushfire, cluster."""

from repro.workloads.base import PseudoRandomSet, Workload
from repro.workloads.bursty import BurstyConfig, bursty_workload, make_bursty_stream
from repro.workloads.bushfire import BushfireConfig, bushfire_query, bushfire_workload
from repro.workloads.cluster import ClusterConfig, cluster_query, cluster_workload
from repro.workloads.fraud import FraudConfig, fraud_query, fraud_workload
from repro.workloads.synthetic import (
    SyntheticConfig,
    q1_workload,
    q2_workload,
)

__all__ = [
    "Workload",
    "PseudoRandomSet",
    "SyntheticConfig",
    "q1_workload",
    "q2_workload",
    "BurstyConfig",
    "bursty_workload",
    "make_bursty_stream",
    "FraudConfig",
    "fraud_query",
    "fraud_workload",
    "BushfireConfig",
    "bushfire_query",
    "bushfire_workload",
    "ClusterConfig",
    "cluster_query",
    "cluster_workload",
]

"""Workload generators: synthetic Q1/Q2, fraud, bushfire, cluster monitoring."""

from repro.workloads.base import PseudoRandomSet, Workload
from repro.workloads.bushfire import BushfireConfig, bushfire_query, bushfire_workload
from repro.workloads.cluster import ClusterConfig, cluster_query, cluster_workload
from repro.workloads.fraud import FraudConfig, fraud_query, fraud_workload
from repro.workloads.synthetic import (
    SyntheticConfig,
    q1_workload,
    q2_workload,
)

__all__ = [
    "Workload",
    "PseudoRandomSet",
    "SyntheticConfig",
    "q1_workload",
    "q2_workload",
    "FraudConfig",
    "fraud_query",
    "fraud_workload",
    "BushfireConfig",
    "bushfire_query",
    "bushfire_workload",
    "ClusterConfig",
    "cluster_query",
    "cluster_workload",
]

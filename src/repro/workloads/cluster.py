"""The cluster-monitoring case study (§7.4, Fig. 10b).

The paper replays Google cluster traces and detects tasks that are
submitted, scheduled and evicted, rescheduled and evicted again in a
*different region*, and finally rescheduled in yet another region where they
fail.  Region information lives in a remote database keyed by machine id.

The trace itself is simulated (DESIGN.md): task lifecycles are generated as
interleaved SUBMIT / SCHEDULE / EVICT / FAIL events with realistic
progressions, a configurable fraction of tasks following the problematic
three-region path.  Transmission latency is U(1 ms, 10 ms) as in the paper.

The region predicates mix both remote-reference regimes: comparisons between
``REMOTE<region>[cN.machine]`` pairs are keyed partly by earlier bindings
(prefetchable with lookahead) and partly by the current input event (only
lazy evaluation applies) — the same mix that makes Hybrid shine in Fig. 10b.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.event import Event
from repro.events.stream import Stream
from repro.query.ast import Query
from repro.query.parser import parse_query
from repro.remote.store import RemoteStore
from repro.remote.transport import UniformLatency
from repro.sim.rng import make_rng, spawn, stable_hash
from repro.workloads.base import Workload

__all__ = ["ClusterConfig", "cluster_query", "cluster_workload"]


@dataclass(frozen=True)
class ClusterConfig:
    """Scenario knobs for the simulated cluster trace."""

    n_tasks: int = 1_200
    mean_gap_us: float = 8_000.0
    n_machines: int = 500
    n_regions: int = 8
    problematic_fraction: float = 0.35
    window_us: float = 10_000_000.0  # 10 virtual seconds per task lifecycle
    latency_low_us: float = 1_000.0
    latency_high_us: float = 10_000.0
    seed: int = 42


def cluster_query(config: ClusterConfig) -> Query:
    """Submit -> schedule/evict twice across regions -> reschedule -> fail."""
    text = f"""
    SEQ(S s, C c1, E e1, C c2, E e2, C c3, F f)
    WHERE SAME[task]
    AND REMOTE<region>[c1.machine] <> REMOTE<region>[c2.machine]
    AND REMOTE<region>[c2.machine] <> REMOTE<region>[c3.machine]
    WITHIN {config.window_us} us
    """
    return parse_query(text, name="cluster")


def cluster_store(config: ClusterConfig) -> RemoteStore:
    """The machine -> region mapping as a virtual remote source."""
    store = RemoteStore()
    seed = config.seed
    n_regions = config.n_regions
    store.register_source("region", lambda machine: stable_hash(seed, machine) % n_regions)
    return store


def _region_of(machine: int, config: ClusterConfig) -> int:
    return stable_hash(config.seed, machine) % config.n_regions


def _machine_in_region(region: int, config: ClusterConfig, rng) -> int:
    """A random machine whose region is ``region`` (rejection sampling)."""
    while True:
        machine = rng.randrange(config.n_machines)
        if _region_of(machine, config) == region:
            return machine


def _machine_not_in_region(region: int, config: ClusterConfig, rng) -> int:
    while True:
        machine = rng.randrange(config.n_machines)
        if _region_of(machine, config) != region:
            return machine


def cluster_stream(config: ClusterConfig) -> Stream:
    """Interleaved task lifecycles; a fraction follows the failure path."""
    rng = make_rng(config.seed)
    payload_rng = spawn(rng, "payload")
    lifecycle_events: list[tuple[float, dict]] = []
    t = 0.0
    for task in range(config.n_tasks):
        t += rng.expovariate(1.0 / config.mean_gap_us)
        problematic = payload_rng.random() < config.problematic_fraction
        machine1 = payload_rng.randrange(config.n_machines)
        region1 = _region_of(machine1, config)
        steps: list[tuple[str, int]] = [("S", machine1), ("C", machine1), ("E", machine1)]
        if problematic:
            machine2 = _machine_not_in_region(region1, config, payload_rng)
            machine3 = _machine_not_in_region(_region_of(machine2, config), config, payload_rng)
            steps += [("C", machine2), ("E", machine2), ("C", machine3), ("F", machine3)]
        else:
            # Benign churn: several same-region reschedule/evict cycles, some
            # ending in a failure on the same machine.  These lifecycles are
            # what BL3 drowns in — ignoring the region predicates keeps every
            # (C, E, C, E, C) combination alive as a partial match, while
            # eager evaluation prunes them at the second schedule.
            cycles = payload_rng.randint(2, 4)
            for _ in range(cycles):
                machine2 = _machine_in_region(region1, config, payload_rng)
                steps += [("C", machine2), ("E", machine2)]
            machine3 = _machine_in_region(region1, config, payload_rng)
            steps += [("C", machine3)]
            if payload_rng.random() < 0.5:
                steps += [("F", machine3)]
        step_t = t
        for event_type, machine in steps:
            step_t += payload_rng.expovariate(1.0 / (config.window_us / 10.0))
            lifecycle_events.append(
                (step_t, {"type": event_type, "task": task, "machine": machine})
            )
    lifecycle_events.sort(key=lambda item: item[0])
    return Stream(
        [Event(timestamp, payload) for timestamp, payload in lifecycle_events],
        validate=False,
    )


def cluster_workload(config: ClusterConfig | None = None) -> Workload:
    """The complete cluster-monitoring scenario (Fig. 10b)."""
    config = config if config is not None else ClusterConfig()
    return Workload(
        name="cluster",
        query=cluster_query(config),
        store=cluster_store(config),
        stream=cluster_stream(config),
        latency_model=UniformLatency(config.latency_low_us, config.latency_high_us),
        notes={"cache_capacity": max(config.n_machines // 2, 8), "config": config},
    )

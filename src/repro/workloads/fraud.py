"""The credit-card fraud scenario of the paper's introduction (Listing 1).

Events are transactions (``T``), denials (``D``), and limit changes (``L``)
correlated by credit card.  Remote data covers the known locations of card
usage per user, card limits per organization, and the hierarchically
organised set of pre-authorized clients — fetchable per credit card, per
user, or for the whole organization, which exercises the part-of relation
``rho`` end to end (container fetches serve child lookups, and utility
propagates from parts to containers).

This workload backs the ``fraud_detection`` example and the hierarchy
integration tests; it is not part of the paper's measured evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.event import Event
from repro.events.stream import Stream
from repro.query.ast import Query
from repro.query.parser import parse_query
from repro.remote.store import RemoteStore
from repro.remote.transport import UniformLatency
from repro.sim.rng import make_rng, spawn, stable_hash
from repro.workloads.base import PseudoRandomSet, Workload

__all__ = ["FraudConfig", "fraud_query", "fraud_workload"]


@dataclass(frozen=True)
class FraudConfig:
    """Scenario knobs: population sizes and event mix."""

    n_events: int = 6_000
    mean_gap_us: float = 2_000.0  # 2 ms between financial events
    n_orgs: int = 5
    users_per_org: int = 40
    cards_per_user: int = 2
    n_locations: int = 50
    known_location_density: float = 0.6
    preauth_density: float = 0.5
    window_us: float = 300_000_000.0  # the query's 5 minutes
    high_volume: int = 10_000
    very_high_volume: int = 50_000
    latency_low_us: float = 200.0
    latency_high_us: float = 2_000.0
    seed: int = 42


def fraud_query() -> Query:
    """Listing 1 (sources named for the three remote tables).

    One detail follows the paper's evaluation model rather than the listing:
    the pre-authorization lookup is keyed by ``t1.org`` instead of
    ``t3.org``.  Under ``SAME[cc]`` every event of a match belongs to the
    same card and therefore the same organization, so the two keys are
    identical — and the paper's own Fig. 2 discussion treats the reference
    as ``r[q1.org]``, which is what makes it *prefetchable* once the first
    transaction is seen.
    """
    text = """
    SEQ(T t1, (SEQ(D d, T t2) OR SEQ(L l, T t3)))
    WHERE SAME[cc] AND t1.vol > 10k AND t2.vol > 10k
    AND t1.loc <> t2.loc AND (t2.loc NOT IN REMOTE<locations>[t1.user])
    AND l.limit > REMOTE<limits>[t1.org]
    AND t3.vol > 50k AND (t3.ben NOT IN REMOTE<preauth>[t1.org])
    WITHIN 5min
    """
    return parse_query(text, name="fraud")


def fraud_store(config: FraudConfig) -> RemoteStore:
    """Remote tables, with pre-authorized clients organised hierarchically."""
    store = RemoteStore()
    seed = config.seed

    # Known locations per user: a virtual set per user id.
    store.register_source(
        "locations",
        lambda user: PseudoRandomSet(seed + 1, user, config.known_location_density),
    )
    # Maximum card limit per organization.
    store.register_source("limits", lambda org: 5_000 + (stable_hash(seed, org) % 20_000))

    # Pre-authorized clients: org containers holding per-user parts holding
    # per-card parts (sizes add up, fetching the org serves every card).
    for org in range(config.n_orgs):
        org_element = store.put(
            "preauth", ("org", org), PseudoRandomSet(seed + 2, org, config.preauth_density), size=0
        )
        for user_slot in range(config.users_per_org):
            user = org * config.users_per_org + user_slot
            user_element = store.put(
                "preauth",
                ("user", user),
                PseudoRandomSet(seed + 2, org, config.preauth_density),
                size=0,
                parent=org_element,
            )
            for card_slot in range(config.cards_per_user):
                card = user * config.cards_per_user + card_slot
                store.put(
                    "preauth",
                    card,
                    PseudoRandomSet(seed + 2, org, config.preauth_density),
                    size=1,
                    parent=user_element,
                )
    return store


def fraud_stream(config: FraudConfig) -> Stream:
    """Transactions, denials, and limit changes over the card population."""
    rng = make_rng(config.seed)
    payload_rng = spawn(rng, "payload")
    n_users = config.n_orgs * config.users_per_org
    n_cards = n_users * config.cards_per_user
    events = []
    t = 0.0
    for _ in range(config.n_events):
        t += rng.expovariate(1.0 / config.mean_gap_us)
        card = payload_rng.randrange(n_cards)
        user = card // config.cards_per_user
        org = user // config.users_per_org
        kind = payload_rng.random()
        base = {"cc": card, "user": user, "org": ("org", org)}
        if kind < 0.70:
            base.update(
                type="T",
                vol=payload_rng.randint(100, 80_000),
                loc=payload_rng.randrange(config.n_locations),
                ben=payload_rng.randrange(n_users),
                limit=0,
            )
        elif kind < 0.85:
            base.update(type="D", vol=0, loc=payload_rng.randrange(config.n_locations), ben=0, limit=0)
        else:
            base.update(type="L", vol=0, loc=0, ben=0, limit=payload_rng.randint(1_000, 40_000))
        events.append(Event(t, base))
    return Stream(events, validate=False)


def fraud_workload(config: FraudConfig | None = None) -> Workload:
    """The complete fraud-detection scenario."""
    config = config if config is not None else FraudConfig()
    return Workload(
        name="fraud",
        query=fraud_query(),
        store=fraud_store(config),
        stream=fraud_stream(config),
        latency_model=UniformLatency(config.latency_low_us, config.latency_high_us),
        notes={"cache_capacity": 256, "config": config},
    )

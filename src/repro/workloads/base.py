"""Common workload plumbing shared by the scenario generators."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.events.stream import Stream
from repro.sim.rng import stable_hash
from repro.query.ast import Query
from repro.remote.store import RemoteStore
from repro.remote.transport import LatencyModel

__all__ = ["Workload", "PseudoRandomSet"]


@dataclass
class Workload:
    """One ready-to-run scenario: query, remote data, stream, latencies."""

    name: str
    query: Query
    store: RemoteStore
    stream: Stream
    latency_model: LatencyModel
    notes: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"Workload({self.name!r}, {len(self.stream)} events, "
            f"query={self.query.name!r})"
        )


class PseudoRandomSet:
    """A deterministic virtual set with a fixed membership probability.

    Stands in for large remote set-valued data elements (known locations per
    user, pre-authorized clients per organization, ...) without materialising
    millions of members: ``x in s`` is a pure function of ``(seed, key, x)``
    that holds with probability ``density``.  This makes remote-predicate
    selectivity an explicit workload knob, which the paper's (unpublished)
    query tables controlled implicitly.
    """

    __slots__ = ("seed", "key", "density")

    _SPACE = 2**31

    def __init__(self, seed: int, key, density: float) -> None:
        if not 0.0 <= density <= 1.0:
            raise ValueError(f"density must be in [0, 1]: {density}")
        self.seed = seed
        self.key = key
        self.density = density

    def __contains__(self, item) -> bool:
        bucket = stable_hash(self.seed, self.key, item) % self._SPACE
        return bucket < self.density * self._SPACE

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PseudoRandomSet)
            and (self.seed, self.key, self.density) == (other.seed, other.key, other.density)
        )

    def __hash__(self) -> int:
        return hash((self.seed, self.key, self.density))

    def __repr__(self) -> str:
        return f"PseudoRandomSet(key={self.key!r}, density={self.density})"

"""The bushfire-detection case study (§7.4, Fig. 10a).

The paper replays GOES-16 satellite data: a query detects the repeated
occurrence of a specific radiation pattern for a geographical area during
daytime, validating the signature against ground-based temperature and
humidity sensors reached over the network.  The proprietary satellite feed
is simulated (see DESIGN.md): per-cell fire radiative power readings with
a configurable fraction of developing hot spots, plus background readings.

Characteristics carried over from the paper's discussion:

* remote fetches are *slow* — transmission latency U(1 ms, 10 ms);
* predicates are *compute-intensive* — the spatial-overlap check of
  consecutive readings is modelled as a
  :class:`~repro.query.predicates.FunctionPredicate` with a multi-
  microsecond evaluation cost;
* the window is large, so many partial matches coexist.

The query is built through the AST API rather than the textual language —
partly because the overlap predicate is a function, partly to exercise the
programmatic construction path of the public API.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.event import Event
from repro.events.stream import Stream
from repro.query.ast import EventAtom, Query, SeqPattern, Window
from repro.query.predicates import (
    Attr,
    Comparison,
    FunctionPredicate,
    RemoteRef,
    SameAttribute,
)
from repro.remote.store import RemoteStore
from repro.remote.transport import UniformLatency
from repro.sim.rng import make_rng, spawn, stable_hash
from repro.workloads.base import Workload

__all__ = ["BushfireConfig", "bushfire_query", "bushfire_workload", "areas_overlap"]


@dataclass(frozen=True)
class BushfireConfig:
    """Scenario knobs for the simulated satellite/sensor feeds."""

    n_events: int = 8_000
    mean_gap_us: float = 4_000.0  # readings arrive every ~4 ms
    n_cells: int = 50
    hot_cell_fraction: float = 0.15
    radiation_threshold: float = 318.0  # Kelvin-ish brightness temperature
    window_us: float = 800_000.0  # 0.8 virtual seconds of readings
    sensor_refresh_us: float = 800_000.0  # ground sensors report new values
    overlap_cost_us: float = 4.0  # the compute-intensive spatial predicate
    latency_low_us: float = 1_000.0
    latency_high_us: float = 10_000.0
    seed: int = 42


def areas_overlap(area_a: tuple, area_b: tuple) -> bool:
    """Axis-aligned bounding-box overlap of two scan footprints.

    The real system intersects geographic polygons; the bounding-box check
    keeps the same shape of computation (and its cost is modelled explicitly
    via ``eval_cost``).
    """
    ax1, ay1, ax2, ay2 = area_a
    bx1, by1, bx2, by2 = area_b
    return ax1 <= bx2 and bx1 <= ax2 and ay1 <= by2 and by1 <= ay2


def bushfire_query(config: BushfireConfig) -> Query:
    """Three consecutive high-radiation readings of one cell, remotely validated."""
    pattern = SeqPattern(
        [EventAtom("F", "r1"), EventAtom("F", "r2"), EventAtom("F", "r3")]
    )
    threshold = config.radiation_threshold
    conditions = [
        SameAttribute("cell"),
        Comparison(">", Attr("r1", "rad"), _const(threshold)),
        Comparison(">", Attr("r2", "rad"), _const(threshold)),
        Comparison(">", Attr("r3", "rad"), _const(threshold)),
        # Compute-intensive spatial validation of consecutive footprints.
        FunctionPredicate(
            areas_overlap,
            [Attr("r1", "area"), Attr("r2", "area")],
            name="overlap12",
            eval_cost=config.overlap_cost_us,
        ),
        FunctionPredicate(
            areas_overlap,
            [Attr("r2", "area"), Attr("r3", "area")],
            name="overlap23",
            eval_cost=config.overlap_cost_us,
        ),
        # Ground-sensor validation: the later readings must exceed remote,
        # cell-dependent thresholds derived from temperature and humidity.
        # Sensor values are time-varying, so the lookup key is the *current
        # observation id* (cell + reporting period) carried on each event —
        # cached readings go stale after one refresh period, which is what
        # keeps the remote source on the critical path in the real system.
        Comparison(">", Attr("r2", "rad"), RemoteRef("temp", Attr("r1", "obs"))),
        Comparison(">", Attr("r3", "rad"), RemoteRef("humidity", Attr("r2", "obs"))),
    ]
    return Query(pattern, conditions, Window.time(config.window_us), name="bushfire")


def _const(value):
    from repro.query.predicates import Const

    return Const(value)


def bushfire_store(config: BushfireConfig) -> RemoteStore:
    """Ground-sensor readings per observation id (cell + reporting period).

    Hot, dry cells yield low validation thresholds (fires confirmed);
    cool/humid cells yield thresholds no reading exceeds.  The per-period
    component makes thresholds drift a little between reports.
    """
    store = RemoteStore()
    seed = config.seed
    threshold = config.radiation_threshold
    store.register_source(
        "temp",
        lambda obs: threshold - 5 + (stable_hash(seed, "t", obs) % 30),
    )
    store.register_source(
        "humidity",
        lambda obs: threshold - 5 + (stable_hash(seed, "h", obs) % 30),
    )
    return store


def bushfire_stream(config: BushfireConfig) -> Stream:
    """Satellite readings: hot cells trend above the radiation threshold."""
    rng = make_rng(config.seed)
    payload_rng = spawn(rng, "payload")
    n_hot = max(int(config.n_cells * config.hot_cell_fraction), 1)
    events = []
    t = 0.0
    for _ in range(config.n_events):
        t += rng.expovariate(1.0 / config.mean_gap_us)
        cell = payload_rng.randrange(config.n_cells)
        hot = cell < n_hot
        base_rad = 320.0 if hot else 290.0
        rad = base_rad + payload_rng.uniform(-15.0, 25.0)
        x = (cell % 8) * 10.0 + payload_rng.uniform(-2.0, 2.0)
        y = (cell // 8) * 10.0 + payload_rng.uniform(-2.0, 2.0)
        period = int(t / config.sensor_refresh_us)
        events.append(
            Event(
                t,
                {
                    "type": "F",
                    "cell": cell,
                    "obs": (cell, period),
                    "rad": rad,
                    "area": (x, y, x + 12.0, y + 12.0),
                },
            )
        )
    return Stream(events, validate=False)


def bushfire_workload(config: BushfireConfig | None = None) -> Workload:
    """The complete bushfire-detection scenario (Fig. 10a)."""
    config = config if config is not None else BushfireConfig()
    return Workload(
        name="bushfire",
        query=bushfire_query(config),
        store=bushfire_store(config),
        stream=bushfire_stream(config),
        latency_model=UniformLatency(config.latency_low_us, config.latency_high_us),
        notes={"cache_capacity": max(config.n_cells // 2, 2), "config": config},
    )

"""The synthetic workload of §7.1: streams and the Q1/Q2 queries.

Events carry a ``type`` drawn uniformly from {A, B, C, D}, an ``id`` from
U(1, 100), and two numeric attributes ``v1``/``v2`` from U(1, 100000),
exactly as the paper describes.  Transmission latency defaults to
U(10 us, 100 us), and the recommended cache capacity is 10% of a remote
key's value range (10,000 items).

Q1 is the paper's pure 8-step sequence over {A..D} correlated by ``SAME[ID]``
with remote references at two distinct states; Q2 is the disjunction of
sequences with one remote reference per branch.  Two published predicate
details are adapted (recorded in DESIGN.md):

* equality joins on U(1, 100000) attributes (``a.v1 = REMOTE[d.v1]``,
  ``a.v2 = h.v2``) would produce essentially zero matches without the
  paper's unpublished data tables, so remote equality becomes set
  *membership* against :class:`~repro.workloads.base.PseudoRandomSet`
  elements with an explicit selectivity knob, and payload equality becomes
  an order comparison;
* the remote references are keyed by *earlier* bindings (as in the paper's
  own Q2: ``d.v1 = REMOTE[a.v1]``), which is the regime where prefetch
  timing has something to anticipate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.event import Event
from repro.events.stream import Stream
from repro.query.ast import Query
from repro.query.parser import parse_query
from repro.remote.store import RemoteStore
from repro.remote.transport import UniformLatency
from repro.sim.rng import make_rng
from repro.workloads.base import PseudoRandomSet, Workload

__all__ = [
    "SyntheticConfig",
    "Q1_DEFAULTS",
    "Q2_DEFAULTS",
    "make_stream",
    "make_store",
    "q1_workload",
    "q2_workload",
]

EVENT_TYPES = ("A", "B", "C", "D")


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic scenario (paper values as defaults)."""

    n_events: int = 20_000
    mean_gap_us: float = 25.0
    id_domain: int = 100
    key_domain: int = 100_000
    # Selectivity of membership tests against remote sets; the positive form
    # ("IN") passes with this probability, "NOT IN" with its complement.
    remote_density: float = 0.35
    window_events: int = 400
    latency_low_us: float = 10.0
    latency_high_us: float = 100.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_events < 0:
            raise ValueError("n_events must be non-negative")
        if self.id_domain < 1 or self.key_domain < 1:
            raise ValueError("domains must be >= 1")
        if not 0.0 <= self.remote_density <= 1.0:
            raise ValueError("remote_density must be in [0, 1]")


def make_stream(config: SyntheticConfig) -> Stream:
    """The synthetic event stream (Poisson arrivals, uniform payloads)."""
    rng = make_rng(config.seed)
    events = []
    t = 0.0
    for _ in range(config.n_events):
        t += rng.expovariate(1.0 / config.mean_gap_us)
        events.append(
            Event(
                t,
                {
                    "type": rng.choice(EVENT_TYPES),
                    "id": rng.randint(1, config.id_domain),
                    "v1": rng.randint(1, config.key_domain),
                    "v2": rng.randint(1, config.key_domain),
                },
            )
        )
    return Stream(events, validate=False)


def make_store(config: SyntheticConfig) -> RemoteStore:
    """Remote tables rd1/rd2 (Q1) and rq1/rq2 (Q2) as virtual sources."""
    store = RemoteStore()
    density = config.remote_density
    seed = config.seed

    def set_factory(source_tag: int):
        def factory(key):
            return PseudoRandomSet(seed * 1000 + source_tag, key, density)

        return factory

    for tag, source in enumerate(("rd1", "rd2", "rq1", "rq2")):
        store.register_source(source, set_factory(tag))
    return store


def q1_query(config: SyntheticConfig) -> Query:
    """Q1: the 8-step sequence with remote data needed at two states."""
    text = f"""
    SEQ(A a, B b, C c, D d, B e, C f, A g, D h)
    WHERE SAME[id] AND (d.v1 IN REMOTE<rd1>[a.v1]) AND a.v2 <= h.v2
    AND (h.v1 NOT IN REMOTE<rd2>[b.v1])
    WITHIN {config.window_events} EVENTS
    """
    return parse_query(text, name="Q1")


def q2_query(config: SyntheticConfig) -> Query:
    """Q2: disjunction of sequences, one remote reference per branch."""
    text = f"""
    SEQ(A a, (SEQ(B b, C d, D f) OR SEQ(C c, B e)))
    WHERE SAME[id] AND a.v1 <= b.v1 AND a.v2 <= e.v1
    AND (d.v1 IN REMOTE<rq1>[a.v1]) AND (c.v2 IN REMOTE<rq2>[a.v2])
    WITHIN {config.window_events} EVENTS
    """
    return parse_query(text, name="Q2")


def _workload(name: str, query: Query, config: SyntheticConfig) -> Workload:
    return Workload(
        name=name,
        query=query,
        store=make_store(config),
        stream=make_stream(config),
        latency_model=UniformLatency(config.latency_low_us, config.latency_high_us),
        notes={
            "cache_capacity": max(config.key_domain // 10, 1),
            "config": config,
        },
    )


# Default shapes calibrated so both selection policies yield meaningful
# match counts at tractable partial-match populations: Q1's 8-step sequence
# needs denser per-ID sub-streams than Q2's 3/4-step disjunction.
Q1_DEFAULTS = SyntheticConfig(n_events=8_000, id_domain=20, window_events=400)
Q2_DEFAULTS = SyntheticConfig(n_events=8_000, id_domain=40, window_events=400)


def q1_workload(config: SyntheticConfig | None = None) -> Workload:
    """The full Q1 scenario (Figs. 5, 7, 8, 9)."""
    config = config if config is not None else Q1_DEFAULTS
    return _workload("synthetic-q1", q1_query(config), config)


def q2_workload(config: SyntheticConfig | None = None) -> Workload:
    """The full Q2 scenario (Fig. 6)."""
    config = config if config is not None else Q2_DEFAULTS
    return _workload("synthetic-q2", q2_query(config), config)

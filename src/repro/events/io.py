"""Stream (de)serialisation: replay recorded traces, persist generated ones.

Two line-oriented formats are supported:

* **JSONL** — one JSON object per line; the timestamp lives under a
  configurable key (default ``"t"``, microseconds) and every other key
  becomes a payload attribute.  Nested values are kept as-is, so tuple-like
  payloads survive a round trip as lists.
* **CSV** — a header row; one column (default ``"t"``) is the timestamp and
  the remaining columns are payload attributes.  Values are parsed as int,
  then float, then kept as strings — CSV carries no type information.

Both readers sort by timestamp if asked (``assume_sorted=False``) and
otherwise validate ordering, because an out-of-order trace would silently
break window semantics.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.events.event import Event
from repro.events.stream import Stream

__all__ = ["read_jsonl", "write_jsonl", "read_csv", "write_csv"]


def read_jsonl(
    path: str | Path,
    timestamp_key: str = "t",
    assume_sorted: bool = True,
) -> Stream:
    """Load a stream from a JSON-lines trace file."""
    events = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{line_number}: invalid JSON: {error}") from None
            if timestamp_key not in record:
                raise ValueError(
                    f"{path}:{line_number}: record lacks timestamp key {timestamp_key!r}"
                )
            timestamp = float(record.pop(timestamp_key))
            events.append(Event(timestamp, record))
    if not assume_sorted:
        events.sort(key=lambda event: event.t)
    return Stream(events)


def write_jsonl(stream: Stream, path: str | Path, timestamp_key: str = "t") -> None:
    """Persist a stream as JSON lines (inverse of :func:`read_jsonl`)."""
    with open(path, "w") as handle:
        for event in stream:
            record = {timestamp_key: event.t}
            for key, value in event.attrs.items():
                if key == timestamp_key:
                    raise ValueError(
                        f"payload attribute {key!r} collides with the timestamp key"
                    )
                record[key] = value
            handle.write(json.dumps(record, default=_jsonify) + "\n")


def _jsonify(value):
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    raise TypeError(f"cannot serialise {type(value).__name__} payload value: {value!r}")


def _parse_cell(text: str):
    for parser in (int, float):
        try:
            return parser(text)
        except ValueError:
            continue
    return text


def read_csv(
    path: str | Path,
    timestamp_column: str = "t",
    assume_sorted: bool = True,
) -> Stream:
    """Load a stream from a CSV trace with a header row."""
    events = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or timestamp_column not in reader.fieldnames:
            raise ValueError(
                f"{path}: CSV header must include the timestamp column {timestamp_column!r}"
            )
        for row_number, row in enumerate(reader, start=2):
            timestamp = float(row.pop(timestamp_column))
            events.append(Event(timestamp, {k: _parse_cell(v) for k, v in row.items()}))
    if not assume_sorted:
        events.sort(key=lambda event: event.t)
    return Stream(events)


def write_csv(stream: Stream, path: str | Path, timestamp_column: str = "t") -> None:
    """Persist a stream as CSV (attribute set must be uniform)."""
    events = list(stream)
    if not events:
        with open(path, "w", newline="") as handle:
            csv.writer(handle).writerow([timestamp_column])
        return
    columns = list(events[0].attrs)
    for event in events:
        if list(event.attrs) != columns:
            raise ValueError(
                "CSV export needs a uniform schema; "
                f"event at t={event.t} differs from the first event's attributes"
            )
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([timestamp_column] + columns)
        for event in events:
            writer.writerow([event.t] + [event.attrs[column] for column in columns])


def events_from_dicts(records: Iterable[dict], timestamp_key: str = "t") -> Stream:
    """Build a stream from in-memory dicts (convenience for adapters)."""
    events = []
    for record in records:
        payload = dict(record)
        timestamp = float(payload.pop(timestamp_key))
        events.append(Event(timestamp, payload))
    return Stream(events)

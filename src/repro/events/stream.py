"""Event streams and stream prefixes (§2.1).

A stream is a timestamp-ordered sequence of events.  The reproduction works
with *materialised* finite prefixes (``S(..k)``) because experiments replay a
fixed number of events; :class:`Stream` nevertheless exposes an iterator
interface so the engine consumes events one at a time, exactly as an online
system would.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.events.event import Event

__all__ = ["Stream", "merge_streams"]


class Stream:
    """A finite, timestamp-ordered event sequence.

    The constructor validates ordering and assigns consecutive ``seq``
    indices (0-based), overwriting any pre-existing ones: within a stream
    the index *is* the position.
    """

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[Event], validate: bool = True) -> None:
        materialised = list(events)
        for index, event in enumerate(materialised):
            event.seq = index
        if validate:
            for previous, current in zip(materialised, materialised[1:]):
                if current.t < previous.t:
                    raise ValueError(
                        f"stream out of order: event seq={current.seq} at t={current.t} "
                        f"follows t={previous.t}"
                    )
        self._events = materialised

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    @property
    def events(self) -> Sequence[Event]:
        return self._events

    def prefix(self, k: int) -> "Stream":
        """The stream prefix ``S(..k)`` containing the first ``k`` events."""
        if k < 0:
            raise ValueError(f"prefix length must be non-negative: {k}")
        return Stream(self._events[:k], validate=False)

    def duration(self) -> float:
        """Time span between the first and last event (0 for short streams)."""
        if len(self._events) < 2:
            return 0.0
        return self._events[-1].t - self._events[0].t

    def __repr__(self) -> str:
        if not self._events:
            return "Stream(<empty>)"
        return (
            f"Stream({len(self._events)} events, "
            f"t=[{self._events[0].t:.1f}, {self._events[-1].t:.1f}])"
        )


def merge_streams(*streams: Stream) -> Stream:
    """Merge streams by timestamp into a single ordered stream.

    Ties are broken by the order the streams are passed in, then by original
    position, keeping the merge deterministic.  Events are re-indexed.
    """
    tagged = [
        (event.t, stream_index, event.seq, event)
        for stream_index, stream in enumerate(streams)
        for event in stream
    ]
    tagged.sort(key=lambda item: item[:3])
    return Stream([event for *_, event in tagged], validate=False)

"""Relational event model (§2.1 of the paper).

An event is an instantaneous, unique, atomic occurrence with a payload that
instantiates a fixed schema ``A = <A1, ..., An>`` and a timestamp drawn from a
discrete, totally ordered domain.  Following the paper, all events of a
stream share one schema; different *types* of events (the ``T``/``D``/``L``
of the fraud query, or ``A``--``D`` of the synthetic workload) are encoded as
predicates over a distinguished ``type`` attribute.

Timestamps are virtual microseconds (see :mod:`repro.sim.clock`).
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

__all__ = ["Event", "EventSchema", "TYPE_ATTRIBUTE"]

TYPE_ATTRIBUTE = "type"

_PRIMITIVES: dict[str, type] = {
    "int": int,
    "float": float,
    "str": str,
    "bool": bool,
}


class EventSchema:
    """An ordered sequence of named, primitively typed attributes.

    >>> schema = EventSchema([("type", "str"), ("id", "int"), ("v1", "int")])
    >>> schema.attribute_names
    ('type', 'id', 'v1')
    """

    __slots__ = ("_attributes", "_types")

    def __init__(self, attributes: list[tuple[str, str]]) -> None:
        if not attributes:
            raise ValueError("an event schema needs at least one attribute")
        names = [name for name, _ in attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in schema: {names}")
        for name, type_name in attributes:
            if type_name not in _PRIMITIVES:
                raise ValueError(
                    f"attribute {name!r} has non-primitive type {type_name!r}; "
                    f"expected one of {sorted(_PRIMITIVES)}"
                )
        self._attributes = tuple(attributes)
        self._types = {name: _PRIMITIVES[type_name] for name, type_name in attributes}

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self._attributes)

    @property
    def attributes(self) -> tuple[tuple[str, str], ...]:
        return self._attributes

    def validate(self, payload: Mapping[str, Any]) -> None:
        """Raise ``ValueError`` if ``payload`` does not instantiate the schema.

        Numeric widening (``int`` where ``float`` is declared) is accepted,
        matching common relational practice.
        """
        for name, expected in self._types.items():
            if name not in payload:
                raise ValueError(f"payload missing attribute {name!r}")
            value = payload[name]
            if expected is float and isinstance(value, int):
                continue
            if not isinstance(value, expected):
                raise ValueError(
                    f"attribute {name!r} expected {expected.__name__}, "
                    f"got {type(value).__name__} ({value!r})"
                )
        extra = set(payload) - set(self._types)
        if extra:
            raise ValueError(f"payload has attributes outside the schema: {sorted(extra)}")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EventSchema) and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        fields = ", ".join(f"{n}:{t}" for n, t in self._attributes)
        return f"EventSchema({fields})"


class Event:
    """A single stream event: payload ``attrs``, timestamp ``t``, index ``seq``.

    ``seq`` is the position of the event in its stream (the ``k`` of the
    paper's ``S(..k)`` prefixes); it doubles as a total order among events
    with equal timestamps and powers count-based windows (Q2's ``WITHIN
    50K``).
    """

    __slots__ = ("t", "seq", "attrs")

    def __init__(self, t: float, attrs: Mapping[str, Any], seq: int = -1) -> None:
        if t < 0:
            raise ValueError(f"event timestamp must be non-negative: {t}")
        self.t = float(t)
        self.seq = seq
        self.attrs = dict(attrs)

    def __getitem__(self, name: str) -> Any:
        try:
            return self.attrs[name]
        except KeyError:
            raise KeyError(f"event has no attribute {name!r}; has {sorted(self.attrs)}") from None

    def get(self, name: str, default: Any = None) -> Any:
        return self.attrs.get(name, default)

    @property
    def event_type(self) -> Any:
        """The distinguished ``type`` attribute, or ``None`` if absent."""
        return self.attrs.get(TYPE_ATTRIBUTE)

    def __iter__(self) -> Iterator[str]:
        return iter(self.attrs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.t == other.t and self.seq == other.seq and self.attrs == other.attrs

    def __hash__(self) -> int:
        return hash((self.t, self.seq))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.attrs.items())
        return f"Event(t={self.t:.1f}, seq={self.seq}, {inner})"

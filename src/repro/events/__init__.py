"""Event model, streams, and arrival processes."""

from repro.events.event import TYPE_ATTRIBUTE, Event, EventSchema
from repro.events.generators import (
    ArrivalProcess,
    FixedArrivals,
    PoissonArrivals,
    UniformArrivals,
    generate_stream,
)
from repro.events.stream import Stream, merge_streams

__all__ = [
    "Event",
    "EventSchema",
    "TYPE_ATTRIBUTE",
    "Stream",
    "merge_streams",
    "ArrivalProcess",
    "PoissonArrivals",
    "FixedArrivals",
    "UniformArrivals",
    "generate_stream",
]

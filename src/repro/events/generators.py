"""Arrival processes for synthetic event streams.

The paper models event arrival as a Poisson process (§5.1, "as observed in
many domains where events correspond to requests triggered by people"); the
estimated-arrival prefetch timing and the LzEval benefit estimate both build
on exponential inter-arrival times with monitored rates.  The workload
generators in :mod:`repro.workloads` compose one of these processes with a
payload sampler.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Iterator, Mapping

from repro.events.event import Event
from repro.events.stream import Stream

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "FixedArrivals",
    "UniformArrivals",
    "generate_stream",
]


class ArrivalProcess(ABC):
    """Produces successive inter-arrival gaps in virtual microseconds."""

    @abstractmethod
    def next_gap(self) -> float:
        """Return the next inter-arrival gap (strictly positive)."""

    def timestamps(self, count: int, start: float = 0.0) -> Iterator[float]:
        """Yield ``count`` arrival timestamps beginning at ``start``."""
        now = start
        for _ in range(count):
            now += self.next_gap()
            yield now


class PoissonArrivals(ArrivalProcess):
    """Exponential inter-arrival gaps with mean ``1/rate``.

    ``rate`` is in events per microsecond; ``PoissonArrivals(rate=0.01)``
    yields a mean gap of 100 us.
    """

    def __init__(self, rate: float, rng: random.Random) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive: {rate}")
        self.rate = rate
        self._rng = rng

    def next_gap(self) -> float:
        return self._rng.expovariate(self.rate)


class FixedArrivals(ArrivalProcess):
    """Deterministic, constant gaps — useful in tests and crisp examples."""

    def __init__(self, gap: float) -> None:
        if gap <= 0:
            raise ValueError(f"arrival gap must be positive: {gap}")
        self.gap = gap

    def next_gap(self) -> float:
        return self.gap


class UniformArrivals(ArrivalProcess):
    """Gaps drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float, rng: random.Random) -> None:
        if low <= 0 or high < low:
            raise ValueError(f"invalid uniform gap range: [{low}, {high}]")
        self.low = low
        self.high = high
        self._rng = rng

    def next_gap(self) -> float:
        return self._rng.uniform(self.low, self.high)


def generate_stream(
    count: int,
    arrivals: ArrivalProcess,
    payload_sampler: Callable[[int], Mapping[str, object]],
    start: float = 0.0,
) -> Stream:
    """Build a stream of ``count`` events.

    ``payload_sampler`` receives the event index and returns the payload
    mapping; arrival timestamps come from ``arrivals``.
    """
    if count < 0:
        raise ValueError(f"event count must be non-negative: {count}")
    events = [
        Event(t=timestamp, attrs=payload_sampler(index))
        for index, timestamp in enumerate(arrivals.timestamps(count, start=start))
    ]
    return Stream(events, validate=False)

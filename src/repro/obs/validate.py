"""Chrome-trace validation for the CI observability smoke step.

``python -m repro.obs.validate TRACE.json`` checks that the file parses as
trace-event JSON and contains at least one record for every lifecycle
category of the EIRES pipeline (see :data:`repro.obs.trace.CATEGORIES`),
exiting non-zero with a readable report otherwise.

Conditional subsystems are validated on demand: ``--require-batching``
additionally demands the batched fetch plane's lifecycle records
(``fetch.enqueue`` window entries and ``fetch.batch_issue`` wire requests),
and ``--require-shedding`` demands ``shed.shed_decision`` records — a trace
from a batching or shedding run that is silently missing them fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable

from repro.obs.trace import CATEGORIES

__all__ = [
    "validate_chrome_trace",
    "main",
    "BATCHING_EVENT_NAMES",
    "SHEDDING_EVENT_NAMES",
]

#: Chrome event names (``cat.name``) a batching-enabled trace must contain.
BATCHING_EVENT_NAMES = ("fetch.enqueue", "fetch.batch_issue")

#: Chrome event names a shedding-enabled trace must contain.
SHEDDING_EVENT_NAMES = ("shed.shed_decision",)


def validate_chrome_trace(
    path: str,
    require_categories: bool = True,
    require_names: Iterable[str] = (),
) -> dict[str, int]:
    """Validate a Chrome trace file; returns per-category record counts.

    Raises ``ValueError`` when the file is not valid trace-event JSON, when
    (with ``require_categories``) any lifecycle category is absent, or when
    any of the ``require_names`` event names (``"cat.name"`` as rendered by
    the Chrome exporter) never occurs.
    """
    required_names = tuple(require_names)
    with open(path) as handle:
        try:
            trace = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: not valid JSON: {error}") from error
    events = trace.get("traceEvents") if isinstance(trace, dict) else None
    if not isinstance(events, list):
        raise ValueError(f"{path}: missing 'traceEvents' list")
    counts = {category: 0 for category in CATEGORIES}
    name_counts = {name: 0 for name in required_names}
    for event in events:
        if not isinstance(event, dict) or "ph" not in event:
            raise ValueError(f"{path}: malformed trace event: {event!r}")
        if event["ph"] == "M":
            continue
        category = event.get("cat")
        if category in counts:
            counts[category] += 1
        name = event.get("name")
        if name in name_counts:
            name_counts[name] += 1
    if require_categories:
        empty = sorted(category for category, count in counts.items() if count == 0)
        if empty:
            raise ValueError(f"{path}: no records for lifecycle categories: {', '.join(empty)}")
    missing_names = sorted(name for name, count in name_counts.items() if count == 0)
    if missing_names:
        raise ValueError(f"{path}: no records for required events: {', '.join(missing_names)}")
    return counts


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate a Chrome trace exported by repro.cli trace/report.",
    )
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require-batching",
        action="store_true",
        help=f"require the batching lifecycle events {', '.join(BATCHING_EVENT_NAMES)}",
    )
    parser.add_argument(
        "--require-shedding",
        action="store_true",
        help=f"require the shedding decision events {', '.join(SHEDDING_EVENT_NAMES)}",
    )
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    required: list[str] = []
    if args.require_batching:
        required.extend(BATCHING_EVENT_NAMES)
    if args.require_shedding:
        required.extend(SHEDDING_EVENT_NAMES)
    try:
        counts = validate_chrome_trace(args.trace, require_names=required)
    except (OSError, ValueError) as error:
        print(f"trace validation FAILED: {error}", file=sys.stderr)
        return 1
    total = sum(counts.values())
    summary = ", ".join(f"{category}={count}" for category, count in sorted(counts.items()))
    print(f"trace OK: {total} records ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Chrome-trace validation for the CI observability smoke step.

``python -m repro.obs.validate TRACE.json`` checks that the file parses as
trace-event JSON and contains at least one record for every lifecycle
category of the EIRES pipeline (see :data:`repro.obs.trace.CATEGORIES`),
exiting non-zero with a readable report otherwise.
"""

from __future__ import annotations

import json
import sys

from repro.obs.trace import CATEGORIES

__all__ = ["validate_chrome_trace", "main"]


def validate_chrome_trace(path: str, require_categories: bool = True) -> dict[str, int]:
    """Validate a Chrome trace file; returns per-category record counts.

    Raises ``ValueError`` when the file is not valid trace-event JSON or
    (with ``require_categories``) when any lifecycle category is absent.
    """
    with open(path) as handle:
        try:
            trace = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: not valid JSON: {error}") from error
    events = trace.get("traceEvents") if isinstance(trace, dict) else None
    if not isinstance(events, list):
        raise ValueError(f"{path}: missing 'traceEvents' list")
    counts = {category: 0 for category in CATEGORIES}
    for event in events:
        if not isinstance(event, dict) or "ph" not in event:
            raise ValueError(f"{path}: malformed trace event: {event!r}")
        category = event.get("cat")
        if category in counts and event["ph"] != "M":
            counts[category] += 1
    if require_categories:
        empty = sorted(category for category, count in counts.items() if count == 0)
        if empty:
            raise ValueError(f"{path}: no records for lifecycle categories: {', '.join(empty)}")
    return counts


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print("usage: python -m repro.obs.validate TRACE.json", file=sys.stderr)
        return 2
    try:
        counts = validate_chrome_trace(args[0])
    except (OSError, ValueError) as error:
        print(f"trace validation FAILED: {error}", file=sys.stderr)
        return 1
    total = sum(counts.values())
    summary = ", ".join(f"{category}={count}" for category, count in sorted(counts.items()))
    print(f"trace OK: {total} records ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

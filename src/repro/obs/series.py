"""Virtual-time metric series: periodic registry snapshots as diffable JSONL.

A :class:`SeriesSampler` snapshots a :class:`~repro.obs.registry.MetricsRegistry`
every ``interval`` virtual microseconds while the dispatch loop replays a
stream, producing a time series of every counter, gauge, and histogram
percentile in the system.  Because time is virtual and snapshots read model
state only, two runs with the same seed produce byte-identical series —
``diff`` on the JSONL output is a regression test.

Row schema (one JSON object per line)::

    {"seq": 3,              # monotone sample number
     "t": 30000.0,          # the cadence boundary this sample covers
     "at": 30104.2,         # virtual time the sample was actually taken
     "final": false,        # true for the end-of-stream sample
     "metrics": {...}}      # the full registry snapshot

``t`` sticks to the cadence grid (``k * interval``) so series from runs
with different stall patterns align row-for-row; ``at`` records the first
event time at or past the boundary (the dispatch loop only observes time
between events).  When a long stall skips several boundaries, one sample is
emitted for the last boundary crossed — gaps are visible as missing ``t``
values, not silently interpolated.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.obs.registry import MetricsRegistry, ScopedRegistry

__all__ = ["SeriesSampler", "write_series_jsonl", "load_series_jsonl"]


class SeriesSampler:
    """Samples a metrics registry on a fixed virtual-time cadence."""

    __slots__ = ("registry", "interval", "_next_due", "_seq", "_rows")

    def __init__(
        self, registry: MetricsRegistry | ScopedRegistry, interval: float
    ) -> None:
        if interval <= 0:
            raise ValueError(f"series interval must be positive: {interval}")
        self.registry = registry
        self.interval = float(interval)
        self._next_due = self.interval
        self._seq = 0
        self._rows: list[dict[str, Any]] = []

    def due(self, now: float) -> bool:
        """Whether ``now`` has crossed the next cadence boundary."""
        return now >= self._next_due

    def maybe_sample(self, now: float) -> bool:
        """Take one sample if a boundary was crossed; returns whether it was."""
        if now < self._next_due:
            return False
        boundary = math.floor(now / self.interval) * self.interval
        self._append(boundary, now, final=False)
        self._next_due = boundary + self.interval
        return True

    def finalize(self, now: float) -> None:
        """The end-of-stream sample (stamped at ``now``, not a boundary)."""
        self._append(now, now, final=True)

    def _append(self, boundary: float, now: float, final: bool) -> None:
        self._rows.append(
            {
                "seq": self._seq,
                "t": boundary,
                "at": now,
                "final": final,
                "metrics": self.registry.snapshot(),
            }
        )
        self._seq += 1

    def rows(self) -> list[dict[str, Any]]:
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"SeriesSampler(interval={self.interval}, samples={len(self._rows)})"


def write_series_jsonl(rows: list[dict[str, Any]], path: str) -> int:
    """Write series rows as JSON lines; returns the number written."""
    with open(path, "w") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True, default=repr))
            handle.write("\n")
    return len(rows)


def load_series_jsonl(path: str) -> list[dict[str, Any]]:
    """Read series rows back from a JSONL file (the write's round trip)."""
    rows: list[dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows

"""Decision-provenance verification: replay trace records against the model.

Every PFetch selection (Eq. 7) and LzEval gate (Eq. 8) in a traced run
records its numeric inputs alongside the decision it took.  The functions
here *replay* those records — recomputing the decision from the recorded
inputs with the same arithmetic the strategies use — and report any record
whose recorded decision disagrees.  An empty problem list is machine-checked
proof that the trace fully explains the run's fetch/postpone behaviour.

Eq. 7 (PFetch selection, ``cat="prefetch"``, ``name="decision"``)::

    candidate = omega * UU + (1 - omega) * FU        # Eq. 5 at omega_fetch
    candidate += omega * ell                          # anticipated urgent use
    fetch iff candidate > cache_min                   # Eq. 7

Eq. 8 (LzEval gate, ``cat="obligation"``, ``name="eq8_gate"``)::

    beneficial(m) iff delta_minus(m) > delta_plus(m)  # hidden latency wins
    postpone iff succ = {m : beneficial(m)} is non-empty

Shedding decisions (``cat="shed"``, ``name="shed_decision"``) record the
detector inputs (queueing lag, active population, configured bounds) next to
the action taken, so the overload predicate replays the same way::

    overloaded iff (latency_bound set and lag > latency_bound)
               or  (run_budget set and active > run_budget)
               or  (slo_burn recorded and slo_burn > 1.0)
    drop_event iff utility <= cutoff                     # events policy
    shed_runs  iff victims = min(before - target, before) > 0   # runs policy

Latency-attribution spans (``cat="span"``, ``name="attribution"``) record
the critical-path decomposition of one match next to its recorded latency;
the replay proves the accounting is complete::

    sum(components) == latency == dur      # exact up to float tolerance
    every component >= 0                   # no stall attributed twice

Serving decisions (``cat="serving"``) record the fleet layer's routing and
admission arithmetic.  A ``route`` record carries the tenant's registration
index and the placement policy, so the shard is recomputable (round-robin
and hash placements are pure functions; pinned placement is range-checked);
an ``admit``/``throttle`` record carries the post-refill token level the
bucket decided at::

    shard == index % n_shards                 # round_robin
    shard == stable_hash(tenant) % n_shards   # hash (FNV-1a, process-stable)
    admit iff tokens >= 1.0, 0 <= tokens <= burst
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.obs.spans import SPAN_COMPONENTS, SPAN_RECORD_NAME

__all__ = [
    "EQ7_FIELDS",
    "EQ8_FIELDS",
    "SHED_FIELDS",
    "SPAN_FIELDS",
    "SERVING_ROUTE_FIELDS",
    "SERVING_ADMIT_FIELDS",
    "verify_eq7_record",
    "verify_eq8_record",
    "verify_shed_record",
    "verify_span_record",
    "verify_serving_record",
    "replay_trace",
]

#: Numeric inputs every *gated* Eq. 7 decision must carry.
EQ7_FIELDS = ("uu", "fu", "omega", "ell_estimate", "candidate_utility", "cache_min")

#: Inputs every Eq. 8 gate record must carry.
EQ8_FIELDS = ("ell", "branch", "deltas", "succ")

#: Detector inputs every shedding decision must carry.
SHED_FIELDS = ("policy", "action", "lag", "latency_bound", "active", "run_budget")

#: Fields every span record must carry: the components plus the latency
#: they decompose.
SPAN_FIELDS = SPAN_COMPONENTS + ("latency", "dur")

#: Fields every fleet routing record must carry.
SERVING_ROUTE_FIELDS = ("tenant", "shard", "policy", "index", "n_shards")

#: Fields every fleet admission decision must carry.
SERVING_ADMIT_FIELDS = ("tenant", "seq_no", "tokens", "rate", "burst")

_TOL = 1e-9

#: Absolute slack for span sums: components accumulate over many float
#: additions, so the per-match comparison scales this by the latency.
_SPAN_TOL = 1e-6


def verify_eq7_record(record: Mapping[str, Any]) -> list[str]:
    """Problems with one Eq. 7 decision record (empty list = consistent)."""
    problems: list[str] = []
    if not record.get("gated"):
        # Ungated decisions (cache not full, gate disabled, breaker skip…)
        # make no Eq. 7 comparison and carry no model inputs to replay.
        return problems
    missing = [field for field in EQ7_FIELDS if field not in record]
    if missing:
        return [f"eq7 seq={record.get('seq')}: missing fields {missing}"]
    omega = record["omega"]
    candidate = omega * record["uu"] + (1.0 - omega) * record["fu"]
    candidate += omega * record["ell_estimate"]
    if abs(candidate - record["candidate_utility"]) > _TOL * max(1.0, abs(candidate)):
        problems.append(
            f"eq7 seq={record.get('seq')}: candidate recomputes to {candidate!r}, "
            f"recorded {record['candidate_utility']!r}"
        )
    suppressed = record["candidate_utility"] <= record["cache_min"]
    decision = record.get("decision")
    expected = "suppressed" if suppressed else "issued"
    if decision != expected:
        problems.append(
            f"eq7 seq={record.get('seq')}: inputs imply {expected!r}, recorded {decision!r}"
        )
    return problems


def verify_eq8_record(record: Mapping[str, Any]) -> list[str]:
    """Problems with one Eq. 8 gate record (empty list = consistent)."""
    problems: list[str] = []
    missing = [field for field in EQ8_FIELDS if field not in record]
    if missing:
        return [f"eq8 seq={record.get('seq')}: missing fields {missing}"]
    succ: set[int] = set()
    for delta in record["deltas"]:
        beneficial = delta["delta_minus"] > delta["delta_plus"]
        if bool(delta.get("beneficial")) != beneficial:
            problems.append(
                f"eq8 seq={record.get('seq')}: state {delta.get('state')} records "
                f"beneficial={delta.get('beneficial')} but "
                f"delta_minus={delta['delta_minus']!r} vs delta_plus={delta['delta_plus']!r}"
            )
        if beneficial:
            succ.add(delta["state"])
    if record.get("gated", True):
        if succ != set(record["succ"]):
            problems.append(
                f"eq8 seq={record.get('seq')}: deltas imply succ={sorted(succ)}, "
                f"recorded {sorted(record['succ'])}"
            )
        expected = "postpone" if record["succ"] else "block"
    else:
        # Gate disabled: postponement is unconditional (succ is advisory).
        expected = "postpone"
    if record["branch"] != expected:
        problems.append(
            f"eq8 seq={record.get('seq')}: inputs imply branch={expected!r}, "
            f"recorded {record['branch']!r}"
        )
    return problems


def verify_shed_record(record: Mapping[str, Any]) -> list[str]:
    """Problems with one shedding decision record (empty list = consistent)."""
    problems: list[str] = []
    missing = [field for field in SHED_FIELDS if field not in record]
    if missing:
        return [f"shed seq={record.get('seq')}: missing fields {missing}"]
    latency_bound = record["latency_bound"]
    run_budget = record["run_budget"]
    overloaded = (
        (latency_bound is not None and record["lag"] > latency_bound)
        or (run_budget is not None and record["active"] > run_budget)
        # SLO-consuming detectors stamp the burn; a burn above 1.0 is a
        # legitimate trigger even while lag/population are within bounds.
        or record.get("slo_burn", 0.0) > 1.0
    )
    if not overloaded:
        problems.append(
            f"shed seq={record.get('seq')}: recorded inputs do not exceed either "
            f"bound (lag={record['lag']!r}, active={record['active']!r})"
        )
    action = record["action"]
    if action == "drop_event":
        for field in ("event_seq", "utility", "cutoff"):
            if field not in record:
                problems.append(f"shed seq={record.get('seq')}: drop_event missing {field!r}")
                return problems
        if record["utility"] > record["cutoff"]:
            problems.append(
                f"shed seq={record.get('seq')}: dropped event has utility "
                f"{record['utility']!r} above cutoff {record['cutoff']!r}"
            )
    elif action == "shed_runs":
        for field in ("victims", "target", "before"):
            if field not in record:
                problems.append(f"shed seq={record.get('seq')}: shed_runs missing {field!r}")
                return problems
        expected = min(record["before"] - record["target"], record["before"])
        if record["victims"] != expected or record["victims"] <= 0:
            problems.append(
                f"shed seq={record.get('seq')}: before={record['before']!r} and "
                f"target={record['target']!r} imply {expected!r} victims, "
                f"recorded {record['victims']!r}"
            )
    else:
        problems.append(f"shed seq={record.get('seq')}: unknown action {action!r}")
    return problems


def verify_span_record(record: Mapping[str, Any]) -> list[str]:
    """Problems with one latency-attribution span (empty list = consistent).

    The components must be individually non-negative (a negative ``eval``
    remainder means some stall was attributed twice, or a clock advance was
    missed) and must sum to the recorded end-to-end latency exactly (up to
    accumulated float error) — together these prove the decomposition is a
    complete, non-overlapping account of where the match's latency went.
    """
    problems: list[str] = []
    missing = [field for field in SPAN_FIELDS if field not in record]
    if missing:
        return [f"span seq={record.get('seq')}: missing fields {missing}"]
    latency = record["latency"]
    tol = _SPAN_TOL * max(1.0, abs(latency))
    if abs(record["dur"] - latency) > tol:
        problems.append(
            f"span seq={record.get('seq')}: dur={record['dur']!r} disagrees with "
            f"latency={latency!r}"
        )
    total = 0.0
    for name in SPAN_COMPONENTS:
        value = record[name]
        if value < -tol:
            problems.append(
                f"span seq={record.get('seq')}: component {name}={value!r} is negative"
            )
        total += value
    if abs(total - latency) > tol:
        problems.append(
            f"span seq={record.get('seq')}: components sum to {total!r}, "
            f"recorded latency {latency!r}"
        )
    return problems


def verify_serving_record(record: Mapping[str, Any]) -> list[str]:
    """Problems with one fleet serving record (empty list = consistent).

    ``route`` records replay the placement function itself: round-robin and
    hash placements are pure functions of the recorded inputs, so the shard
    is recomputed and compared (the FNV-1a hash is imported from
    :mod:`repro.serving.placement` lazily — the serving layer sits above
    this module).  Pinned placements carry no function to replay, so only
    the range invariant is checked.  Admission records replay the token
    bucket's threshold: admit iff at least one whole token was present.
    """
    problems: list[str] = []
    name = record.get("name")
    if name == "route":
        missing = [field for field in SERVING_ROUTE_FIELDS if field not in record]
        if missing:
            return [f"serving seq={record.get('seq')}: missing fields {missing}"]
        n_shards = record["n_shards"]
        shard = record["shard"]
        if not (0 <= shard < n_shards):
            problems.append(
                f"serving seq={record.get('seq')}: tenant {record['tenant']!r} "
                f"routed to shard {shard}, outside [0, {n_shards})"
            )
            return problems
        policy = record["policy"]
        expected: int | None = None
        if policy == "round_robin":
            expected = record["index"] % n_shards
        elif policy == "hash":
            from repro.serving.placement import stable_hash

            expected = stable_hash(record["tenant"]) % n_shards
        elif policy != "pinned":
            problems.append(
                f"serving seq={record.get('seq')}: unknown placement "
                f"policy {policy!r}"
            )
        if expected is not None and shard != expected:
            problems.append(
                f"serving seq={record.get('seq')}: {policy} placement of "
                f"tenant {record['tenant']!r} implies shard {expected}, "
                f"recorded {shard}"
            )
    elif name in ("admit", "throttle"):
        missing = [field for field in SERVING_ADMIT_FIELDS if field not in record]
        if missing:
            return [f"serving seq={record.get('seq')}: missing fields {missing}"]
        tokens = record["tokens"]
        burst = record["burst"]
        if tokens < -_TOL or tokens > burst + _TOL:
            problems.append(
                f"serving seq={record.get('seq')}: token level {tokens!r} "
                f"outside [0, burst={burst!r}]"
            )
        expected_name = "admit" if tokens >= 1.0 else "throttle"
        if name != expected_name:
            problems.append(
                f"serving seq={record.get('seq')}: {tokens!r} tokens imply "
                f"{expected_name!r}, recorded {name!r}"
            )
    else:
        problems.append(f"serving seq={record.get('seq')}: unknown record name {name!r}")
    return problems


def replay_trace(records: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Replay every decision record; returns counts and collected problems."""
    checked_eq7 = 0
    checked_eq8 = 0
    checked_shed = 0
    checked_spans = 0
    checked_serving = 0
    problems: list[str] = []
    for record in records:
        if record.get("cat") == "prefetch" and record.get("name") == "decision":
            checked_eq7 += 1
            problems.extend(verify_eq7_record(record))
        elif record.get("cat") == "obligation" and record.get("name") == "eq8_gate":
            checked_eq8 += 1
            problems.extend(verify_eq8_record(record))
        elif record.get("cat") == "shed" and record.get("name") == "shed_decision":
            checked_shed += 1
            problems.extend(verify_shed_record(record))
        elif record.get("cat") == "span" and record.get("name") == SPAN_RECORD_NAME:
            checked_spans += 1
            problems.extend(verify_span_record(record))
        elif record.get("cat") == "serving":
            checked_serving += 1
            problems.extend(verify_serving_record(record))
    return {
        "checked_eq7": checked_eq7,
        "checked_eq8": checked_eq8,
        "checked_shed": checked_shed,
        "checked_spans": checked_spans,
        "checked_serving": checked_serving,
        "problems": problems,
    }

"""The metrics registry: counters, gauges, and virtual-time histograms.

One :class:`MetricsRegistry` per assembled EIRES instance is the single home
for runtime statistics.  The legacy stats façades —
:class:`~repro.strategies.base.StrategyStats`,
:class:`~repro.cache.stats.CacheStats`, and the
:class:`~repro.remote.transport.Transport` counters — are *views* over this
registry: their attribute reads and writes land on registry-owned
:class:`Counter` objects, so a metrics snapshot and the per-component
``as_dict()`` reports can never disagree.

Metric names are dotted and namespaced by component (``fetch.*``,
``cache.*``, ``transport.*``, ``pipeline.*``); units are virtual
microseconds for all duration-like metrics (see ``docs/observability.md``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable

from repro.metrics.latency import percentile

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ScopedRegistry",
    "HISTOGRAM_PERCENTILES",
]

#: Default quantile set every histogram snapshot reports; override per
#: registry (``MetricsRegistry(histogram_qs=...)``) or from
#: ``EiresConfig.histogram_percentiles`` at the framework level.
HISTOGRAM_PERCENTILES = (50, 95, 99)


class Counter:
    """A monotonically meaningful numeric cell (int or float).

    The stats façades assign as well as increment (``stats.retries = n``
    mirrors a transport total), so the raw ``value`` stays writable.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time numeric reading (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Sampled distribution with optional virtual-time windowing.

    ``window`` bounds the retained samples to the last ``window`` virtual
    microseconds relative to the most recent observation: old samples are
    discarded as new ones arrive, so long runs report *recent* behaviour
    instead of an all-time average.  ``window=None`` retains everything.
    Totals (``count``/``total``) always cover the full run regardless of the
    window.  ``qs`` is the quantile set :meth:`snapshot` reports.
    """

    __slots__ = ("name", "window", "count", "total", "qs", "_samples")

    def __init__(
        self,
        name: str,
        window: float | None = None,
        qs: Iterable[float] = HISTOGRAM_PERCENTILES,
    ) -> None:
        if window is not None and window <= 0:
            raise ValueError(f"histogram window must be positive: {window}")
        self.name = name
        self.window = window
        self.qs = tuple(qs)
        self.count = 0
        self.total = 0.0
        self._samples: deque[tuple[float, float]] = deque()

    def observe(self, value: float, t: float = 0.0) -> None:
        """Fold one sample taken at virtual time ``t``."""
        self.count += 1
        self.total += value
        self._samples.append((t, value))
        if self.window is not None:
            horizon = t - self.window
            samples = self._samples
            while samples and samples[0][0] < horizon:
                samples.popleft()

    def windowed_values(self) -> list[float]:
        """The retained (possibly windowed) sample values, in arrival order."""
        return [value for _, value in self._samples]

    def mean(self) -> float:
        if not self.count:
            return 0.0
        return self.total / self.count

    def percentiles(self, qs: Iterable[float] | None = None) -> dict[float, float]:
        """Percentiles over the retained window (all-zero when empty)."""
        if qs is None:
            qs = self.qs
        values = sorted(value for _, value in self._samples)
        if not values:
            return {q: 0.0 for q in qs}
        return {q: percentile(values, q) for q in qs}

    def snapshot(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "count": self.count,
            "total": round(self.total, 3),
            "mean": round(self.mean(), 3),
        }
        for q, value in self.percentiles().items():
            data[f"p{int(q)}"] = round(value, 3)
        if self.window is not None:
            data["window_us"] = self.window
            data["windowed_count"] = len(self._samples)
        return data

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean():.2f})"


class MetricsRegistry:
    """Named metrics, created on first use and listed in one snapshot.

    ``histogram_qs`` is the quantile set every histogram created through
    this registry reports in its snapshot (the framework plumbs
    ``EiresConfig.histogram_percentiles`` here).
    """

    def __init__(self, histogram_qs: Iterable[float] = HISTOGRAM_PERCENTILES) -> None:
        self.histogram_qs = tuple(histogram_qs)
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._annotations: dict[str, str] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, window: float | None = None) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._histograms[name] = Histogram(
                name, window=window, qs=self.histogram_qs
            )
        return metric

    def annotate(self, name: str, value: str) -> None:
        """Attach a string-valued fact (e.g. the engine backend name).

        Annotations ride the snapshot alongside the numeric metrics —
        last write wins, like a gauge for configuration facts.
        """
        if name in self._counters or name in self._gauges or name in self._histograms:
            raise ValueError(f"metric {name!r} already registered with a different type")
        self._annotations[name] = value

    def _check_fresh(self, name: str) -> None:
        if (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
            or name in self._annotations
        ):
            raise ValueError(f"metric {name!r} already registered with a different type")

    def names(self) -> list[str]:
        return sorted(
            [*self._counters, *self._gauges, *self._histograms, *self._annotations]
        )

    def scoped(self, prefix: str) -> "ScopedRegistry":
        """A view of this registry that prefixes every metric name.

        Multi-query runtimes hand each query session a scope (e.g.
        ``query.ab``) so per-session ``fetch.*`` counters land on distinct
        cells of the *shared* registry instead of colliding.
        """
        return ScopedRegistry(self, prefix)

    def snapshot(self) -> dict[str, Any]:
        """All metrics as one flat, JSON-ready dict (sorted by name)."""
        data: dict[str, Any] = {}
        for name in self.names():
            if name in self._counters:
                value = self._counters[name].value
                data[name] = round(value, 3) if isinstance(value, float) else value
            elif name in self._gauges:
                data[name] = round(self._gauges[name].value, 3)
            elif name in self._histograms:
                data[name] = self._histograms[name].snapshot()
            else:
                data[name] = self._annotations[name]
        return data

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms)"
        )


class ScopedRegistry:
    """A name-prefixing view over a :class:`MetricsRegistry`.

    Metric creation delegates to the root registry with ``<prefix>.`` glued
    onto every name; ``snapshot()`` still covers the *whole* root registry,
    so any component holding a scope can export the full picture.
    """

    __slots__ = ("_root", "prefix")

    def __init__(self, root: MetricsRegistry, prefix: str) -> None:
        if not prefix:
            raise ValueError("scope prefix must be non-empty")
        self._root = root
        self.prefix = prefix

    @property
    def root(self) -> MetricsRegistry:
        return self._root

    def counter(self, name: str) -> Counter:
        return self._root.counter(f"{self.prefix}.{name}")

    def gauge(self, name: str) -> Gauge:
        return self._root.gauge(f"{self.prefix}.{name}")

    def histogram(self, name: str, window: float | None = None) -> Histogram:
        return self._root.histogram(f"{self.prefix}.{name}", window=window)

    def annotate(self, name: str, value: str) -> None:
        self._root.annotate(f"{self.prefix}.{name}", value)

    def scoped(self, prefix: str) -> "ScopedRegistry":
        return ScopedRegistry(self._root, f"{self.prefix}.{prefix}")

    def names(self) -> list[str]:
        """The root-registry names under this scope."""
        marker = f"{self.prefix}."
        return [name for name in self._root.names() if name.startswith(marker)]

    def snapshot(self) -> dict[str, Any]:
        """The full root snapshot (scopes share one source of truth)."""
        return self._root.snapshot()

    def __repr__(self) -> str:
        return f"ScopedRegistry({self.prefix!r} over {self._root!r})"

"""Observability: trace bus, metrics registry, exporters, provenance replay.

The ``repro.obs`` package makes EIRES's scheduling decisions inspectable:

* :mod:`repro.obs.trace` — a structured trace bus emitting typed lifecycle
  records (event arrival, partial-match lifecycle, prefetch decisions, cache
  and fetch activity, obligation postpone/resolve, match emission), all
  timestamped from the virtual clock so traces are deterministic;
* :mod:`repro.obs.registry` — counters, gauges and virtual-time-windowed
  histograms; the component stats façades are views over one registry;
* :mod:`repro.obs.export` — JSONL, Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and metrics-snapshot writers;
* :mod:`repro.obs.provenance` — replays Eq. 7 / Eq. 8 decision records
  against the model, proving the trace explains the run;
* :mod:`repro.obs.validate` — the CI smoke validator for Chrome traces.
"""

from repro.obs.export import (
    chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_metrics_snapshot,
)
from repro.obs.provenance import (
    replay_trace,
    verify_eq7_record,
    verify_eq8_record,
    verify_shed_record,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    CATEGORIES,
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    NullSink,
    Tracer,
    TraceSink,
)
__all__ = [
    "CATEGORIES",
    "NULL_TRACER",
    "Tracer",
    "TraceSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_snapshot",
    "replay_trace",
    "verify_eq7_record",
    "verify_eq8_record",
    "verify_shed_record",
    "validate_chrome_trace",
]


def __getattr__(name: str):
    # Imported lazily so ``python -m repro.obs.validate`` does not trigger
    # runpy's found-in-sys.modules warning when the package initialises.
    if name == "validate_chrome_trace":
        from repro.obs.validate import validate_chrome_trace

        return validate_chrome_trace
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Observability: trace bus, metrics registry, exporters, provenance replay.

The ``repro.obs`` package makes EIRES's scheduling decisions inspectable:

* :mod:`repro.obs.trace` — a structured trace bus emitting typed lifecycle
  records (event arrival, partial-match lifecycle, prefetch decisions, cache
  and fetch activity, obligation postpone/resolve, match emission), all
  timestamped from the virtual clock so traces are deterministic;
* :mod:`repro.obs.registry` — counters, gauges and virtual-time-windowed
  histograms; the component stats façades are views over one registry;
* :mod:`repro.obs.spans` — per-match causal latency spans: each detection
  latency decomposed into queueing / batch-wait / wire / retry-backoff /
  eval / shed-stall components that sum to the recorded latency exactly;
* :mod:`repro.obs.series` — a virtual-time sampler snapshotting the metrics
  registry on a fixed cadence into diffable JSONL;
* :mod:`repro.obs.slo` — SLO objectives (latency bound, recall floor, fetch
  budget) evaluated as burn rates into registered ``slo.*`` metrics;
* :mod:`repro.obs.export` — JSONL, Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``), flamegraph-folded spans, and metrics-snapshot
  writers;
* :mod:`repro.obs.provenance` — replays Eq. 7 / Eq. 8 / shedding / span
  records against the model, proving the trace explains the run;
* :mod:`repro.obs.validate` — the CI smoke validator for Chrome traces.
"""

from repro.obs.export import (
    chrome_trace,
    folded_spans,
    write_chrome_trace,
    write_folded,
    write_jsonl,
    write_metrics_snapshot,
)
from repro.obs.provenance import (
    replay_trace,
    verify_eq7_record,
    verify_eq8_record,
    verify_shed_record,
    verify_span_record,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.series import SeriesSampler, load_series_jsonl, write_series_jsonl
from repro.obs.slo import SloPlane, SloSpec
from repro.obs.spans import SPAN_COMPONENTS, SpanTracker, aggregate_spans
from repro.obs.trace import (
    CATEGORIES,
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    NullSink,
    Tracer,
    TraceSink,
)

__all__ = [
    "CATEGORIES",
    "NULL_TRACER",
    "Tracer",
    "TraceSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SPAN_COMPONENTS",
    "SpanTracker",
    "aggregate_spans",
    "SeriesSampler",
    "write_series_jsonl",
    "load_series_jsonl",
    "SloSpec",
    "SloPlane",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_snapshot",
    "folded_spans",
    "write_folded",
    "replay_trace",
    "verify_eq7_record",
    "verify_eq8_record",
    "verify_shed_record",
    "verify_span_record",
    "validate_chrome_trace",
]


def __getattr__(name: str):
    # Imported lazily so ``python -m repro.obs.validate`` does not trigger
    # runpy's found-in-sys.modules warning when the package initialises.
    if name == "validate_chrome_trace":
        from repro.obs.validate import validate_chrome_trace

        return validate_chrome_trace
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

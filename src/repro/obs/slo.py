"""SLO definitions evaluated as burn rates over registered ``slo.*`` metrics.

An :class:`SloSpec` declares the service-level objectives of a run in the
paper's own measures: a **latency bound** on the windowed p95 detection
latency (§2.2), a **recall floor** bounding the fraction of input events
the shedding plane may drop (each dropped event is recall given up — the
eSPICE trade), and a **fetch budget** bounding the wire-request rate
against the remote stores (the resource the whole system exists to spend
carefully).

The :class:`SloPlane` evaluates each objective as a *burn rate*: the ratio
of observed behaviour to the objective's allowance, where a value above 1.0
means the objective is being violated at the current trajectory.  Burns
land on registered ``slo.*`` gauges (so the series sampler graphs them and
metric snapshots report them) and are consumable by the shedding
:class:`~repro.shedding.detector.OverloadDetector` as a principled overload
signal beyond the raw lag/population bounds.

The plane is pure measurement: it reads model state through injected
callables, draws no random numbers, and never touches the clock — building
it changes no run results unless the detector is explicitly configured to
consume it (``EiresConfig.slo_in_detector``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.registry import MetricsRegistry, ScopedRegistry

__all__ = [
    "SloSpec",
    "SloPlane",
    "SLO_GAUGE_KEYS",
    "SLO_COUNTER_KEYS",
    "SLO_LATENCY_METRIC",
]

#: Registered ``slo.*`` gauges, in report order (one per objective + worst).
SLO_GAUGE_KEYS = ("latency_burn", "recall_burn", "fetch_burn", "worst_burn")

#: Registered ``slo.*`` counters, in report order.
SLO_COUNTER_KEYS = ("evaluations", "breaches")

#: The plane's own windowed histogram of per-match detection latencies;
#: registered as a named constant so emission never spells it inline (M1).
SLO_LATENCY_METRIC = "slo.match_latency_us"

#: Burn reported when an objective allows zero loss but loss occurred
#: (finite so gauges and JSON exports stay well-defined).
_BURN_CAP = 1e9


def _zero() -> int:
    return 0


@dataclass(frozen=True)
class SloSpec:
    """The objectives of one run; any subset may be set.

    ``latency_bound`` — windowed p95 detection latency must stay under this
    many virtual us.  ``recall_floor`` — at least this fraction of input
    events must survive shedding (1.0 = no loss allowed).  ``fetch_budget``
    — wire requests per virtual *second* must stay under this rate.
    """

    latency_bound: float | None = None
    recall_floor: float | None = None
    fetch_budget: float | None = None

    def __post_init__(self) -> None:
        if self.latency_bound is not None and self.latency_bound <= 0:
            raise ValueError(f"slo latency_bound must be positive: {self.latency_bound}")
        if self.recall_floor is not None and not 0.0 <= self.recall_floor <= 1.0:
            raise ValueError(f"slo recall_floor must be in [0, 1]: {self.recall_floor}")
        if self.fetch_budget is not None and self.fetch_budget <= 0:
            raise ValueError(f"slo fetch_budget must be positive: {self.fetch_budget}")

    @property
    def empty(self) -> bool:
        return (
            self.latency_bound is None
            and self.recall_floor is None
            and self.fetch_budget is None
        )


class SloPlane:
    """Evaluates an :class:`SloSpec` against a live run.

    The dispatch loop feeds it events and match latencies; the wire-request
    and shed-event totals are read through callables the composition root
    binds (keeping this module free of upward imports).  ``evaluate``
    refreshes the ``slo.*`` gauges; ``worst_burn`` is the detector-facing
    read, cached for ``refresh_interval`` virtual us so per-event overload
    checks do not recompute percentiles.
    """

    __slots__ = (
        "spec",
        "_gauges",
        "_counters",
        "_hist",
        "_wire_source",
        "_shed_source",
        "_events_seen",
        "_start_t",
        "_refresh_interval",
        "_cached_burn",
        "_cached_at",
    )

    def __init__(
        self,
        spec: SloSpec,
        registry: MetricsRegistry | ScopedRegistry,
        window: float = 1_000_000.0,
        refresh_interval: float = 1_000.0,
    ) -> None:
        if refresh_interval < 0:
            raise ValueError(f"refresh interval must be non-negative: {refresh_interval}")
        self.spec = spec
        self._gauges = {key: registry.gauge(f"slo.{key}") for key in SLO_GAUGE_KEYS}
        self._counters = {key: registry.counter(f"slo.{key}") for key in SLO_COUNTER_KEYS}
        self._hist = registry.histogram(SLO_LATENCY_METRIC, window=window)
        self._wire_source: Callable[[], int] = _zero
        self._shed_source: Callable[[], int] = _zero
        self._events_seen = 0
        self._start_t: float | None = None
        self._refresh_interval = refresh_interval
        self._cached_burn: float | None = None
        self._cached_at = 0.0

    def bind_sources(
        self,
        wire_requests: Callable[[], int] | None = None,
        events_shed: Callable[[], int] | None = None,
    ) -> None:
        """Wire the totals the burns read (composition-root plumbing)."""
        if wire_requests is not None:
            self._wire_source = wire_requests
        if events_shed is not None:
            self._shed_source = events_shed

    # -- observation hooks (dispatch loop) ------------------------------------
    def observe_event(self, now: float) -> None:
        """One input event entered the system at virtual time ``now``."""
        if self._start_t is None:
            self._start_t = now
        self._events_seen += 1

    def observe_match(self, latency: float, now: float) -> None:
        """One match was detected with the given latency."""
        self._hist.observe(latency, now)

    # -- burn evaluation -------------------------------------------------------
    def burns(self, now: float) -> dict[str, float]:
        """The current burn rate of every objective (0.0 when unset)."""
        spec = self.spec
        latency_burn = 0.0
        if spec.latency_bound is not None:
            latency_burn = self._hist.percentiles((95,))[95] / spec.latency_bound
        recall_burn = 0.0
        if spec.recall_floor is not None and self._events_seen > 0:
            loss = self._shed_source() / self._events_seen
            allowed = 1.0 - spec.recall_floor
            if allowed > 0.0:
                recall_burn = loss / allowed
            elif loss > 0.0:
                recall_burn = _BURN_CAP
        fetch_burn = 0.0
        if spec.fetch_budget is not None and self._start_t is not None:
            elapsed = now - self._start_t
            if elapsed > 0.0:
                rate = self._wire_source() / (elapsed / 1e6)
                fetch_burn = rate / spec.fetch_budget
        worst = max(latency_burn, recall_burn, fetch_burn)
        return {
            "latency_burn": latency_burn,
            "recall_burn": recall_burn,
            "fetch_burn": fetch_burn,
            "worst_burn": worst,
        }

    def evaluate(self, now: float) -> dict[str, float]:
        """Refresh the ``slo.*`` gauges from the current burns."""
        burns = self.burns(now)
        for key in SLO_GAUGE_KEYS:
            self._gauges[key].set(burns[key])
        self._counters["evaluations"].inc()
        if burns["worst_burn"] > 1.0:
            self._counters["breaches"].inc()
        self._cached_burn = burns["worst_burn"]
        self._cached_at = now
        return burns

    def worst_burn(self, now: float) -> float:
        """The detector-facing worst burn, refreshed every refresh interval."""
        if (
            self._cached_burn is None
            or now - self._cached_at >= self._refresh_interval
        ):
            self._cached_burn = self.burns(now)["worst_burn"]
            self._cached_at = now
        return self._cached_burn

    def status(self, now: float) -> dict[str, Any]:
        """Health-report view: each objective's target, burn, and verdict."""
        burns = self.burns(now)
        spec = self.spec
        objectives = {}
        targets = {
            "latency_burn": spec.latency_bound,
            "recall_burn": spec.recall_floor,
            "fetch_burn": spec.fetch_budget,
        }
        for key in SLO_GAUGE_KEYS[:-1]:
            if targets[key] is None:
                continue
            objectives[key] = {
                "target": targets[key],
                "burn": burns[key],
                "ok": burns[key] <= 1.0,
            }
        return {"objectives": objectives, "worst_burn": burns["worst_burn"]}

    def __repr__(self) -> str:
        return f"SloPlane({self.spec!r}, events={self._events_seen})"

"""Trace and metrics exporters: JSONL, Chrome trace-event JSON, snapshots.

The Chrome exporter produces the `trace-event format`_ consumed by Perfetto
and ``chrome://tracing``: one *process* row per track (strategy), one
*thread* row per lifecycle category, instant events for point records and
complete (``X``) events for records carrying a duration (fetch completions,
blocking stalls).  Virtual microseconds map 1:1 onto the format's ``ts``
microsecond unit.

.. _trace-event format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from repro.obs.spans import SPAN_COMPONENTS, SPAN_RECORD_NAME
from repro.obs.trace import CAT_SPAN, CATEGORIES

__all__ = [
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "write_metrics_snapshot",
    "folded_spans",
    "write_folded",
]

_META = ("seq", "t", "cat", "name", "track", "dur")


def write_jsonl(records: Iterable[Mapping[str, Any]], path: str) -> int:
    """Write ``records`` as JSON lines; returns the number written."""
    count = 0
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, default=repr))
            handle.write("\n")
            count += 1
    return count


def chrome_trace(records: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Convert trace-bus records to a Chrome trace-event JSON object.

    Tracks become processes, categories become threads; the mapping is
    emitted as metadata events so the viewer shows readable row names.
    """
    events: list[dict[str, Any]] = []
    pids: dict[str, int] = {}
    tids: dict[str, int] = {category: index + 1 for index, category in enumerate(CATEGORIES)}

    for record in records:
        track = str(record.get("track", "run"))
        pid = pids.get(track)
        if pid is None:
            pid = pids[track] = len(pids) + 1
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "name": "process_name",
                    "args": {"name": track},
                }
            )
            for category, tid in tids.items():
                events.append(
                    {
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "name": "thread_name",
                        "args": {"name": category},
                    }
                )
        cat = str(record.get("cat", "misc"))
        tid = tids.setdefault(cat, len(tids) + 1)
        args = {key: _argsafe(value) for key, value in record.items() if key not in _META}
        args["seq"] = record.get("seq", 0)
        event: dict[str, Any] = {
            "name": f"{cat}.{record.get('name', '?')}",
            "cat": cat,
            "pid": pid,
            "tid": tid,
            "ts": float(record.get("t", 0.0)),
            "args": args,
        }
        duration = record.get("dur")
        if duration is not None:
            event["ph"] = "X"
            event["dur"] = float(duration)
        else:
            event["ph"] = "i"
            event["s"] = "t"  # instant scoped to its thread row
        events.append(event)

    return {"traceEvents": events, "displayTimeUnit": "ns"}


def _argsafe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_argsafe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _argsafe(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(_argsafe(item) for item in value)
    return repr(value)


def write_chrome_trace(records: Iterable[Mapping[str, Any]], path: str) -> dict[str, Any]:
    """Write the Chrome trace for ``records``; returns the trace object."""
    trace = chrome_trace(records)
    with open(path, "w") as handle:
        json.dump(trace, handle)
    return trace


def write_metrics_snapshot(snapshots: Mapping[str, Any], path: str) -> None:
    """Persist metrics snapshots (e.g. ``{strategy: registry.snapshot()}``)."""
    with open(path, "w") as handle:
        json.dump(snapshots, handle, indent=2, sort_keys=True, default=repr)


def folded_spans(records: Iterable[Mapping[str, Any]]) -> list[str]:
    """Latency-attribution spans as flamegraph *folded* stack lines.

    One line per ``track;match;component`` stack with the component's total
    virtual microseconds (rounded to integers, zero-weight stacks omitted)
    — the input format of ``flamegraph.pl`` and every folded-stack viewer.
    Lines are sorted, so the export is diffable.
    """
    totals: dict[tuple[str, str], int] = {}
    for record in records:
        if record.get("cat") != CAT_SPAN or record.get("name") != SPAN_RECORD_NAME:
            continue
        track = str(record.get("query") or record.get("track") or "run")
        for component in SPAN_COMPONENTS:
            weight = int(round(float(record.get(component, 0.0))))
            if weight <= 0:
                continue
            stack = (track, component)
            totals[stack] = totals.get(stack, 0) + weight
    return [
        f"{track};match;{component} {weight}"
        for (track, component), weight in sorted(totals.items())
    ]


def write_folded(records: Iterable[Mapping[str, Any]], path: str) -> int:
    """Write the folded-stack export for ``records``; returns the line count."""
    lines = folded_spans(records)
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")
    return len(lines)

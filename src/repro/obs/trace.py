"""The trace bus: typed, virtual-time-stamped lifecycle records.

EIRES's contribution is *when* it fetches and *why* it postpones; the trace
bus makes those decisions inspectable.  Every instrumented component emits
flat dict records through a :class:`Tracer`, timestamped from the
:class:`~repro.sim.clock.VirtualClock`, so traces are deterministic and
diffable across runs — two runs with the same seed produce byte-identical
traces.

Record schema (see ``docs/observability.md`` for the full reference)::

    {"seq": 17,            # monotone per-tracer sequence number
     "t": 1234.5,          # virtual time (us)
     "cat": "fetch",       # lifecycle category (one of CATEGORIES)
     "name": "complete",   # record type within the category
     "track": "Hybrid",    # the strategy/run this record belongs to
     ...}                  # record-specific fields

Design constraints honoured here:

* **The disabled path is near-free.**  Instrumentation sites guard on
  ``tracer.enabled`` (a plain attribute read) before building any record,
  and the shared :data:`NULL_TRACER` keeps that flag ``False`` forever.
* **Tracing must not perturb results.**  A :class:`Tracer` never draws
  random numbers, never touches the clock, and only *reads* model state;
  enabling it changes no RNG stream, match set, or summary.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, TextIO

__all__ = [
    "CAT_EVENT",
    "CAT_RUN",
    "CAT_PREFETCH",
    "CAT_CACHE",
    "CAT_FETCH",
    "CAT_OBLIGATION",
    "CAT_MATCH",
    "CAT_SPAN",
    "CAT_SHED",
    "CAT_SERVING",
    "CATEGORIES",
    "Tracer",
    "NULL_TRACER",
    "TraceSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
]

# The lifecycle categories of the EIRES pipeline.  A fully traced run emits
# at least one record in each (the CI smoke step asserts exactly that).
CAT_EVENT = "event"              # input-event arrival
CAT_RUN = "run"                  # partial-match create / drop (extend = create)
CAT_PREFETCH = "prefetch"        # PFetch decisions (Eq. 7 provenance)
CAT_CACHE = "cache"              # admit / evict / hit / miss / reject
CAT_FETCH = "fetch"              # issue / complete / retry / stall / breaker
CAT_OBLIGATION = "obligation"    # postpone (Eq. 8 provenance) / resolve / expire
CAT_MATCH = "match"              # match emission
CAT_SPAN = "span"                # per-match latency attribution (critical-
                                 # path decomposition; one record per match)
CAT_SHED = "shed"                # load-shedding decisions (conditional: only
                                 # emitted when a shedding policy is active,
                                 # so it is NOT part of CATEGORIES — the CI
                                 # smoke requires every CATEGORIES entry in a
                                 # default, shedding-free trace)
CAT_SERVING = "serving"          # fleet-layer route / admit / throttle
                                 # decisions (conditional, like CAT_SHED:
                                 # only a FleetBuilder deployment emits
                                 # them, so not part of CATEGORIES either)

CATEGORIES = (
    CAT_EVENT,
    CAT_RUN,
    CAT_PREFETCH,
    CAT_CACHE,
    CAT_FETCH,
    CAT_OBLIGATION,
    CAT_MATCH,
    CAT_SPAN,
)


class TraceSink:
    """Where trace records go.  Subclasses override :meth:`write`."""

    def write(self, record: dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (default: nothing to do)."""


class NullSink(TraceSink):
    """Discards everything; a tracer over it reports ``enabled=False``."""

    def write(self, record: dict[str, Any]) -> None:  # pragma: no cover - never called
        pass


class MemorySink(TraceSink):
    """Collects records in a list (tests, exporters, the CLI)."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def write(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def by_category(self, cat: str) -> list[dict[str, Any]]:
        return [record for record in self.records if record["cat"] == cat]


class JsonlSink(TraceSink):
    """Streams records as JSON lines to a file (or any text handle)."""

    def __init__(self, target: str | TextIO) -> None:
        if isinstance(target, str):
            self._handle: TextIO = open(target, "w")
            self._owned = True
        else:
            self._handle = target
            self._owned = False

    def write(self, record: dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, default=_jsonable))
        self._handle.write("\n")

    def close(self) -> None:
        self._handle.flush()
        if self._owned:
            self._handle.close()


def _jsonable(value: Any) -> Any:
    """Fallback serialisation: tuples-in-dicts are fine, objects get repr'd."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return repr(value)


class Tracer:
    """Emits lifecycle records into a sink, stamping sequence numbers.

    ``track`` labels the strategy (or pipeline) the records belong to; the
    Chrome exporter maps each track to its own process row.  Instrumented
    code MUST guard emission sites with ``if tracer.enabled:`` so the
    disabled path costs one attribute read and one branch.
    """

    __slots__ = ("enabled", "track", "_sink", "_seq", "_filter", "_run_refs")

    def __init__(
        self,
        sink: TraceSink | None = None,
        track: str = "",
        categories: Iterable[str] | None = None,
    ) -> None:
        self._sink = sink if sink is not None else NullSink()
        self.enabled = sink is not None and not isinstance(sink, NullSink)
        self.track = track
        self._seq = 0
        self._filter: frozenset[str] | None = (
            frozenset(categories) if categories is not None else None
        )
        self._run_refs: dict[int, int] = {}

    def run_ref(self, raw_run_id: int) -> int:
        """Stable, dense id for a partial match within this trace.

        ``Run.run_id`` counts across the whole process, so its raw value
        depends on how many runs earlier evaluations created; remapping in
        first-seen order keeps traces byte-identical across repeat runs.
        """
        ref = self._run_refs.get(raw_run_id)
        if ref is None:
            ref = self._run_refs[raw_run_id] = len(self._run_refs)
        return ref

    def emit(self, cat: str, name: str, t: float, **fields: Any) -> None:
        """Record one lifecycle occurrence at virtual time ``t``."""
        if not self.enabled:
            return
        if self._filter is not None and cat not in self._filter:
            return
        record: dict[str, Any] = {"seq": self._seq, "t": t, "cat": cat, "name": name}
        if self.track:
            record["track"] = self.track
        record.update(fields)
        self._seq += 1
        self._sink.write(record)

    def close(self) -> None:
        self._sink.close()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, track={self.track!r}, seq={self._seq})"


#: The shared disabled tracer: every component defaults to it, so untraced
#: runs pay exactly one ``enabled`` check per instrumentation site.
NULL_TRACER = Tracer(None)


def trace_key(key: tuple) -> list:
    """A JSON-friendly rendering of a ``(source, key)`` DataKey."""
    return [key[0], key[1] if isinstance(key[1], (str, int, float)) else repr(key[1])]


# Re-exported for instrumentation sites that format keys.
__all__.append("trace_key")

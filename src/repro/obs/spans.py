"""Causal latency spans: a critical-path decomposition per match.

A match's detection latency (§2.2: last-event arrival to detection) is the
single number every EIRES experiment reports — but on its own it says
nothing about *where* the time went.  The :class:`SpanTracker` splits each
match's latency into the six components of :data:`SPAN_COMPONENTS`, each
measured at the instrumentation point that owns it:

``queueing``
    Last-event arrival until the session picks the event up — the shared
    clock was still busy with earlier events or other sessions (the same
    lag the shedding :class:`~repro.shedding.detector.OverloadDetector`
    samples).
``batch_wait``
    Critical-path time a fetch spent queued in an open batch coalescing
    window.  Structurally ~0 today: a blocking need *takes over* a queued
    key and closes its window immediately (see
    :meth:`repro.remote.transport.Transport._submit_blocking`) — the spans
    exist to prove that claim, not assume it.
``wire``
    The final attempt's transmission time of the critical (longest) fetch
    of each blocking stall.
``retry_backoff``
    Stall time spent on failed attempts and backoff gaps before the
    critical fetch's final attempt was issued — latency lost to faults.
``eval``
    NFA evaluation: guard/predicate/obligation charges of the engine's
    cost model.  Computed as the remainder of the session's clock advance,
    so the components sum to the recorded latency *exactly*; a negative
    remainder would expose a mis-attributed stall, which is what
    :func:`repro.obs.provenance.verify_span_record` checks.
``shed_stall``
    Clock advance spent inside the load shedder's hooks (~0 today; the
    component keeps the sum honest if a future policy ever charges time).

The tracker is pure instrumentation: it only *reads* the clock and fetch
tickets, draws no random numbers, and is attached by the composition root
only when tracing is enabled — a spans-enabled run is byte-identical in
matches, summary, and RNG stream to a disabled one, and the disabled path
costs one ``is None`` check per site.
"""

from __future__ import annotations

from typing import Any

__all__ = ["SPAN_COMPONENTS", "SPAN_RECORD_NAME", "SpanTracker", "aggregate_spans"]

#: The components of one span record, in report order; they sum to the
#: match's recorded detection latency.
SPAN_COMPONENTS = ("queueing", "batch_wait", "wire", "retry_backoff", "eval", "shed_stall")

#: Record name of span records within :data:`repro.obs.trace.CAT_SPAN`.
SPAN_RECORD_NAME = "attribution"


class SpanTracker:
    """Accumulates per-event critical-path time for one query session.

    The dispatch loop calls :meth:`begin_event` when the session picks an
    event up; the fetch plane adds each blocking stall's decomposition via
    :meth:`add_stall`; the dispatch loop adds shed-hook time via
    :meth:`add_shed_stall`; the engine snapshots the decomposition onto the
    :class:`~repro.engine.interface.MatchRecord` via :meth:`capture` at the
    moment a match is emitted.
    """

    __slots__ = ("_pickup", "_batch_wait", "_wire", "_retry_backoff", "_shed_stall")

    def __init__(self) -> None:
        self._pickup = 0.0
        self._batch_wait = 0.0
        self._wire = 0.0
        self._retry_backoff = 0.0
        self._shed_stall = 0.0

    def begin_event(self, now: float) -> None:
        """Mark the session's pickup time and reset the stall buckets."""
        self._pickup = now
        self._batch_wait = 0.0
        self._wire = 0.0
        self._retry_backoff = 0.0
        self._shed_stall = 0.0

    def add_stall(self, start: float, end: float, tickets: list) -> None:
        """Decompose one blocking stall over ``[start, end]``.

        The *critical* ticket — the one whose arrival defines the stall's
        end, ties broken deterministically — attributes the window:
        everything after its final attempt went on the wire started is
        ``wire``; queued-in-a-batch-window overlap is ``batch_wait``; the
        rest of the pre-wire time is ``retry_backoff`` (failed attempts
        plus backoff gaps).  The three parts sum to ``end - start`` by
        construction.
        """
        dur = end - start
        if dur <= 0.0 or not tickets:
            return
        critical = max(
            tickets, key=lambda t: (t.arrives_at, t.issued_at, repr(t.key))
        )
        wire_start = min(max(critical.wire_started_at, start), end)
        wire = end - wire_start
        batch_wait = max(
            0.0, min(critical.wire_started_at, end) - max(critical.issued_at, start)
        )
        self._wire += wire
        self._batch_wait += batch_wait
        self._retry_backoff += dur - wire - batch_wait

    def add_shed_stall(self, dur: float) -> None:
        """Clock advance charged inside a shedder hook."""
        self._shed_stall += dur

    def capture(self, last_event_t: float, detected_at: float) -> dict[str, Any]:
        """The decomposition for a match detected at ``detected_at``.

        ``eval`` is the remainder of the session's clock advance since
        pickup after the measured stalls — exact by construction, and
        non-negative iff every stall was attributed correctly.
        """
        stalls = self._batch_wait + self._wire + self._retry_backoff + self._shed_stall
        return {
            "queueing": self._pickup - last_event_t,
            "batch_wait": self._batch_wait,
            "wire": self._wire,
            "retry_backoff": self._retry_backoff,
            "eval": (detected_at - self._pickup) - stalls,
            "shed_stall": self._shed_stall,
        }

    def __repr__(self) -> str:
        return (
            f"SpanTracker(pickup={self._pickup:.1f}, wire={self._wire:.1f}, "
            f"retry={self._retry_backoff:.1f})"
        )


def aggregate_spans(records: list[dict]) -> dict[str, Any]:
    """Fold span trace records into per-component totals and shares.

    Returns ``{"matches": n, "latency_total": t, "components": {name:
    {"total", "mean", "share"}}}`` — the numbers behind the health report's
    attribution table and the folded flamegraph export.
    """
    totals = {name: 0.0 for name in SPAN_COMPONENTS}
    latency_total = 0.0
    matches = 0
    for record in records:
        if record.get("cat") != "span" or record.get("name") != SPAN_RECORD_NAME:
            continue
        matches += 1
        latency_total += float(record.get("latency", 0.0))
        for name in SPAN_COMPONENTS:
            totals[name] += float(record.get(name, 0.0))
    components = {
        name: {
            "total": totals[name],
            "mean": totals[name] / matches if matches else 0.0,
            "share": totals[name] / latency_total if latency_total > 0 else 0.0,
        }
        for name in SPAN_COMPONENTS
    }
    return {
        "matches": matches,
        "latency_total": latency_total,
        "components": components,
    }

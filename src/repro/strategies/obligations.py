"""Obligation handling: postponed predicates and their resolution (§5.2).

This mixin implements the engine-facing predicate protocol — evaluate now,
block, or postpone — and the blocking obligation-resolution rounds that
gather everything a run still misses in one stall.  The data movement it
triggers lives in :mod:`repro.strategies.fetch_plane`; the postpone/block
*decisions* are the subclass hooks :meth:`decide_postpone` and
:meth:`should_block_obligations`.
"""

from __future__ import annotations

from typing import Mapping

from repro.engine.interface import POSTPONED
from repro.events.event import Event
from repro.nfa.automaton import Transition
from repro.nfa.run import Run
from repro.obs.trace import CAT_OBLIGATION, trace_key
from repro.query.errors import RemoteDataUnavailable
from repro.query.predicates import Predicate
from repro.remote.element import DataKey
from repro.strategies.context import FAIL_CLOSED, FAIL_OPEN

__all__ = ["ObligationResolution", "_evaluate_with"]


class ObligationResolution:
    """Remote-predicate evaluation with postponement, for the engine protocol.

    Mixed into :class:`~repro.strategies.base.FetchStrategy`; relies on the
    fetch plane (``_collect``, ``_block_for``, ``_deliver_due``) and the
    shared instance state declared there.
    """

    def resolve_predicate(
        self, transition: Transition, predicate: Predicate, run: Run | None, env: Mapping[str, Event]
    ):
        """Evaluate a remote predicate, or return POSTPONED (§5.2)."""
        keys = predicate.remote_keys(env)
        self._deliver_due()
        values, missing = self._collect(keys)
        self._record_history(transition, predicate, missing)
        if missing:
            if self.decide_postpone(transition, predicate, run, env, missing):
                self.stats.lazy_postponements += 1
                tracer = self.ctx.tracer
                if tracer.enabled:
                    tracer.emit(
                        CAT_OBLIGATION,
                        "postpone",
                        self.ctx.clock.now,
                        transition=transition.index,
                        run_id=tracer.run_ref(run.run_id) if run is not None else None,
                        keys=[trace_key(key) for key in missing],
                    )
                return POSTPONED
            values.update(self._block_for(missing))
        return _evaluate_with(predicate, env, values, self.ctx.failure_mode)

    def resolve_obligation_predicate(
        self, predicate: Predicate, env: Mapping[str, Event], blocking: bool
    ):
        """Re-evaluate a postponed predicate once its data (maybe) arrived."""
        keys = predicate.remote_keys(env)
        self._deliver_due()
        values, missing = self._collect(keys)
        if missing:
            if not blocking:
                return POSTPONED
            values.update(self._block_for(missing))
        outcome = _evaluate_with(predicate, env, values, self.ctx.failure_mode)
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.emit(
                CAT_OBLIGATION,
                "resolve",
                self.ctx.clock.now,
                outcome=bool(outcome),
                blocking=blocking,
            )
        return outcome

    def prepare_blocking(self, run: Run) -> None:
        """Fetch everything a run's obligations still miss, in one round.

        Called by the engine before blocking obligation resolution so the
        stall is the *maximum* outstanding transmission latency rather than
        the sum over predicates — the effect the paper credits for BL3
        beating BL1/BL2 on Q1 (§7.2).
        """
        missing: list[DataKey] = []
        seen: set[DataKey] = set()
        self._deliver_due()
        self._in_blocking_round = True
        for obligation in run.obligations:
            for predicate in obligation.predicates:
                for key in predicate.remote_keys(obligation.env):
                    if key not in seen and not self._available(key):
                        seen.add(key)
                        missing.append(key)
        if missing:
            self._staged.update(self._block_for(missing))

    def finish_blocking(self) -> None:
        """End of a blocking obligation-resolution round: drop staged values."""
        self._staged.clear()
        self._round_failed.clear()
        self._in_blocking_round = False

    def should_block_obligations(self, run: Run) -> bool:
        """Default: obligations ride until the final state resolves them."""
        return False

    def decide_postpone(
        self,
        transition: Transition,
        predicate: Predicate,
        run: Run | None,
        env: Mapping[str, Event],
        missing: list[DataKey],
    ) -> bool:
        """Default: never postpone — block until the data is fetched."""
        return False


def _evaluate_with(
    predicate: Predicate,
    env: Mapping[str, Event],
    values: dict,
    failure_mode: str | None = None,
) -> bool:
    """Evaluate a predicate against a pre-collected value snapshot.

    A key absent from ``values`` after a blocking round means its fetch
    terminally failed; ``failure_mode`` then decides the predicate
    (fail-open: true, fail-closed: false).  Without a failure mode the
    unavailability propagates — on a healthy network it indicates a bug.
    """

    def resolver(key):
        try:
            return values[key]
        except KeyError:
            raise RemoteDataUnavailable(key) from None

    try:
        return predicate.evaluate(env, resolver)
    except RemoteDataUnavailable:
        if failure_mode == FAIL_OPEN:
            return True
        if failure_mode == FAIL_CLOSED:
            return False
        raise

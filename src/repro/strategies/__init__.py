"""Remote-data fetching strategies: baselines BL1-BL3, PFetch, LzEval, Hybrid."""

from repro.strategies.base import FetchStrategy, RuntimeContext, StrategyStats
from repro.strategies.baseline import CachedStrategy, DeferredStrategy, NaiveStrategy
from repro.strategies.hybrid import HybridStrategy
from repro.strategies.lazy import LazyBenefitModel, LzEvalStrategy
from repro.strategies.prefetch import PFetchStrategy, PrefetchPlan, PrefetchPlanner

STRATEGIES = {
    "BL1": NaiveStrategy,
    "BL2": CachedStrategy,
    "BL3": DeferredStrategy,
    "PFetch": PFetchStrategy,
    "LzEval": LzEvalStrategy,
    "Hybrid": HybridStrategy,
}


def make_strategy(name: str) -> FetchStrategy:
    """Instantiate a strategy by its paper name (BL1..BL3, PFetch, LzEval, Hybrid)."""
    try:
        return STRATEGIES[name]()
    except KeyError:
        raise ValueError(f"unknown strategy {name!r}; choose from {sorted(STRATEGIES)}") from None


__all__ = [
    "FetchStrategy",
    "RuntimeContext",
    "StrategyStats",
    "NaiveStrategy",
    "CachedStrategy",
    "DeferredStrategy",
    "PFetchStrategy",
    "PrefetchPlanner",
    "PrefetchPlan",
    "LzEvalStrategy",
    "LazyBenefitModel",
    "HybridStrategy",
    "STRATEGIES",
    "make_strategy",
]

"""The fetch plane: how a strategy moves remote data to the engine.

Everything that touches the :class:`~repro.remote.transport.Transport` or
the cache on a strategy's behalf lives here — blocking rounds with their
stall accounting, async issue/delivery with cache-tier intent, and the
stale-value fallback of graceful degradation.  The decision logic of *when*
to fetch stays in :mod:`repro.strategies.obligations` and the concrete
strategy subclasses; this mixin only executes the data movement.

All remote access goes through the unified request surface:
``transport.submit(FetchRequest(...))``.  Async submissions carry the
caller's utility so the transport's batch assembly can rank them —
certain-use lazy fetches submit with infinite utility and lead any batch,
gated prefetches carry their Eq. 7 candidate utility.
"""

from __future__ import annotations

from typing import Any

from repro.obs.trace import CAT_FETCH, trace_key
from repro.remote.element import DataKey
from repro.remote.transport import MODE_BLOCKING, FetchRequest
from repro.strategies.context import PURPOSE_LAZY, PURPOSE_PREFETCH

__all__ = ["FetchPlane"]

# Batch-assembly rank of a certain-use (lazy) fetch: ahead of every
# speculative prefetch, whatever its Eq. 7 utility.
_LAZY_UTILITY = float("inf")


class FetchPlane:
    """Remote-access helpers shared by every fetch strategy.

    Mixed into :class:`~repro.strategies.base.FetchStrategy`, which owns the
    instance state these methods use (``ctx``, ``stats``, ``spans``,
    ``_purpose``, ``_staged``, ``_round_failed``, ``_in_blocking_round``,
    ``_last_known``).
    """

    def _available(self, key: DataKey) -> bool:
        """Availability probe without hit/miss accounting (planner checks)."""
        cache = self.ctx.cache
        return cache is not None and cache.peek(key, self.ctx.clock.now) is not None

    def _collect(self, keys) -> tuple[dict[DataKey, Any], list[DataKey]]:
        """Snapshot the locally available values for ``keys``.

        Snapshotting decouples evaluation from cache state: inserting a
        just-fetched element may evict another key of the *same* predicate,
        so values must be read out before any further insertion.  Each
        lookup counts once in the cache's hit/miss statistics.
        """
        values: dict[DataKey, Any] = {}
        missing: list[DataKey] = []
        cache = self.ctx.cache
        now = self.ctx.clock.now
        for key in keys:
            if key in values:
                continue
            if key in self._staged:
                values[key] = self._staged[key]
                continue
            if key in self._round_failed:
                # Terminally failed this round: neither available nor worth
                # re-requesting — the predicate resolves per failure_mode.
                continue
            element = cache.get(key, now) if cache is not None else None
            if element is None:
                missing.append(key)
            else:
                values[key] = self._value_for(key, element)
        return values, missing

    def _value_for(self, key: DataKey, element) -> Any:
        """The value for ``key`` given a cache hit (possibly on a container)."""
        if element.key == key:
            return element.value
        # Container hit: serve the contained element's own value.
        return self.ctx.transport.store.lookup(key).value

    def _block_for(self, keys: list[DataKey]) -> dict[DataKey, Any]:
        """Fetch ``keys``, stalling the engine until all outcomes are known.

        Requests are issued concurrently (the stall is the max, not the sum
        — this is what makes BL3's one-shot fetching cheaper per match than
        BL1's state-by-state stalls).  Requests already in flight are simply
        awaited for their remaining time; pending requests that are doomed
        to fail are taken over so their retry chain completes within the
        stall.  Returns the fetched values; with a cache attached they are
        also inserted (tier T1 — their use is certain), while BL1 keeps
        nothing beyond the returned snapshot.

        A key whose fetch terminally fails (retries exhausted) is served
        from the stale-value fallback when enabled and known, and is
        otherwise left out of the returned snapshot — the caller's
        ``failure_mode`` then decides the predicate.
        """
        ctx = self.ctx
        now = ctx.clock.now
        latest = now
        tickets = []
        owned: list = []  # blocking tickets this call obtained (to deregister)
        for key in keys:
            pending = ctx.transport.in_flight(key)
            if pending is not None and (pending.ok or pending.final):
                ticket = pending
            else:
                ticket = ctx.transport.submit(
                    FetchRequest(key, at=now, mode=MODE_BLOCKING)
                )
                owned.append(ticket)
            tickets.append(ticket)
            if ticket.arrives_at > latest:
                latest = ticket.arrives_at
        self.stats.blocking_stalls += 1
        self.stats.total_stall_time += latest - now
        spans = self.spans
        if spans is not None:
            spans.add_stall(now, latest, tickets)
        tracer = ctx.tracer
        if tracer.enabled:
            tracer.emit(
                CAT_FETCH,
                "stall",
                now,
                dur=latest - now,
                keys=[trace_key(key) for key in keys],
            )
        ctx.clock.advance_to(latest)
        values: dict[DataKey, Any] = {}
        cache = ctx.cache
        owned_set = {id(ticket) for ticket in owned}
        for ticket in tickets:
            self._purpose.pop(ticket.key, None)
            if ticket.ok:
                values[ticket.key] = ticket.element.value
                if ctx.stale_serve_enabled:
                    self._last_known[ticket.key] = ticket.element.value
                if cache is not None:
                    cache.put(ticket.element, ctx.clock.now, certain=True)
                continue
            # Terminal failure.  Pending async failures are counted when
            # delivered; only failures of requests we issued count here.
            if id(ticket) in owned_set:
                self.stats.fetch_failures += 1
            if self._in_blocking_round:
                self._round_failed.add(ticket.key)
            if ctx.stale_serve_enabled and ticket.key in self._last_known:
                values[ticket.key] = self._last_known[ticket.key]
                self.stats.stale_serves += 1
        for ticket in owned:
            ctx.transport.complete(ticket)
        self._deliver_due()
        return values

    def _deliver_due(self) -> None:
        """Move arrived async responses into the cache.

        Failed responses (retries exhausted) deliver nothing: the key simply
        stays absent, which is *not* the same as a successful fetch of the
        ``MISSING_VALUE`` sentinel — a later evaluation either re-fetches or
        resolves per ``failure_mode``.
        """
        ctx = self.ctx
        delivered = ctx.transport.deliver_due(ctx.clock.now)
        if not delivered:
            return
        cache = ctx.cache
        for ticket in delivered:
            purpose = self._purpose.pop(ticket.key, PURPOSE_LAZY)
            if not ticket.ok:
                self.stats.fetch_failures += 1
                continue
            if ctx.stale_serve_enabled:
                self._last_known[ticket.key] = ticket.element.value
            if cache is not None:
                cache.put(ticket.element, ctx.clock.now, certain=purpose == PURPOSE_LAZY)

    def _fetch_async(self, key: DataKey, purpose: str, utility: float = 0.0) -> None:
        ctx = self.ctx
        if ctx.transport.in_flight(key) is None:
            ctx.transport.submit(FetchRequest(key, at=ctx.clock.now, utility=utility))
            self._purpose[key] = purpose
        elif purpose == PURPOSE_LAZY:
            # A lazy need upgrades a speculative prefetch: its use is now certain.
            self._purpose[key] = PURPOSE_LAZY

    def _fetch_async_lazy(self, keys: list[DataKey]) -> None:
        for key in keys:
            self._fetch_async(key, PURPOSE_LAZY, utility=_LAZY_UTILITY)

    def _fetch_async_prefetch(self, key: DataKey, utility: float = 0.0) -> None:
        self._fetch_async(key, PURPOSE_PREFETCH, utility=utility)

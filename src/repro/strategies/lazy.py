"""The LzEval strategy: lazy evaluation of remote predicates (§5.2, Alg. 4).

**L1 — selection of partial matches.**  Postponing a remote predicate hides
(part of) the transmission latency but makes event selection less strict,
creating extra partial matches whose evaluation costs ``l_pm`` each.  For a
predicate needed at class ``j`` and a candidate postponement horizon ``m``
(a descendant class), the benefit model estimates

* the hidden latency  ``delta- = min(E(j,m), l_remote)``  where
  ``E(j,m) = 1 / sum(lambda_i)`` is the expectation of the compound Poisson
  process over the intermediate classes (Alg. 4 line 6–7), and
* the overhead  ``delta+ = l_pm * prod_i(#P_i(k) * lambda_{i+1} * E(j,m))``
  (Eq. 8, Alg. 4 line 8).

``succ(j, l_remote)`` collects the classes where ``delta- > delta+``;
postponement is applied iff the set is non-empty, and a fetch for the
missing element is issued *immediately* (non-blocking) so the data travels
while the run develops.

**L2 — adapted evaluation.**  The engine re-checks a run's obligations
whenever the run is touched; when a run extends into a class outside
``succ`` the strategy orders a block (Alg. 4 line 15), and final states
always resolve everything before a match is emitted.

Transmission latencies are lifted to coarse buckets so ``succ`` sets can be
cached and reused (the paper suggests millisecond granularity; here the
bucket is a configurable multiplicative decade).
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.events.event import Event
from repro.nfa.automaton import State, Transition
from repro.nfa.run import Run
from repro.obs.trace import CAT_OBLIGATION, trace_key
from repro.query.predicates import Predicate
from repro.remote.element import DataKey
from repro.strategies.base import FetchStrategy

__all__ = ["LazyBenefitModel", "LzEvalStrategy"]


class LazyBenefitModel:
    """Computes and caches the beneficial-postponement sets ``succ``."""

    def __init__(self, strategy: "LzEvalStrategy", recompute_interval: float = 500.0) -> None:
        self._strategy = strategy
        self._recompute_interval = recompute_interval
        # (transition index, latency bucket)
        #   -> (computed_at, succ state indices, per-class Eq. 8 deltas)
        self._cache: dict[
            tuple[int, int], tuple[float, frozenset[int], tuple[dict[str, object], ...]]
        ] = {}

    @staticmethod
    def latency_bucket(ell: float) -> int:
        """Coarse bucket for a transmission latency (decade granularity)."""
        if ell <= 0:
            return 0
        return int(math.log10(max(ell, 1.0)) * 2)

    def succ_set(self, transition: Transition, ell: float) -> frozenset[int]:
        """Classes up to which postponing ``transition``'s remote predicates pays."""
        return self.lookup(transition, ell)[0]

    def lookup(
        self, transition: Transition, ell: float
    ) -> tuple[frozenset[int], tuple[dict[str, object], ...]]:
        """``succ`` plus the per-class ``delta-``/``delta+`` values behind it."""
        now = self._strategy.ctx.clock.now
        bucket = self.latency_bucket(ell)
        cached = self._cache.get((transition.index, bucket))
        if cached is not None and now - cached[0] < self._recompute_interval:
            return cached[1], cached[2]
        succ, deltas = self._compute(transition, ell)
        self._cache[(transition.index, bucket)] = (now, succ, deltas)
        return succ, deltas

    def _compute(
        self, transition: Transition, ell: float
    ) -> tuple[frozenset[int], tuple[dict[str, object], ...]]:
        ctx = self._strategy.ctx
        beneficial: set[int] = set()
        deltas: list[dict[str, object]] = []
        # Walk every path of descendant classes below the postponing
        # transition's target; `chain` is [r1=target, r2, ..., m].
        stack: list[list[State]] = [[transition.target]]
        while stack:
            chain = stack.pop()
            m = chain[-1]
            rate_sum = 0.0
            for state in chain:
                entry = self._entry_transition(state)
                rate_sum += ctx.rates.extension_rate(entry.index, entry.event_type)
            expectation = 1.0 / max(rate_sum, 1e-9)  # E(j, m)
            hidden = min(expectation, ell)  # delta- l_remote
            overhead = ctx.ell_pm  # delta+ l_match, Eq. 8
            for intermediate, successor in zip(chain[:-1], chain[1:]):
                entry = self._entry_transition(successor)
                overhead *= (
                    ctx.utility.class_count(intermediate.index)
                    * ctx.rates.extension_rate(entry.index, entry.event_type)
                    * expectation
                )
            # Postponement must survive at least one *future* arrival to hide
            # any latency: the paper's succ classes are strictly later than
            # the postponing transition's own target (j < m), so a chain of
            # length one (m == target) never qualifies.  In particular, a
            # remote predicate on a transition into a leaf final state has an
            # empty succ set and is evaluated by blocking (Alg. 4 line 15).
            if len(chain) > 1:
                wins = hidden > overhead
                deltas.append(
                    {
                        "state": m.index,
                        "delta_minus": hidden,
                        "delta_plus": overhead,
                        "beneficial": wins,
                    }
                )
                if wins:
                    beneficial.add(m.index)
            for next_transition in m.transitions:
                stack.append(chain + [next_transition.target])
        deltas.sort(key=lambda entry: entry["state"])
        return frozenset(beneficial), tuple(deltas)

    @staticmethod
    def _entry_transition(state: State) -> Transition:
        parent = state.parent
        if parent is None:
            raise ValueError("root state has no entry transition")
        for transition in parent.transitions:
            if transition.target is state:
                return transition
        raise ValueError(f"no entry transition found for {state!r}")


class LzEvalStrategy(FetchStrategy):
    """Lazy evaluation gated by the Alg. 4 benefit model."""

    name = "LzEval"

    def __init__(self) -> None:
        super().__init__()
        self.benefit = LazyBenefitModel(self)

    def decide_postpone(
        self,
        transition: Transition,
        predicate: Predicate,
        run: Run | None,
        env: Mapping[str, Event],
        missing: list[DataKey],
    ) -> bool:
        ctx = self.ctx
        # Effective latency includes the expected retry overhead for keys on
        # flaky sources — postponement must hide the *whole* expected wait
        # (Eq. 8 with ell lifted to the fault-adjusted estimate).  On a
        # healthy source this is exactly the monitored estimate.
        ell = max(ctx.transport.effective_estimate(key) for key in missing)
        tracer = ctx.tracer
        if ctx.lazy_gate_enabled:
            succ, deltas = self.benefit.lookup(transition, ell)
            if not succ:
                self.stats.forced_blocks += 1
                if tracer.enabled:
                    tracer.emit(
                        CAT_OBLIGATION,
                        "eq8_gate",
                        ctx.clock.now,
                        branch="block",
                        gated=True,
                        transition=transition.index,
                        ell=ell,
                        succ=sorted(succ),
                        deltas=list(deltas),
                        keys=[trace_key(key) for key in missing],
                    )
                return False
            if tracer.enabled:
                tracer.emit(
                    CAT_OBLIGATION,
                    "eq8_gate",
                    ctx.clock.now,
                    branch="postpone",
                    gated=True,
                    transition=transition.index,
                    ell=ell,
                    succ=sorted(succ),
                    deltas=list(deltas),
                    keys=[trace_key(key) for key in missing],
                )
        elif tracer.enabled:
            # Gate disabled: postponement is unconditional; record it so the
            # trace still explains why no block happened here.
            tracer.emit(
                CAT_OBLIGATION,
                "eq8_gate",
                ctx.clock.now,
                branch="postpone",
                gated=False,
                transition=transition.index,
                ell=ell,
                succ=[],
                deltas=[],
                keys=[trace_key(key) for key in missing],
            )
        # Postpone: fetch now (non-blocking) so the data travels while the
        # run develops; its use is certain, so it lands in cache tier T1.
        self._fetch_async_lazy(missing)
        self.last_postpone_ell = ell
        return True

    def should_block_obligations(self, run: Run) -> bool:
        """L2: block once the run leaves the beneficial region (line 15)."""
        state_index = run.state.index
        for obligation in run.obligations:
            origin = obligation.origin
            if origin is None:
                continue
            if state_index == origin.target.index:
                # The extension that carries the fresh obligation: the
                # postponement decision was just made; let it ride.
                continue
            succ = self.benefit.succ_set(origin, obligation.ell_estimate)
            if state_index not in succ:
                return True
        return False

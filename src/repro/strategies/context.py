"""The strategy-facing view of an assembled runtime (§4, Fig. 4).

A :class:`RuntimeContext` is handed to every
:class:`~repro.strategies.base.FetchStrategy` by the composition root
(:mod:`repro.runtime`): it bundles the shared substrate (clock, transport,
cache) with the per-query models (utility, rates, history) and the knobs the
strategy's decision gates read.  Strategies never assemble these pieces
themselves — they only consume the context.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.base import Cache
from repro.cache.history import HitHistory
from repro.nfa.automaton import Automaton
from repro.obs.registry import MetricsRegistry, ScopedRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.remote.transport import Transport
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import FutureScheduler
from repro.utility.model import UtilityModel
from repro.utility.noise import NoiseModel
from repro.utility.rates import RateEstimator

__all__ = ["RuntimeContext", "FAIL_OPEN", "FAIL_CLOSED"]

# Cache-tier intent of an in-flight async request: a lazy fetch's use is
# certain (tier T1), a prefetch is speculative (tier T2).
PURPOSE_PREFETCH = "prefetch"
PURPOSE_LAZY = "lazy"

# How a predicate whose remote data is *terminally* unavailable (fetch failed
# after all retries, no stale value to serve) resolves:
# fail-closed — the predicate counts as false: the affected partial match is
#   dropped (no match emitted from unverified data);
# fail-open — the predicate counts as true: the match is emitted despite the
#   missing evidence (availability over strictness).
FAIL_OPEN = "fail_open"
FAIL_CLOSED = "fail_closed"


@dataclass
class RuntimeContext:
    """Everything a strategy needs from the assembled framework."""

    automaton: Automaton
    clock: VirtualClock
    transport: Transport
    cache: Cache | None
    utility: UtilityModel
    rates: RateEstimator
    scheduler: FutureScheduler
    history: HitHistory
    noise: NoiseModel
    omega_fetch: float = 0.7
    ell_pm: float = 0.05
    lookahead_enabled: bool = True
    prefetch_gate_enabled: bool = True
    lazy_gate_enabled: bool = True
    utility_tick_interval: int = 1
    failure_mode: str = FAIL_CLOSED
    stale_serve_enabled: bool = True
    # Observability: the shared metrics registry the stats façades bind to
    # and the trace bus.  Both default to off/None so hand-built contexts
    # (unit tests) behave exactly as before.  Multi-query runtimes pass a
    # ScopedRegistry so each session's fetch.* counters get their own
    # namespace in the shared snapshot.
    metrics: MetricsRegistry | ScopedRegistry | None = None
    tracer: Tracer = NULL_TRACER

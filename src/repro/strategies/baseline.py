"""Baseline strategies BL1–BL3 (§7.1).

* **BL1** — naive integration: stream processing is interrupted whenever a
  remote element is needed, each time paying the full transmission latency;
  nothing is retained (no cache).
* **BL2** — like BL1, but fetched elements enter a local cache (either LRU
  or cost-based), so repeated needs for the same element hit locally.
* **BL3** — remote predicates are ignored during run construction; upon
  reaching a final state all still-needed elements are fetched *at once*
  (aggregate stall = the maximum transmission latency, not the sum) and the
  postponed event selection is conducted.  No cache is kept (BL2 is the
  cache baseline).
"""

from __future__ import annotations

from typing import Mapping

from repro.events.event import Event
from repro.nfa.automaton import Transition
from repro.nfa.run import Run
from repro.query.predicates import Predicate
from repro.remote.element import DataKey
from repro.strategies.base import FetchStrategy

__all__ = ["NaiveStrategy", "CachedStrategy", "DeferredStrategy"]


class NaiveStrategy(FetchStrategy):
    """BL1: block on every need, keep nothing."""

    name = "BL1"
    uses_cache = False
    # All behaviour is the base default with cache=None: every remote
    # predicate blocks for a fresh fetch, values are discarded immediately.


class CachedStrategy(FetchStrategy):
    """BL2: block on misses, serve repeats from the cache."""

    name = "BL2"
    # Base behaviour with a cache attached is exactly BL2.


class DeferredStrategy(FetchStrategy):
    """BL3: postpone every remote predicate until a final state.

    BL3 keeps no cache: the paper positions BL2 as *the* cache baseline,
    and BL3's post-processing design fetches whatever a completed candidate
    match needs in one concurrent round (its stall is the maximum
    transmission latency, not the sum).  The price is the unchecked growth
    of partial matches, which is exactly the failure mode the paper reports
    for BL3 under greedy selection (Fig. 6c/d) and in the cluster case
    study (Fig. 10b).
    """

    name = "BL3"
    uses_cache = False

    def decide_postpone(
        self,
        transition: Transition,
        predicate: Predicate,
        run: Run | None,
        env: Mapping[str, Event],
        missing: list[DataKey],
    ) -> bool:
        # Always postpone; crucially, no fetch is issued now — BL3 fetches
        # only once a final state forces resolution, which is what produces
        # its one-big-stall-at-the-end latency profile.
        return True

    def should_block_obligations(self, run: Run) -> bool:
        # Ride every obligation all the way to the final state.
        return False
